"""Word2Vec skip-gram with negative sampling, from scratch on numpy.

The paper trains classic Word2Vec [58] on table tuples (dim 300, window
3, min count 1) as the non-contextual baseline, and sweeps the embedding
dimensionality in Table 3.  This implementation follows Mikolov et al.'s
SGNS with a unigram^0.75 negative-sampling table and linear
learning-rate decay.
"""

from __future__ import annotations

import time
from collections import Counter

import numpy as np

from ..text.tokenizer import pretokenize


class Word2Vec:
    """Skip-gram negative-sampling embeddings."""

    def __init__(self, dim: int = 100, window: int = 3, negative: int = 5,
                 min_count: int = 1, seed: int = 0):
        if dim <= 0 or window <= 0 or negative <= 0:
            raise ValueError("dim, window and negative must be positive")
        self.dim = dim
        self.window = window
        self.negative = negative
        self.min_count = min_count
        self.seed = seed
        self.vocab: dict[str, int] = {}
        self.inverse_vocab: list[str] = []
        self.w_in: np.ndarray | None = None
        self.w_out: np.ndarray | None = None
        self._neg_table: np.ndarray | None = None
        self.train_seconds: float = 0.0

    # ------------------------------------------------------------------
    def build_vocab(self, sentences: list[list[str]]) -> None:
        counts = Counter(tok for sent in sentences for tok in sent)
        kept = sorted(w for w, c in counts.items() if c >= self.min_count)
        self.vocab = {w: i for i, w in enumerate(kept)}
        self.inverse_vocab = kept
        rng = np.random.default_rng(self.seed)
        scale = 0.5 / self.dim
        self.w_in = rng.uniform(-scale, scale, (len(kept), self.dim))
        self.w_out = np.zeros((len(kept), self.dim))
        freqs = np.array([counts[w] for w in kept], dtype=float) ** 0.75
        probs = freqs / freqs.sum()
        # Pre-drawn alias-free sampling table (classic word2vec style).
        table_size = max(len(kept) * 20, 1000)
        self._neg_table = rng.choice(len(kept), size=table_size, p=probs)

    def train(self, texts: list[str], epochs: int = 3,
              lr: float = 0.025) -> "Word2Vec":
        """Tokenize ``texts`` and run SGNS; records wall-clock train time
        (reported in Table 3)."""
        sentences = [pretokenize(t) for t in texts if t]
        sentences = [s for s in sentences if len(s) >= 2]
        if not sentences:
            raise ValueError("no trainable sentences")
        self.build_vocab(sentences)
        encoded = [
            np.array([self.vocab[t] for t in sent if t in self.vocab],
                     dtype=np.int64)
            for sent in sentences
        ]
        encoded = [e for e in encoded if len(e) >= 2]
        rng = np.random.default_rng(self.seed + 1)
        start = time.perf_counter()
        total_steps = max(sum(len(e) for e in encoded) * epochs, 1)
        step = 0
        for _epoch in range(epochs):
            for sent in encoded:
                for center_pos, center in enumerate(sent):
                    step += 1
                    alpha = max(lr * (1.0 - step / total_steps), lr * 0.01)
                    lo = max(center_pos - self.window, 0)
                    hi = min(center_pos + self.window + 1, len(sent))
                    for ctx_pos in range(lo, hi):
                        if ctx_pos == center_pos:
                            continue
                        self._sgns_update(int(center), int(sent[ctx_pos]),
                                          alpha, rng)
        self.train_seconds = time.perf_counter() - start
        return self

    def _sgns_update(self, center: int, context: int, alpha: float,
                     rng: np.random.Generator) -> None:
        v = self.w_in[center]
        negatives = self._neg_table[
            rng.integers(len(self._neg_table), size=self.negative)
        ]
        targets = np.concatenate(([context], negatives))
        labels = np.zeros(len(targets))
        labels[0] = 1.0
        outs = self.w_out[targets]                     # (1+neg, dim)
        scores = 1.0 / (1.0 + np.exp(-outs @ v))       # sigmoid
        gradient = (scores - labels)[:, None]          # (1+neg, 1)
        grad_v = (gradient * outs).sum(axis=0)
        self.w_out[targets] -= alpha * gradient * v
        self.w_in[center] -= alpha * grad_v

    # ------------------------------------------------------------------
    def vector(self, word: str) -> np.ndarray | None:
        idx = self.vocab.get(word.lower())
        if idx is None or self.w_in is None:
            return None
        return self.w_in[idx]

    def embed_text(self, text: str) -> np.ndarray:
        """Mean vector of the known tokens (zero vector when none)."""
        vectors = [self.vector(tok) for tok in pretokenize(text)]
        vectors = [v for v in vectors if v is not None]
        if not vectors:
            return np.zeros(self.dim)
        return np.mean(vectors, axis=0)

    def most_similar(self, word: str, k: int = 5) -> list[tuple[str, float]]:
        """Nearest vocabulary words by cosine similarity."""
        from ..retrieval.similarity import cosine_matrix

        v = self.vector(word)
        if v is None:
            return []
        sims = cosine_matrix(v[None, :], self.w_in)[0]
        sims[self.vocab[word.lower()]] = -np.inf
        order = np.argsort(-sims)[:k]
        return [(self.inverse_vocab[i], float(sims[i])) for i in order]
