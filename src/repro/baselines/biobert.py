"""The BioBERT baseline (Section 4: fine-tuned on table tuples).

BioBERT [45] is architecturally BERT pre-trained on biomedical text; the
paper fine-tunes it on serialized table tuples for 50k steps and uses a
second variant that also sees captions (Figure 5a / Table 11).  Offline
we train the same architecture-minus-structure model
(:class:`~repro.baselines.text_model.TextMLM`) directly on the corpus
tuples — it plays the identical role: a strong *text* encoder with no
tabular structure awareness.
"""

from __future__ import annotations

from .adapters import corpus_tuples
from .text_model import TextMLM


class BioBERTLike(TextMLM):
    """Text MLM fine-tuned on table tuples, used for columns/tables via
    the text adapters and as TabBiN's caption encoder."""

    @classmethod
    def from_tables(cls, corpus, steps: int = 150, include_captions: bool = False,
                    hidden: int = 48, vocab_size: int = 1500,
                    seed: int = 0) -> "BioBERTLike":
        """Fine-tune on the corpus's tuples.

        ``include_captions=True`` builds the second BioBERT variant of
        the paper ("fine-tuned a second BioBERT model including table
        captions as the embedding vector component").
        """
        texts = corpus_tuples(corpus, include_captions=include_captions)
        return cls.train_on_texts(texts, steps=steps, hidden=hidden,
                                  vocab_size=vocab_size, seed=seed)
