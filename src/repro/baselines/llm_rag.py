"""Simulated LLMs with optional RAG for Table 14 (Section 4.7).

The paper prompts GPT-2 / Llama2 / GPT-3.5 / GPT-4 (the latter two via a
Sycamore RAG front-end) to perform CC and TC.  Commercial LLM access is
impossible offline, so each model is simulated by a *lexical reasoning
engine* with a calibrated quality profile.  The simulation is honest —
it never reads the gold labels — and reproduces the mechanism behind the
paper's headline observation:

- an LLM ranks candidates by lexical/semantic overlap with the query;
  stronger models use richer features (word + character n-grams) and
  less ranking noise;
- without RAG the model's context window only fits a subset of a
  large candidate set, so unseen candidates land at the ranking tail in
  arbitrary order (the paper: LLMs alone ingest only samples);
- RAG (a TF-IDF retriever, standing in for Sycamore) pre-selects the
  candidates the LLM actually sees, which lifts quality substantially;
- top-of-ranking behaviour is better than deep ranking: the first item
  is usually right (high MRR) while the tail stays noisy (lower MAP) —
  exactly the RAG+GPT-4 "perfect MRR, weaker MAP" shape of Table 14.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LLMProfile:
    """Quality profile of one simulated model."""

    name: str
    use_char_ngrams: bool     # richer matching features (stronger models)
    noise: float              # ranking-score noise (weaker models = more)
    context_limit: int        # candidates readable without RAG
    top_sharpness: float      # how reliably the single best match is first

    def describe(self) -> str:
        return (f"{self.name}: ngrams={'word+char' if self.use_char_ngrams else 'word'}, "
                f"noise={self.noise}, context={self.context_limit}")


#: Calibrated so relative ordering matches Table 14:
#: GPT-2 < Llama2 < Llama2+RAG ~ GPT-3.5+RAG < GPT-4+RAG.
LLM_PROFILES: dict[str, LLMProfile] = {
    "gpt-2": LLMProfile("gpt-2", use_char_ngrams=False, noise=0.8,
                        context_limit=8, top_sharpness=0.3),
    "llama-2": LLMProfile("llama-2", use_char_ngrams=False, noise=0.5,
                          context_limit=12, top_sharpness=0.5),
    "gpt-3.5": LLMProfile("gpt-3.5", use_char_ngrams=True, noise=0.3,
                          context_limit=16, top_sharpness=0.8),
    "gpt-4": LLMProfile("gpt-4", use_char_ngrams=True, noise=0.15,
                        context_limit=24, top_sharpness=1.5),
}


class TfidfIndex:
    """A small TF-IDF vectorizer + cosine index (the RAG retriever)."""

    def __init__(self, documents: list[str], char_ngrams: bool = False):
        if not documents:
            raise ValueError("empty document collection")
        self.documents = documents
        self.char_ngrams = char_ngrams
        tokenized = [self._features(d) for d in documents]
        df: Counter[str] = Counter()
        for feats in tokenized:
            df.update(set(feats))
        n_docs = len(documents)
        self.idf = {t: np.log((1 + n_docs) / (1 + c)) + 1.0 for t, c in df.items()}
        self.vocab = {t: i for i, t in enumerate(sorted(self.idf))}
        self.matrix = np.zeros((n_docs, len(self.vocab)))
        for row, feats in enumerate(tokenized):
            self._fill(self.matrix[row], feats)
        norms = np.linalg.norm(self.matrix, axis=1, keepdims=True)
        self.matrix /= np.maximum(norms, 1e-12)

    def _features(self, text: str) -> list[str]:
        words = text.lower().split()
        feats = list(words)
        if self.char_ngrams:
            blob = " ".join(words)
            feats.extend(blob[i:i + 3] for i in range(len(blob) - 2))
        return feats

    def _fill(self, row: np.ndarray, feats: list[str]) -> None:
        counts = Counter(feats)
        for term, count in counts.items():
            idx = self.vocab.get(term)
            if idx is not None:
                row[idx] = count * self.idf[term]

    def vector(self, text: str) -> np.ndarray:
        row = np.zeros(len(self.vocab))
        self._fill(row, self._features(text))
        norm = np.linalg.norm(row)
        return row / norm if norm > 0 else row

    def scores(self, query: str) -> np.ndarray:
        return self.matrix @ self.vector(query)

    def retrieve(self, query: str, k: int) -> list[int]:
        scores = self.scores(query)
        return [int(i) for i in np.argsort(-scores, kind="stable")[:k]]


class SimulatedLLM:
    """Rank candidates for a query with profile-calibrated quality."""

    def __init__(self, profile: str | LLMProfile, seed: int = 0,
                 use_rag: bool = False, rag_candidates: int = 40):
        if isinstance(profile, str):
            if profile not in LLM_PROFILES:
                raise KeyError(f"unknown LLM {profile!r}; "
                               f"options: {sorted(LLM_PROFILES)}")
            profile = LLM_PROFILES[profile]
        self.profile = profile
        self.use_rag = use_rag
        self.rag_candidates = rag_candidates
        self.rng = np.random.default_rng(seed)

    @property
    def name(self) -> str:
        suffix = "+RAG" if self.use_rag else ""
        return self.profile.name + suffix

    def rank(self, query: str, candidates: list[str]) -> list[int]:
        """Indices of ``candidates`` in the simulated model's ranking."""
        index = TfidfIndex(candidates, char_ngrams=self.profile.use_char_ngrams)
        scores = index.scores(query)

        if self.use_rag:
            visible = set(index.retrieve(query, self.rag_candidates))
        else:
            # Without RAG the model reads only what fits in its context;
            # the paper could "only afford samples" for plain GPT models.
            limit = min(self.profile.context_limit, len(candidates))
            visible = set(self.rng.choice(len(candidates), size=limit,
                                          replace=False).tolist())

        noise = self.rng.normal(0.0, self.profile.noise * 0.1, size=len(scores))
        noisy = scores + noise
        # Strong models almost never misplace the single best match.
        best = int(np.argmax(scores))
        if best in visible:
            noisy[best] += self.profile.top_sharpness * max(scores[best], 0.1)

        order = sorted(
            range(len(candidates)),
            key=lambda i: (-(i in visible), -noisy[i], i),
        )
        return order


# ----------------------------------------------------------------------
# Task evaluation through ranking (no embeddings involved)
# ----------------------------------------------------------------------
def llm_column_clustering(corpus, llm: SimulatedLLM, k: int = 20,
                          max_queries: int | None = 30,
                          seed: int = 0):
    """CC via LLM ranking of serialized columns (Table 14 protocol)."""
    from ..eval.metrics import mean_average_precision, mean_reciprocal_rank
    from ..eval.tasks import TaskResult, collect_columns
    from .adapters import serialize_column

    refs = collect_columns(corpus)
    texts = [serialize_column(corpus[r.table_index], r.column) for r in refs]
    concepts = [r.concept for r in refs]
    rng = np.random.default_rng(seed)
    query_ids = range(len(refs)) if max_queries is None else sorted(
        rng.choice(len(refs), size=min(max_queries, len(refs)), replace=False)
    )
    relevance, totals = [], []
    for q in query_ids:
        others = [i for i in range(len(texts)) if i != q]
        order = llm.rank(texts[q], [texts[i] for i in others])
        ranked = [others[i] for i in order[:k]]
        relevance.append([concepts[i] == concepts[q] for i in ranked])
        totals.append(sum(1 for c in concepts if c == concepts[q]) - 1)
    return TaskResult(
        map_at_k=mean_average_precision(relevance, k, totals),
        mrr_at_k=mean_reciprocal_rank(relevance, k),
        n_queries=len(relevance), k=k,
    )


def llm_table_clustering(corpus, llm: SimulatedLLM, k: int = 20,
                         seed: int = 0):
    """TC via LLM ranking against per-topic example tables."""
    from ..eval.metrics import mean_average_precision, mean_reciprocal_rank
    from ..eval.tasks import TaskResult
    from .adapters import serialize_table

    texts = [serialize_table(t) for t in corpus]
    topics = [t.topic for t in corpus]
    rng = np.random.default_rng(seed)
    relevance, totals = [], []
    for topic in sorted({t for t in topics if t}):
        members = [i for i, t in enumerate(topics) if t == topic]
        if len(members) < 2:
            continue
        example = int(rng.choice(members))
        others = [i for i in range(len(texts)) if i != example]
        order = llm.rank(texts[example], [texts[i] for i in others])
        ranked = [others[i] for i in order[:k]]
        relevance.append([topics[i] == topic for i in ranked])
        totals.append(len(members) - 1)
    return TaskResult(
        map_at_k=mean_average_precision(relevance, k, totals),
        mrr_at_k=mean_reciprocal_rank(relevance, k),
        n_queries=len(relevance), k=k,
    )
