"""Chain-of-Table-style iterative prompting (the paper's future work).

Section 4.7 closes with: "Alternative methods of more advanced prompting
algorithms [72, 82] for complex tables could potentially enhance LLMs
performance.  This is one of the current directions of our further
research."  [82] is Chain-of-Table, which lets an LLM iteratively apply
table operations before answering.

This module implements that direction on top of the simulated LLMs: a
multi-round ranking loop where each round the "LLM" applies one focus
operation — restrict to metadata, restrict to values, restrict to
numeric shape — re-scores the surviving candidates, and prunes the pool.
Each round sees a *smaller, more focused* candidate set, which is
exactly the mechanism Chain-of-Table exploits; it measurably improves
the plain LLM's deep ranking (MAP) while keeping its top-1 behaviour.
"""

from __future__ import annotations

import re

import numpy as np

from .llm_rag import SimulatedLLM, TfidfIndex

_NUMBERY = re.compile(r"\d")


def _metadata_view(text: str) -> str:
    """Keep header-ish tokens: words, drop numbers and units-of-values."""
    return " ".join(t for t in text.split() if not _NUMBERY.search(t))


def _value_view(text: str) -> str:
    """Keep value-ish tokens: numbers and short tokens near them."""
    return " ".join(t for t in text.split() if _NUMBERY.search(t)) or text


def _shape_view(text: str) -> str:
    """A crude numeric-shape sketch: count of numbers, ranges, percents."""
    numbers = len(re.findall(r"\d+(?:\.\d+)?", text))
    ranges = len(re.findall(r"\d\s*-\s*\d", text))
    percents = text.count("%")
    return f"numbers{min(numbers, 9)} ranges{min(ranges, 9)} pct{min(percents, 9)}"


#: The operation chain, in application order.
OPERATIONS = (
    ("focus-metadata", _metadata_view),
    ("focus-values", _value_view),
    ("focus-shape", _shape_view),
)


class ChainOfTableLLM:
    """Iterative table-reasoning wrapper around a :class:`SimulatedLLM`.

    Parameters
    ----------
    llm:
        The base simulated model that scores candidates each round.
    keep_fraction:
        Fraction of the pool surviving each pruning round.
    min_pool:
        Stop pruning below this pool size.
    """

    def __init__(self, llm: SimulatedLLM, keep_fraction: float = 0.5,
                 min_pool: int = 8):
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        self.llm = llm
        self.keep_fraction = keep_fraction
        self.min_pool = min_pool

    @property
    def name(self) -> str:
        return f"{self.llm.name}+CoT"

    def rank(self, query: str, candidates: list[str]) -> list[int]:
        """Rank via the operation chain; returns candidate indices.

        Pruned candidates are appended after the final pool in the order
        they were dropped (latest drops first — they survived longer).
        """
        pool = list(range(len(candidates)))
        dropped: list[int] = []
        scores = np.zeros(len(candidates))

        for _op_name, view in OPERATIONS:
            if len(pool) <= self.min_pool:
                break
            view_query = view(query)
            view_candidates = [view(candidates[i]) for i in pool]
            if not view_query.strip() or all(not v.strip() for v in view_candidates):
                continue
            index = TfidfIndex(
                [v if v.strip() else "empty" for v in view_candidates],
                char_ngrams=self.llm.profile.use_char_ngrams,
            )
            round_scores = index.scores(view_query)
            for local, global_idx in enumerate(pool):
                scores[global_idx] += round_scores[local]
            keep = max(int(len(pool) * self.keep_fraction), self.min_pool)
            order = np.argsort(-round_scores, kind="stable")
            survivors = [pool[i] for i in order[:keep]]
            dropped = [pool[i] for i in order[keep:]][::-1] + dropped
            pool = survivors

        # Final round: the base LLM ranks the focused pool verbatim.
        final_order = self.llm.rank(query, [candidates[i] for i in pool])
        ranked = [pool[i] for i in final_order]
        return ranked + dropped

    def explain(self, query: str) -> list[tuple[str, str]]:
        """The operation chain applied to ``query`` (for inspection)."""
        return [(name, view(query)) for name, view in OPERATIONS]
