"""The DITTO baseline: entity matching as sequence-pair classification.

DITTO [49] fine-tunes a pre-trained language model on serialized entity
pairs with a binary match/mismatch head.  Here the encoder is our
from-scratch text transformer (standing in for RoBERTa); a pair is
serialized ``[CLS] left [SEP] right`` and the ``[CLS]`` state feeds a
linear + softmax head, trained end-to-end with cross-entropy — the same
construction at reduced scale.
"""

from __future__ import annotations

import numpy as np

from ..datasets.magellan import EntityPair
from ..eval.metrics import f1_score
from ..nn import Adam, Linear, Module, clip_grad_norm, cross_entropy
from ..text.tokenizer import WordPieceTokenizer
from .text_model import TextEncoder


class DittoMatcher(Module):
    """Pair classifier: text encoder + binary head over ``[CLS]``."""

    def __init__(self, tokenizer: WordPieceTokenizer, hidden: int = 48,
                 num_layers: int = 2, num_heads: int = 4, max_len: int = 96,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.tokenizer = tokenizer
        self.encoder = TextEncoder(
            vocab_size=len(tokenizer.vocab), hidden=hidden,
            num_layers=num_layers, num_heads=num_heads,
            intermediate=hidden * 4, max_len=max_len, rng=rng,
        )
        self.head = Linear(hidden, 2, rng=rng)
        self.max_len = max_len

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, pairs: list[EntityPair], vocab_size: int = 1200,
              hidden: int = 48, seed: int = 0, **kwargs) -> "DittoMatcher":
        texts = [p.left for p in pairs] + [p.right for p in pairs]
        tokenizer = WordPieceTokenizer.train(texts, vocab_size=vocab_size)
        return cls(tokenizer, hidden=hidden,
                   rng=np.random.default_rng(seed), **kwargs)

    def _encode_pair(self, pair: EntityPair) -> np.ndarray:
        vocab = self.tokenizer.vocab
        ids = ([vocab.cls_id] + self.tokenizer.encode(pair.left)
               + [vocab.sep_id] + self.tokenizer.encode(pair.right))
        return np.array(ids[: self.max_len], dtype=np.int64)

    def _batch(self, pairs: list[EntityPair]) -> tuple[np.ndarray, np.ndarray]:
        encoded = [self._encode_pair(p) for p in pairs]
        n = max(len(e) for e in encoded)
        token_ids = np.full((len(encoded), n), self.tokenizer.vocab.pad_id,
                            dtype=np.int64)
        valid = np.zeros((len(encoded), n), dtype=bool)
        for i, ids in enumerate(encoded):
            token_ids[i, : len(ids)] = ids
            valid[i, : len(ids)] = True
        return token_ids, valid

    def forward(self, pairs: list[EntityPair]):
        token_ids, valid = self._batch(pairs)
        hidden = self.encoder(token_ids, valid)
        return self.head(hidden[:, 0, :])  # [CLS] state

    # ------------------------------------------------------------------
    def fit(self, pairs: list[EntityPair], epochs: int = 3,
            batch_size: int = 8, lr: float = 3e-4, seed: int = 0) -> list[float]:
        rng = np.random.default_rng(seed)
        optimizer = Adam(self.parameters(), lr=lr)
        losses: list[float] = []
        self.train()
        order = np.arange(len(pairs))
        for _ in range(epochs):
            rng.shuffle(order)
            for start in range(0, len(order), batch_size):
                chunk = [pairs[i] for i in order[start:start + batch_size]]
                labels = np.array([p.label for p in chunk], dtype=np.int64)
                logits = self(chunk)
                loss = cross_entropy(logits, labels)
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(self.parameters(), 1.0)
                optimizer.step()
                losses.append(float(loss.data))
        self.eval()
        return losses

    def predict(self, pairs: list[EntityPair], batch_size: int = 16) -> list[int]:
        was_training = self.training
        self.eval()
        out: list[int] = []
        try:
            for start in range(0, len(pairs), batch_size):
                logits = self(pairs[start:start + batch_size])
                out.extend(int(i) for i in logits.data.argmax(axis=-1))
        finally:
            self.train(was_training)
        return out

    def evaluate_f1(self, pairs: list[EntityPair]) -> float:
        predictions = self.predict(pairs)
        return f1_score(predictions, [p.label for p in pairs])
