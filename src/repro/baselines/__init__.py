"""Baselines: TUTA-like, BioBERT-like, Word2Vec, DITTO-like, LLM±RAG."""

from .adapters import (
    corpus_tuples,
    make_column_embedder,
    make_entity_embedder,
    make_table_embedder,
    serialize_column,
    serialize_table,
    serialize_tuple,
)
from .biobert import BioBERTLike
from .ditto import DittoMatcher
from .llm_rag import (
    LLM_PROFILES,
    LLMProfile,
    SimulatedLLM,
    TfidfIndex,
    llm_column_clustering,
    llm_table_clustering,
)
from .prompting import ChainOfTableLLM
from .text_model import TextEncoder, TextMLM
from .tuta import TutaEmbedder, TutaModel
from .word2vec import Word2Vec

__all__ = [
    "Word2Vec",
    "TextEncoder", "TextMLM", "BioBERTLike",
    "TutaModel", "TutaEmbedder",
    "DittoMatcher",
    "LLMProfile", "LLM_PROFILES", "SimulatedLLM", "TfidfIndex",
    "ChainOfTableLLM",
    "llm_column_clustering", "llm_table_clustering",
    "serialize_tuple", "serialize_column", "serialize_table",
    "corpus_tuples", "make_column_embedder", "make_table_embedder",
    "make_entity_embedder",
]
