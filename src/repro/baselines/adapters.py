"""Adapters: plug any text embedder into the CC/TC/EC task protocol.

The baselines (Word2Vec, BioBERT-like, simulated LLMs) see tables as
text.  These helpers serialize tuples / columns / whole tables the way
the paper feeds its text baselines ("The training set is comprised of
table tuples"), and wrap a model exposing ``embed_text(str) ->
np.ndarray`` into the embedding callables the task runners expect.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from ..tables.table import Table


class TextEmbedderLike(Protocol):
    def embed_text(self, text: str) -> np.ndarray: ...


def serialize_tuple(table: Table, i: int) -> str:
    """One data row as text, prefixed by its VMD labels when present."""
    parts = []
    label = table.qualified_row_label(i)
    if label:
        parts.append(label)
    parts.extend(cell.text for cell in table.row(i) if cell.text)
    return " ; ".join(parts)


def serialize_column(table: Table, j: int) -> str:
    """A column as text: qualified header plus its values."""
    parts = [table.qualified_column_label(j)]
    parts.extend(cell.text for cell in table.column(j) if cell.text)
    return " ; ".join(p for p in parts if p)


def serialize_table(table: Table, include_caption: bool = True) -> str:
    """Whole-table serialization (tuples concatenated)."""
    parts = []
    if include_caption and table.caption:
        parts.append(table.caption)
    header = " | ".join(table.qualified_column_label(j) for j in range(table.n_cols))
    if header.strip(" |"):
        parts.append(header)
    parts.extend(serialize_tuple(table, i) for i in range(table.n_rows))
    return " . ".join(parts)


def corpus_tuples(corpus: list[Table], include_captions: bool = False) -> list[str]:
    """All tuple texts of a corpus — the text baselines' training set."""
    texts: list[str] = []
    for table in corpus:
        if include_captions and table.caption:
            texts.append(table.caption)
        header = " ; ".join(
            table.qualified_column_label(j) for j in range(table.n_cols)
        )
        if header.strip(" ;"):
            texts.append(header)
        texts.extend(serialize_tuple(table, i) for i in range(table.n_rows))
    return texts


def make_column_embedder(model: TextEmbedderLike) -> Callable[[Table, int], np.ndarray]:
    return lambda table, j: model.embed_text(serialize_column(table, j))


def make_table_embedder(model: TextEmbedderLike,
                        include_caption: bool = True) -> Callable[[Table], np.ndarray]:
    return lambda table: model.embed_text(
        serialize_table(table, include_caption=include_caption)
    )


def make_entity_embedder(model: TextEmbedderLike) -> Callable[[str], np.ndarray]:
    return model.embed_text
