"""A plain text transformer encoder with MLM pre-training.

This is the substrate for the BioBERT-like baseline (and the DITTO-like
matcher's encoder): token + learned absolute position embeddings, full
self-attention (no table structure), and the same MLM recipe TabBiN
uses.  It is deliberately the TabBiN architecture *minus* every
structural component, which is exactly the role BioBERT plays in the
paper's comparisons.
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    Adam,
    Dropout,
    Embedding,
    IGNORE_INDEX,
    LayerNorm,
    LinearWarmupSchedule,
    Module,
    Tensor,
    TransformerEncoder,
    clip_grad_norm,
    cross_entropy,
)
from ..core.model import MLMHead
from ..text.tokenizer import WordPieceTokenizer
from ..text.vocab import Vocabulary


class TextEncoder(Module):
    """Token + position embeddings feeding a transformer encoder."""

    def __init__(self, vocab_size: int, hidden: int = 48, num_layers: int = 2,
                 num_heads: int = 4, intermediate: int = 192,
                 max_len: int = 128, dropout: float = 0.1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.hidden = hidden
        self.max_len = max_len
        self.vocab_size = vocab_size
        self.tok = Embedding(vocab_size, hidden, rng=rng)
        self.pos = Embedding(max_len, hidden, rng=rng)
        self.norm = LayerNorm(hidden)
        self.dropout = Dropout(dropout, rng=rng)
        self.encoder = TransformerEncoder(num_layers, hidden, num_heads,
                                          intermediate, dropout, rng=rng)
        self.mlm_head = MLMHead(hidden, vocab_size, rng=rng)

    def forward(self, token_ids: np.ndarray, valid: np.ndarray) -> Tensor:
        """Encode a padded batch ``(B, n)``; ``valid`` marks real tokens."""
        B, n = token_ids.shape
        positions = np.broadcast_to(np.arange(n), (B, n))
        x = self.dropout(self.norm(self.tok(token_ids) + self.pos(positions)))
        mask = self._pad_mask(valid)
        return self.encoder(x, mask)

    @staticmethod
    def _pad_mask(valid: np.ndarray) -> np.ndarray:
        """Full attention among real tokens; pads see only themselves."""
        B, n = valid.shape
        mask = (valid[:, None, :] & valid[:, :, None]).astype(np.uint8)
        idx = np.arange(n)
        mask[:, idx, idx] = 1
        return mask


class TextMLM:
    """BioBERT-style text model: tokenizer + encoder + MLM training.

    Exposes ``embed_text`` so it plugs into the adapter protocol.
    """

    def __init__(self, tokenizer: WordPieceTokenizer, encoder: TextEncoder):
        self.tokenizer = tokenizer
        self.encoder = encoder
        self._cache: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    @classmethod
    def train_on_texts(cls, texts: list[str], steps: int = 150,
                       vocab_size: int = 1500, hidden: int = 48,
                       num_layers: int = 2, num_heads: int = 4,
                       max_len: int = 96, batch_size: int = 8,
                       lr: float = 3e-4, mlm_probability: float = 0.15,
                       seed: int = 0) -> "TextMLM":
        """Train a tokenizer on ``texts`` then pre-train with MLM."""
        tokenizer = WordPieceTokenizer.train(texts, vocab_size=vocab_size)
        rng = np.random.default_rng(seed)
        encoder = TextEncoder(
            vocab_size=len(tokenizer.vocab), hidden=hidden,
            num_layers=num_layers, num_heads=num_heads,
            intermediate=hidden * 4, max_len=max_len, rng=rng,
        )
        model = cls(tokenizer, encoder)
        if steps > 0:
            model.pretrain(texts, steps=steps, batch_size=batch_size, lr=lr,
                           mlm_probability=mlm_probability, seed=seed + 1)
        encoder.eval()
        return model

    def pretrain(self, texts: list[str], steps: int, batch_size: int = 8,
                 lr: float = 3e-4, mlm_probability: float = 0.15,
                 seed: int = 0) -> list[float]:
        encoded = [self._encode(t) for t in texts if t.strip()]
        encoded = [e for e in encoded if len(e) > 2]
        if not encoded:
            raise ValueError("no trainable texts")
        vocab = self.tokenizer.vocab
        rng = np.random.default_rng(seed)
        optimizer = Adam(self.encoder.parameters(), lr=lr)
        schedule = LinearWarmupSchedule(optimizer, max(1, steps // 10), steps)
        losses: list[float] = []
        self.encoder.train()
        for _ in range(steps):
            batch_ids = rng.integers(len(encoded), size=min(batch_size, len(encoded)))
            batch = [encoded[i] for i in batch_ids]
            token_ids, valid = self._pad(batch, vocab.pad_id)
            masked, labels = self._mask(token_ids, valid, vocab, rng,
                                        mlm_probability)
            hidden = self.encoder(masked, valid)
            logits = self.encoder.mlm_head(hidden)
            loss = cross_entropy(logits.reshape(-1, self.encoder.vocab_size),
                                 labels.reshape(-1))
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(self.encoder.parameters(), 1.0)
            optimizer.step()
            schedule.step()
            losses.append(float(loss.data))
        self.encoder.eval()
        return losses

    # ------------------------------------------------------------------
    def _encode(self, text: str) -> np.ndarray:
        vocab = self.tokenizer.vocab
        ids = [vocab.cls_id] + self.tokenizer.encode(text)
        return np.array(ids[: self.encoder.max_len], dtype=np.int64)

    @staticmethod
    def _pad(batch: list[np.ndarray], pad_id: int) -> tuple[np.ndarray, np.ndarray]:
        n = max(len(b) for b in batch)
        token_ids = np.full((len(batch), n), pad_id, dtype=np.int64)
        valid = np.zeros((len(batch), n), dtype=bool)
        for i, ids in enumerate(batch):
            token_ids[i, : len(ids)] = ids
            valid[i, : len(ids)] = True
        return token_ids, valid

    @staticmethod
    def _mask(token_ids: np.ndarray, valid: np.ndarray, vocab: Vocabulary,
              rng: np.random.Generator, probability: float
              ) -> tuple[np.ndarray, np.ndarray]:
        masked = token_ids.copy()
        labels = np.full_like(token_ids, IGNORE_INDEX)
        special = vocab.special_ids() - {vocab.val_id}
        eligible = valid & ~np.isin(token_ids, sorted(special))
        lottery = (rng.random(token_ids.shape) < probability) & eligible
        if not lottery.any():
            # Guarantee at least one target per batch.
            rows, cols = np.nonzero(eligible)
            if rows.size == 0:
                return masked, labels
            pick = rng.integers(rows.size)
            lottery[rows[pick], cols[pick]] = True
        labels[lottery] = token_ids[lottery]
        roll = rng.random(token_ids.shape)
        masked[lottery & (roll < 0.8)] = vocab.mask_id
        random_slots = lottery & (roll >= 0.8) & (roll < 0.9)
        masked[random_slots] = rng.integers(len(vocab), size=int(random_slots.sum()))
        return masked, labels

    # ------------------------------------------------------------------
    def embed_text(self, text: str) -> np.ndarray:
        """Mean-pooled contextual vector of ``text`` (cached)."""
        hit = self._cache.get(text)
        if hit is not None:
            return hit
        ids = self._encode(text)
        if len(ids) == 0:
            return np.zeros(self.encoder.hidden)
        token_ids, valid = self._pad([ids], self.tokenizer.vocab.pad_id)
        was_training = self.encoder.training
        self.encoder.eval()
        try:
            hidden = self.encoder(token_ids, valid)
        finally:
            self.encoder.train(was_training)
        vector = hidden.data[0, valid[0]].mean(axis=0)
        self._cache[text] = vector
        return vector
