"""The TUTA baseline: a tree-based structure-aware table transformer.

TUTA [80] is the paper's main structured SOTA comparator.  Architecture
reproduced here (the "explicit" variant the paper fine-tunes):

- one *joint* model over the whole table — metadata and data share a
  single sequence and a single context (TabBiN's segment separation is
  exactly what it lacks);
- tree-based positional embeddings: row, column, and header-tree depth;
- the magnitude/precision/first/last numeric features (TUTA introduced
  them; TabBiN adopts them);
- MLM pre-training over the joint sequence with full attention.

It has no unit/nesting features, no semantic type inference, no range or
gaussian semantics, and no bi-dimensional nested coordinates — the
components the ablations in Tables 12/13 attribute TabBiN's margin to.
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    Adam,
    Dropout,
    Embedding,
    IGNORE_INDEX,
    LayerNorm,
    LinearWarmupSchedule,
    Module,
    Tensor,
    TransformerEncoder,
    clip_grad_norm,
    cross_entropy,
)
from ..core.model import MLMHead
from ..core.numeric_features import NULL_FEATURES, numeric_features
from ..tables.table import Table
from ..text.tokenizer import WordPieceTokenizer


class TutaModel(Module):
    """Joint table encoder with tree positional embeddings."""

    def __init__(self, vocab_size: int, hidden: int = 48, num_layers: int = 2,
                 num_heads: int = 4, intermediate: int = 192,
                 max_positions: int = 256, max_depth: int = 8,
                 numeric_bins: int = 11, dropout: float = 0.1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if hidden % 4 != 0:
            raise ValueError("hidden must be divisible by 4 for numeric features")
        rng = rng or np.random.default_rng(0)
        self.hidden = hidden
        self.vocab_size = vocab_size
        self.tok = Embedding(vocab_size, hidden, rng=rng)
        quarter = hidden // 4
        self.num_mag = Embedding(numeric_bins, quarter, rng=rng)
        self.num_pre = Embedding(numeric_bins, quarter, rng=rng)
        self.num_fst = Embedding(numeric_bins, quarter, rng=rng)
        self.num_lst = Embedding(numeric_bins, quarter, rng=rng)
        self.row = Embedding(max_positions, hidden, rng=rng)
        self.col = Embedding(max_positions, hidden, rng=rng)
        self.depth = Embedding(max_depth, hidden, rng=rng)
        self.norm = LayerNorm(hidden)
        self.dropout = Dropout(dropout, rng=rng)
        self.encoder = TransformerEncoder(num_layers, hidden, num_heads,
                                          intermediate, dropout, rng=rng)
        self.mlm_head = MLMHead(hidden, vocab_size, rng=rng)
        self.max_positions = max_positions
        self.max_depth = max_depth

    def forward(self, token_ids, numeric, rows, cols, depths, valid) -> Tensor:
        from ..nn.tensor import concatenate

        e_num = concatenate([
            self.num_mag(numeric[..., 0]), self.num_pre(numeric[..., 1]),
            self.num_fst(numeric[..., 2]), self.num_lst(numeric[..., 3]),
        ], axis=-1)
        x = (self.tok(token_ids) + e_num + self.row(rows) + self.col(cols)
             + self.depth(depths))
        x = self.dropout(self.norm(x))
        mask = (valid[:, None, :] & valid[:, :, None]).astype(np.uint8)
        idx = np.arange(valid.shape[1])
        mask[:, idx, idx] = 1
        return self.encoder(x, mask)


class TutaEmbedder:
    """Public TUTA-like API mirroring :class:`TabBiNEmbedder`'s surface."""

    def __init__(self, tokenizer: WordPieceTokenizer, model: TutaModel,
                 max_seq_len: int = 128):
        self.tokenizer = tokenizer
        self.model = model
        self.max_seq_len = max_seq_len
        self._cache: dict[tuple[int, str], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Serialization: one joint sequence per table
    # ------------------------------------------------------------------
    def serialize(self, table: Table) -> dict[str, np.ndarray]:
        """Whole-table token arrays with (row, col, depth) tree positions.

        Header labels come first (depth = their tree level), then data
        cells row-major (depth = deepest header level + 1).  Nested
        tables are flattened into their cell's text — TUTA has no nested
        coordinates.
        """
        vocab = self.tokenizer.vocab
        token_ids: list[int] = [vocab.cls_id]
        numeric: list[tuple] = [NULL_FEATURES]
        rows, cols, depths, cell_ids = [0], [0], [0], [-1]
        cell_counter = 0
        refs: list[tuple[str, int, int]] = []

        def emit(text: str, row: int, col: int, depth: int, kind: str):
            nonlocal cell_counter
            pieces = self.tokenizer.tokenize(text)
            if not pieces:
                return
            for piece in pieces[:16]:
                token_ids.append(vocab.id(piece))
                numeric.append(NULL_FEATURES)
                rows.append(min(row, self.model.max_positions - 1))
                cols.append(min(col, self.model.max_positions - 1))
                depths.append(min(depth, self.model.max_depth - 1))
                cell_ids.append(cell_counter)
            refs.append((kind, row, col))
            cell_counter += 1

        data_depth = max(table.hmd_tree.depth, 1)
        for label in table.hmd_labels():
            emit(label.label, label.level - 1, label.span[0], label.level, "hmd")
        for label in table.vmd_labels():
            emit(label.label, label.span[0], label.level - 1, label.level, "vmd")
        for i in range(table.n_rows):
            for j in range(table.n_cols):
                cell = table.data[i][j]
                text = cell.text
                if cell.has_nested_table:
                    nested = cell.nested_table
                    text = " ".join(
                        inner.text for inner in nested.all_cells()
                    )
                emit(text, i, j, data_depth, "data")
                # Attach numeric features to the [VAL] tokens just emitted.
                values = list(cell.numbers())
                if values:
                    val_positions = [
                        k for k in range(len(token_ids))
                        if cell_ids[k] == cell_counter - 1
                        and token_ids[k] == vocab.val_id
                    ]
                    for k, value in zip(val_positions, values):
                        numeric[k] = numeric_features(value)

        arrays = {
            "token_ids": np.array(token_ids[: self.max_seq_len], dtype=np.int64),
            "numeric": np.array(numeric[: self.max_seq_len], dtype=np.int64),
            "rows": np.array(rows[: self.max_seq_len], dtype=np.int64),
            "cols": np.array(cols[: self.max_seq_len], dtype=np.int64),
            "depths": np.array(depths[: self.max_seq_len], dtype=np.int64),
            "cell_ids": np.array(cell_ids[: self.max_seq_len], dtype=np.int64),
        }
        arrays["refs"] = refs
        return arrays

    # ------------------------------------------------------------------
    # Pre-training
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, corpus: list[Table], steps: int = 150, hidden: int = 48,
              num_layers: int = 2, num_heads: int = 4, vocab_size: int = 1500,
              max_seq_len: int = 128, batch_size: int = 8, lr: float = 3e-4,
              seed: int = 0) -> "TutaEmbedder":
        from ..core.embedder import corpus_texts

        tokenizer = WordPieceTokenizer.train(corpus_texts(corpus),
                                             vocab_size=vocab_size)
        rng = np.random.default_rng(seed)
        model = TutaModel(vocab_size=len(tokenizer.vocab), hidden=hidden,
                          num_layers=num_layers, num_heads=num_heads,
                          intermediate=hidden * 4, rng=rng)
        embedder = cls(tokenizer, model, max_seq_len=max_seq_len)
        if steps > 0:
            embedder.pretrain(corpus, steps=steps, batch_size=batch_size,
                              lr=lr, seed=seed + 1)
        model.eval()
        return embedder

    def pretrain(self, corpus: list[Table], steps: int, batch_size: int = 8,
                 lr: float = 3e-4, mlm_probability: float = 0.15,
                 seed: int = 0) -> list[float]:
        serialized = [self.serialize(t) for t in corpus]
        serialized = [s for s in serialized if len(s["token_ids"]) > 4]
        vocab = self.tokenizer.vocab
        rng = np.random.default_rng(seed)
        optimizer = Adam(self.model.parameters(), lr=lr)
        schedule = LinearWarmupSchedule(optimizer, max(1, steps // 10), steps)
        losses: list[float] = []
        self.model.train()
        special = sorted(vocab.special_ids() - {vocab.val_id})
        for _ in range(steps):
            picks = rng.integers(len(serialized), size=min(batch_size, len(serialized)))
            batch = [serialized[i] for i in picks]
            token_ids, numeric, rows, cols, depths, valid = self._pad(batch, vocab.pad_id)
            masked = token_ids.copy()
            labels = np.full_like(token_ids, IGNORE_INDEX)
            eligible = valid & ~np.isin(token_ids, special)
            lottery = (rng.random(token_ids.shape) < mlm_probability) & eligible
            if not lottery.any():
                continue
            labels[lottery] = token_ids[lottery]
            masked[lottery] = vocab.mask_id
            hidden = self.model(masked, numeric, rows, cols, depths, valid)
            logits = self.model.mlm_head(hidden)
            loss = cross_entropy(logits.reshape(-1, self.model.vocab_size),
                                 labels.reshape(-1))
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(self.model.parameters(), 1.0)
            optimizer.step()
            schedule.step()
            losses.append(float(loss.data))
        self.model.eval()
        return losses

    @staticmethod
    def _pad(batch: list[dict], pad_id: int):
        n = max(len(b["token_ids"]) for b in batch)
        B = len(batch)
        token_ids = np.full((B, n), pad_id, dtype=np.int64)
        numeric = np.zeros((B, n, 4), dtype=np.int64)
        rows = np.zeros((B, n), dtype=np.int64)
        cols = np.zeros((B, n), dtype=np.int64)
        depths = np.zeros((B, n), dtype=np.int64)
        valid = np.zeros((B, n), dtype=bool)
        for b, item in enumerate(batch):
            k = len(item["token_ids"])
            token_ids[b, :k] = item["token_ids"]
            numeric[b, :k] = item["numeric"]
            rows[b, :k] = item["rows"]
            cols[b, :k] = item["cols"]
            depths[b, :k] = item["depths"]
            valid[b, :k] = True
        return token_ids, numeric, rows, cols, depths, valid

    # ------------------------------------------------------------------
    # Embeddings
    # ------------------------------------------------------------------
    def _states(self, table: Table) -> tuple[np.ndarray, np.ndarray, list]:
        arrays = self.serialize(table)
        token_ids, numeric, rows, cols, depths, valid = self._pad(
            [arrays], self.tokenizer.vocab.pad_id
        )
        was_training = self.model.training
        self.model.eval()
        try:
            hidden = self.model(token_ids, numeric, rows, cols, depths, valid)
        finally:
            self.model.train(was_training)
        return hidden.data[0], arrays["cell_ids"], arrays["refs"]

    def _table_pool(self, table: Table) -> dict[str, np.ndarray]:
        key = (id(table), "pool")
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        states, cell_ids, refs = self._states(table)
        pooled: dict[int, np.ndarray] = {}
        for idx in range(len(refs)):
            positions = np.nonzero(cell_ids == idx)[0]
            if positions.size:
                pooled[idx] = states[positions].mean(axis=0)
        out = {"refs": refs, "pooled": pooled, "all": states[: len(cell_ids)]}
        self._cache[key] = out
        return out

    def embed_column(self, table: Table, j: int) -> np.ndarray:
        pool = self._table_pool(table)
        vectors = [
            v for idx, v in pool["pooled"].items()
            if pool["refs"][idx][0] in ("data", "hmd")
            and pool["refs"][idx][2] == j
        ]
        if not vectors:
            return np.zeros(self.model.hidden)
        return np.mean(vectors, axis=0)

    def embed_table(self, table: Table) -> np.ndarray:
        pool = self._table_pool(table)
        if not pool["pooled"]:
            return np.zeros(self.model.hidden)
        return np.mean(list(pool["pooled"].values()), axis=0)

    def embed_text(self, text: str) -> np.ndarray:
        key = (hash(text), "text")
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        vocab = self.tokenizer.vocab
        ids = [vocab.cls_id] + self.tokenizer.encode(text)
        ids = np.array(ids[: self.max_seq_len], dtype=np.int64)
        arrays = {
            "token_ids": ids,
            "numeric": np.zeros((len(ids), 4), dtype=np.int64),
            "rows": np.zeros(len(ids), dtype=np.int64),
            "cols": np.arange(len(ids)) % self.model.max_positions,
            "depths": np.zeros(len(ids), dtype=np.int64),
        }
        token_ids, numeric, rows, cols, depths, valid = self._pad(
            [arrays], vocab.pad_id
        )
        was_training = self.model.training
        self.model.eval()
        try:
            hidden = self.model(token_ids, numeric, rows, cols, depths, valid)
        finally:
            self.model.train(was_training)
        vector = hidden.data[0, valid[0]].mean(axis=0)
        self._cache[key] = vector
        return vector
