"""Declarative description of an index's parameters.

Every persisted index — a single ``.npz`` file or a sharded directory —
boils down to the same facts: what *kind* of entries it holds (table /
column / raw vectors), the vector space (dim + per-kind composition
parameters such as ``variant``), the LSH geometry, the embedder
checkpoint the vectors came from, and the corpus provenance.
:class:`IndexSpec` names those facts once so backends can serialize
them, ``open_index`` can validate them, and :class:`ShardedIndex` can
stamp every shard with the same configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IndexSpec:
    """Parameters shared by every shard (or the whole single file).

    ``extra`` carries kind-specific composition parameters — ``variant``
    for table indexes, ``composite`` for column indexes — exactly the
    keys a ``VectorIndex`` subclass adds to ``_params()``.
    """

    kind: str
    dim: int
    n_planes: int = 8
    n_bands: int = 4
    seed: int = 0
    model_id: str | None = None
    corpus: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    #: Keys of ``VectorIndex._params()`` that are spec fields rather
    #: than kind-specific extras.
    _BASE_KEYS = ("kind", "dim", "n_planes", "n_bands", "seed",
                  "model_id", "corpus")

    @classmethod
    def from_params(cls, params: dict) -> "IndexSpec":
        """Build a spec from a ``VectorIndex._params()`` dict (the shape
        both the ``.npz`` payload and the shard manifest store)."""
        extra = {key: value for key, value in params.items()
                 if key not in cls._BASE_KEYS}
        return cls(kind=params["kind"], dim=params["dim"],
                   n_planes=params.get("n_planes", 8),
                   n_bands=params.get("n_bands", 4),
                   seed=params.get("seed", 0),
                   model_id=params.get("model_id"),
                   corpus=dict(params.get("corpus") or {}),
                   extra=extra)

    @classmethod
    def from_index(cls, index) -> "IndexSpec":
        """The spec of a live ``VectorIndex`` (any subclass)."""
        return cls.from_params(index._params())

    def to_params(self) -> dict:
        """Back to the flat ``_params()`` shape (manifest / payload)."""
        return {"kind": self.kind, "dim": self.dim,
                "n_planes": self.n_planes, "n_bands": self.n_bands,
                "seed": self.seed, "model_id": self.model_id,
                "corpus": self.corpus, **self.extra}

    def create_index(self):
        """Instantiate an *empty* index of this spec's kind — the unit a
        sharded layout is assembled from."""
        from .index import index_class

        cls = index_class(self.kind)
        index = cls(self.dim, n_planes=self.n_planes, n_bands=self.n_bands,
                    seed=self.seed)
        index.model_id = self.model_id
        index.corpus = dict(self.corpus)
        index._restore_extra(self.extra)
        return index

    def describe(self) -> str:
        """One-line human summary (``catalog list``, server logs):
        kind, dim, composition extras, and a shortened checkpoint."""
        bits = [f"kind={self.kind}", f"dim={self.dim}"]
        bits += [f"{key}={value}" for key, value in sorted(self.extra.items())]
        if self.model_id is not None:
            bits.append(f"model={self.model_id[:12]}")
        return " ".join(bits)

    def signature(self) -> dict:
        """What two indexes must agree on to hold vectors from the same
        space: kind, dim, kind-specific composition params, and — when
        known — the source checkpoint.  LSH geometry and corpus
        provenance are deliberately absent (see
        ``VectorIndex._merge_signature``)."""
        return {"kind": self.kind, "dim": self.dim,
                "model_id": self.model_id, **self.extra}
