"""Stable content fingerprints for tables.

The embedder's pooled-vector cache was originally keyed by ``id(table)``.
CPython reuses object ids after garbage collection, so a long-lived cache
could silently return another table's vectors — and two distinct ``Table``
objects with identical content could never share an entry.  A fingerprint
derived from the table's *content* (cells, metadata, caption, nesting)
fixes both: it survives GC, is shared by equal tables, and is stable
across processes, which lets indexes built in one run be queried in
another.
"""

from __future__ import annotations

import hashlib
import json

from ..tables.table import Table

#: Attribute used to memoize the fingerprint on the table instance
#: (tables are immutable after construction, so one hash per object).
_CACHE_ATTR = "_content_fingerprint"


def table_fingerprint(table: Table) -> str:
    """Hex digest identifying a table by content, not object identity.

    Covers everything :meth:`Table.to_dict` serializes: caption, topic,
    source, both metadata trees, gold concepts, cell texts / entity types
    and nested tables, recursively.  Equal-content tables get equal
    fingerprints; any content difference changes the digest.
    """
    cached = getattr(table, _CACHE_ATTR, None)
    if cached is not None:
        return cached
    payload = json.dumps(table.to_dict(), sort_keys=True, ensure_ascii=False,
                         separators=(",", ":"))
    digest = hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()
    setattr(table, _CACHE_ATTR, digest)
    return digest
