"""Batched corpus encoding behind a content-addressed pooled-vector cache.

The seed repo embedded one table at a time: every ``TabBiNEmbedder``
lookup serialized a single table and ran one ``encode_pooled`` forward
per table, padding each batch to that table's longest sequence.  At
corpus scale (the paper embeds hundreds of thousands of columns) that
wastes both forwards and padding.  :class:`EmbeddingStore` instead
serializes a whole corpus up front, pools the sequences of *all* tables
into fixed-size, length-sorted batches, and scatters the pooled cell
vectors back per table.

Cache entries are keyed by :func:`~repro.index.fingerprint.table_fingerprint`
``(content hash, segment)`` — never ``id(table)`` — so entries survive
garbage collection, are shared between equal-content tables, and remain
meaningful across processes.

The length-bucketed batches are mutually independent, which makes the
scatter step the only synchronization point: ``encode_corpus(...,
workers=N)`` ships the *same* batches the serial path would build to a
``ProcessPoolExecutor`` (the segment models are pickled once per worker)
and gathers the pooled mappings back in original batch order, so the
parallel path is bit-identical to the serial one — same cache entries,
same stats.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..core.config import SEGMENTS
from ..tables.table import Table
from .fingerprint import table_fingerprint

#: Default number of sequences per encoder forward.
DEFAULT_BATCH_SIZE = 32

#: Sequences are grouped into length buckets of this many tokens before
#: batching, so a batch pads to its bucket boundary rather than to the
#: longest sequence in the corpus (attention is quadratic in the padded
#: length, so mixed-length batches would erase the batching win).
LENGTH_BUCKET = 16

#: Cap on ``batch_size * padded_len**2`` per forward — the element count
#: of one attention-score matrix.  Beyond this the ``(B, heads, n, n)``
#: temporaries fall out of CPU cache and elementwise ops (softmax, gelu)
#: go memory-bandwidth-bound, so long sequences batch narrower and short
#: ones wider.
ATTENTION_AREA_BUDGET = 65536


#: Segment models installed in each worker process by the pool
#: initializer, so tasks ship only ``(segment, sequences)`` instead of
#: re-pickling the models per batch.
_WORKER_MODELS: dict | None = None


def _init_worker(models: dict) -> None:
    global _WORKER_MODELS
    _WORKER_MODELS = models


def _encode_batch(segment: str, sequences: list) -> list[dict]:
    """One encoder forward in a worker process (top-level so it pickles
    under every multiprocessing start method)."""
    return _WORKER_MODELS[segment].encode_pooled(sequences)


def default_workers() -> int:
    """A safe default worker count: physical parallelism minus one core
    for the gathering parent, at least 1."""
    return max((os.cpu_count() or 2) - 1, 1)


def _bucketed_batches(lengths: list[int], order: list[int],
                      size: int) -> list[list[int]]:
    """Split length-sorted positions into batches of at most ``size``
    that never cross a :data:`LENGTH_BUCKET` boundary or exceed the
    attention-area budget."""
    batches: list[list[int]] = []
    current: list[int] = []
    current_bucket = -1
    for i in order:
        bucket = (lengths[i] + LENGTH_BUCKET - 1) // LENGTH_BUCKET
        over_budget = (len(current) + 1) * lengths[i] ** 2 > ATTENTION_AREA_BUDGET
        if current and (len(current) >= size or bucket != current_bucket
                        or over_budget):
            batches.append(current)
            current = []
        current_bucket = bucket
        current.append(i)
    if current:
        batches.append(current)
    return batches


@dataclass
class StoreStats:
    """Counters for cache behaviour and batching (observability hooks)."""

    hits: int = 0
    misses: int = 0
    tables_encoded: int = 0
    sequences_encoded: int = 0
    batches: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class EmbeddingStore:
    """Content-addressed cache of pooled segment vectors for a corpus.

    Parameters
    ----------
    serializer:
        A :class:`~repro.core.serialize.TabBiNSerializer`.
    models:
        The four segment models (``row`` / ``column`` / ``hmd`` / ``vmd``).
    batch_size:
        Sequences per encoder forward when batch-encoding a corpus.
    """

    serializer: object
    models: dict
    batch_size: int = DEFAULT_BATCH_SIZE
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self):
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        # (fingerprint, segment) -> list[(CellRef, np.ndarray)]
        self._cache: dict[tuple[str, str], list[tuple]] = {}
        # Guards the encode-on-miss path in pooled(): concurrent query
        # threads hitting one uncached table must encode it once, not
        # race two encode_corpus calls over the same entry.  Cache hits
        # stay lock-free (dict reads are atomic under the GIL), so the
        # read-mostly query path does not serialize.
        self._lock = threading.Lock()

    def __getstate__(self):
        # Locks don't pickle; build_sharded ships the (cache-primed)
        # store to per-shard build workers.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def pooled(self, table: Table, segment: str) -> list[tuple]:
        """(CellRef, vector) pairs for one table under one segment model,
        encoding on demand when the table is not cached yet.

        Safe to call from many threads at once: lookups on a primed
        cache never block each other, and a miss encodes under a lock
        (double-checked) so one table is encoded exactly once.  The
        ``stats`` counters are advisory under concurrency.
        """
        key = (table_fingerprint(table), segment)
        entry = self._cache.get(key)
        if entry is not None:
            self.stats.hits += 1
            return entry
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                self.stats.hits += 1
                return entry
            self.stats.misses += 1
            self.encode_corpus([table], segments=(segment,))
            return self._cache[key]

    def contains(self, table: Table, segment: str) -> bool:
        return (table_fingerprint(table), segment) in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    # Batched corpus encoding
    # ------------------------------------------------------------------
    def encode_corpus(self, tables: list[Table],
                      segments: tuple[str, ...] = SEGMENTS,
                      batch_size: int | None = None,
                      workers: int | None = None) -> int:
        """Encode every uncached table through the given segment models.

        Sequences from all tables are pooled together, sorted by length
        (so a batch pads to a near-uniform length instead of the corpus
        maximum), chunked into ``batch_size`` groups, and scattered back
        per table.  Returns the number of (table, segment) entries newly
        encoded; equal-content duplicates are encoded once.

        ``workers=N`` (N > 1) scatters the batches across a process pool
        instead of encoding them in-loop.  The batches themselves — and
        therefore every pooled vector and every counter in
        :attr:`stats` — are exactly the ones the serial path produces;
        only the executor changes.  ``None`` or ``1`` stays serial (see
        :func:`default_workers` for a machine-sized choice).
        """
        size = self.batch_size if batch_size is None else batch_size
        if size <= 0:
            raise ValueError("batch_size must be positive")
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        pool: ProcessPoolExecutor | None = None
        encoded = 0
        try:
            for segment in segments:
                if segment not in self.models:
                    raise ValueError(f"unknown segment {segment!r}")
                pending: list[tuple[str, list]] = []
                seen: set[str] = set()
                for table in tables:
                    fp = table_fingerprint(table)
                    if fp in seen or (fp, segment) in self._cache:
                        continue
                    seen.add(fp)
                    pending.append((fp,
                                    self.serializer.serialize(table, segment)))
                if not pending:
                    continue

                flat = [(fp, seq) for fp, seqs in pending for seq in seqs]
                lengths = [len(seq) for _fp, seq in flat]
                order = sorted(range(len(flat)), key=lengths.__getitem__)
                mappings: list[dict | None] = [None] * len(flat)
                chunks = _bucketed_batches(lengths, order, size)
                if workers is not None and workers > 1 and len(chunks) > 1:
                    if pool is None:
                        # One pool for the whole call: the models pickle
                        # into each worker once, then tasks are cheap.
                        pool = ProcessPoolExecutor(
                            max_workers=workers, initializer=_init_worker,
                            initargs=(self.models,))
                    futures = [pool.submit(_encode_batch, segment,
                                           [flat[i][1] for i in chunk])
                               for chunk in chunks]
                    batched = (future.result() for future in futures)
                else:
                    model = self.models[segment]
                    batched = (model.encode_pooled([flat[i][1] for i in chunk])
                               for chunk in chunks)
                for chunk, pooled in zip(chunks, batched):
                    for i, mapping in zip(chunk, pooled):
                        mappings[i] = mapping
                    self.stats.batches += 1

                out_by_fp: dict[str, list[tuple]] = {fp: [] for fp, _ in pending}
                for (fp, seq), mapping in zip(flat, mappings):
                    for idx, vector in mapping.items():
                        out_by_fp[fp].append((seq.cell_refs[idx], vector))
                for fp, out in out_by_fp.items():
                    self._cache[(fp, segment)] = out
                encoded += len(pending)
                self.stats.tables_encoded += len(pending)
                self.stats.sequences_encoded += len(flat)
        finally:
            if pool is not None:
                pool.shutdown()
        return encoded
