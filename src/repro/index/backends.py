"""Pluggable index storage backends and the ``open_index`` facade.

Two on-disk layouts, one entry point:

- **Single file** (:class:`SingleFileBackend`) — the versioned ``.npz``
  :meth:`VectorIndex.save` writes.  Fully backward compatible: v1 files
  (pre-lifecycle, no ``format_version``/tombstones) and v2 files load
  unchanged.
- **Sharded directory** (:class:`ShardedDirBackend`) — a directory
  holding ``MANIFEST.json`` plus ``shard-0000.npz``, ``shard-0001.npz``,
  ... where every shard is itself a normal single-file index.  The
  manifest records the shared :class:`~repro.index.spec.IndexSpec`, the
  shard count, and per-shard entry/tombstone counts::

      {
        "manifest_version": 1,
        "spec": {"kind": ..., "dim": ..., "n_planes": ..., "n_bands": ...,
                 "seed": ..., "model_id": ..., "corpus": {...},
                 ...kind-specific extras (variant / composite)},
        "n_shards": N,
        "shards": [{"file": "shard-0000.npz", "entries": n,
                    "tombstones": t}, ...]
      }

:func:`open_index` sniffs which layout a path is (directory with a
manifest vs. ``.npz`` file, including the appended-suffix fallback) and
returns the right object — a :class:`~repro.index.index.VectorIndex`
subclass or a :class:`~repro.index.sharded.ShardedIndex`, which share
the query/lifecycle surface.  It is the **only** load entry point the
CLI uses, so error messages and format-version checks live here and in
``VectorIndex.load`` alone.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Protocol, runtime_checkable

from .index import VectorIndex
from .sharded import ShardedIndex
from .spec import IndexSpec

#: File that marks a directory as a sharded index layout.
MANIFEST_NAME = "MANIFEST.json"

#: Version stamp of the manifest schema.  Newer manifests are rejected
#: with a clear error instead of being silently mis-read.
MANIFEST_VERSION = 1

#: Shard filename pattern (``shard-0000.npz``, ...).
SHARD_TEMPLATE = "shard-{:04d}.npz"


@runtime_checkable
class IndexBackend(Protocol):
    """One on-disk layout: sniffing, loading and saving."""

    def handles(self, path: Path) -> bool:
        """Whether ``path`` looks like this backend's layout."""
        ...

    def load(self, path: Path):
        """Load the index stored at ``path``."""
        ...

    def save(self, index, path: Path) -> Path:
        """Persist ``index`` at ``path``; returns the written root."""
        ...


class SingleFileBackend:
    """Today's versioned ``.npz`` layout (v1 and v2 files)."""

    def handles(self, path: Path) -> bool:
        return (path.is_file()
                or path.with_name(path.name + ".npz").is_file())

    def load(self, path: Path) -> VectorIndex:
        return VectorIndex.load(path)

    def save(self, index: VectorIndex, path: Path) -> Path:
        return index.save(path)


class ShardedDirBackend:
    """Directory layout: ``MANIFEST.json`` + one ``.npz`` per shard."""

    def handles(self, path: Path) -> bool:
        return (path / MANIFEST_NAME).is_file()

    def load(self, path: Path) -> ShardedIndex:
        path = Path(path)
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        version = manifest.get("manifest_version", 1)
        if version > MANIFEST_VERSION:
            raise ValueError(f"{path} uses manifest v{version}; this build "
                             f"reads up to v{MANIFEST_VERSION}")
        spec = IndexSpec.from_params(manifest["spec"])
        shards = [VectorIndex.load(path / entry["file"])
                  for entry in manifest["shards"]]
        # ShardedIndex.__init__ re-validates kind/dim per shard, so a
        # hand-edited manifest cannot smuggle mismatched shards in.
        return ShardedIndex(spec, shards)

    def save(self, index: ShardedIndex, path: Path) -> Path:
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        entries = []
        for position, shard in enumerate(index.shards):
            filename = SHARD_TEMPLATE.format(position)
            shard.save(path / filename)
            entries.append({"file": filename, "entries": len(shard),
                            "tombstones": shard.n_tombstones})
        # Rebalancing to fewer shards must not leave orphan files that a
        # later manifest rewrite could resurrect.
        kept = {entry["file"] for entry in entries}
        for stale in path.glob("shard-*.npz"):
            if stale.name not in kept:
                stale.unlink()
        manifest = {"manifest_version": MANIFEST_VERSION,
                    "spec": index.spec.to_params(),
                    "n_shards": len(index.shards), "shards": entries}
        (path / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2)
                                          + "\n")
        return path


#: Sniffing order: the manifest is an unambiguous marker, so the
#: sharded backend goes first; the single-file backend then claims any
#: existing file (or appended-``.npz`` sibling).
BACKENDS: tuple[IndexBackend, ...] = (ShardedDirBackend(),
                                      SingleFileBackend())


def open_index(path: str | Path) -> VectorIndex | ShardedIndex:
    """Open a saved index of either layout.

    Returns a :class:`VectorIndex` subclass for single ``.npz`` files
    (legacy v1 and v2 formats included) or a :class:`ShardedIndex` for
    manifest directories.  Both expose the same query/lifecycle surface
    (``query_vector``, ``remove``, ``compact``, ``merge``, ``save``),
    so callers need not care which layout they got.
    """
    path = Path(path)
    for backend in BACKENDS:
        if backend.handles(path):
            return backend.load(path)
    if path.is_dir():
        raise FileNotFoundError(
            f"{path} is a directory without {MANIFEST_NAME} — not a "
            f"sharded index layout")
    raise FileNotFoundError(f"no index file at {path}")


def save_index(index: VectorIndex | ShardedIndex, path: str | Path) -> Path:
    """Persist ``index`` in its natural layout (single file for
    ``VectorIndex``, manifest directory for ``ShardedIndex``)."""
    backend = (ShardedDirBackend() if isinstance(index, ShardedIndex)
               else SingleFileBackend())
    return backend.save(index, Path(path))
