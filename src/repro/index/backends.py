"""Pluggable index storage backends and the ``open_index`` facade.

Two on-disk layouts, one entry point:

- **Single file** (:class:`SingleFileBackend`) — the versioned ``.npz``
  :meth:`VectorIndex.save` writes.  Fully backward compatible: v1 files
  (pre-lifecycle, no ``format_version``/tombstones) and v2 files load
  unchanged.
- **Sharded directory** (:class:`ShardedDirBackend`) — a directory
  holding ``MANIFEST.json`` plus ``shard-0000.npz``, ``shard-0001.npz``,
  ... where every shard is itself a normal single-file index.  The
  manifest records the shared :class:`~repro.index.spec.IndexSpec`, the
  shard count, and per-shard entry/tombstone counts::

      {
        "manifest_version": 1,
        "spec": {"kind": ..., "dim": ..., "n_planes": ..., "n_bands": ...,
                 "seed": ..., "model_id": ..., "corpus": {...},
                 ...kind-specific extras (variant / composite)},
        "n_shards": N,
        "shards": [{"file": "shard-0000.npz", "entries": n,
                    "tombstones": t}, ...]
      }

:func:`open_index` sniffs which layout a path is (directory with a
manifest vs. ``.npz`` file, including the appended-suffix fallback) and
returns the right object — a :class:`~repro.index.index.VectorIndex`
subclass or a :class:`~repro.index.sharded.ShardedIndex`, which share
the query/lifecycle surface.  It is the **only** load entry point the
CLI uses, so error messages and format-version checks live here and in
``VectorIndex.load`` alone.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import Protocol, runtime_checkable

from .index import FORMAT_VERSION, VectorIndex, read_saved_payload
from .sharded import ShardedIndex
from .spec import IndexSpec

#: File that marks a directory as a sharded index layout.
MANIFEST_NAME = "MANIFEST.json"

#: Version stamp of the manifest schema.  Newer manifests are rejected
#: with a clear error instead of being silently mis-read.
MANIFEST_VERSION = 1

#: Shard filename pattern (``shard-0000.npz``, ...).
SHARD_TEMPLATE = "shard-{:04d}.npz"


@runtime_checkable
class IndexBackend(Protocol):
    """One on-disk layout: sniffing, loading and saving."""

    def handles(self, path: Path) -> bool:
        """Whether ``path`` looks like this backend's layout."""
        ...

    def load(self, path: Path, mmap: bool = False):
        """Load the index stored at ``path``; ``mmap=True`` memory-maps
        the vector matrices read-only instead of reading them eagerly."""
        ...

    def save(self, index, path: Path) -> Path:
        """Persist ``index`` at ``path``; returns the written root."""
        ...


class SingleFileBackend:
    """Today's versioned ``.npz`` layout (v1 and v2 files)."""

    def handles(self, path: Path) -> bool:
        return (path.is_file()
                or path.with_name(path.name + ".npz").is_file())

    def load(self, path: Path, mmap: bool = False) -> VectorIndex:
        return VectorIndex.load(path, mmap=mmap)

    def save(self, index: VectorIndex, path: Path) -> Path:
        return index.save(path)


class ShardedDirBackend:
    """Directory layout: ``MANIFEST.json`` + one ``.npz`` per shard."""

    def handles(self, path: Path) -> bool:
        return (path / MANIFEST_NAME).is_file()

    def load(self, path: Path, mmap: bool = False) -> ShardedIndex:
        path = Path(path)
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        version = manifest.get("manifest_version", 1)
        if version > MANIFEST_VERSION:
            raise ValueError(f"{path} uses manifest v{version}; this build "
                             f"reads up to v{MANIFEST_VERSION}")
        entries = manifest.get("shards")
        spec_params = manifest.get("spec")
        if (not isinstance(entries, list) or not isinstance(spec_params, dict)
                or not all(isinstance(entry, dict) and "file" in entry
                           for entry in entries)):
            # A JSON-parseable manifest missing its required structure
            # must still be one clear ValueError, not a KeyError
            # traceback escaping open_index.
            raise ValueError(
                f"{path / MANIFEST_NAME} lacks the required 'spec'/'shards' "
                f"structure — the layout is inconsistent (partial write or "
                f"hand edit?)")
        declared = manifest.get("n_shards", len(entries))
        if declared != len(entries):
            raise ValueError(
                f"{path / MANIFEST_NAME} declares n_shards={declared} but "
                f"lists {len(entries)} shard files — the layout is "
                f"inconsistent (partial write or hand edit?)")
        try:
            spec = IndexSpec.from_params(spec_params)
        except KeyError as error:
            raise ValueError(
                f"{path / MANIFEST_NAME} spec lacks required field "
                f"{error} — the layout is inconsistent (partial write or "
                f"hand edit?)") from error
        # Validate every shard file *before* assembling the index, so a
        # broken layout surfaces as one clear error at open time — never
        # as a half-merged query result later.
        shards = []
        for entry in entries:
            shard_path = path / entry["file"]
            if not shard_path.is_file():
                # ValueError, not FileNotFoundError: the layout *is*
                # here, it just disagrees with its manifest — callers
                # reserve FileNotFoundError for "no index at this path"
                # (the CLI turns that into a "run index build" hint,
                # which would be misleading for a broken layout).
                raise ValueError(
                    f"{path} is missing shard file {entry['file']!r} listed "
                    f"in {MANIFEST_NAME} — the layout is inconsistent "
                    f"(partial write or deletion?)")
            if not zipfile.is_zipfile(shard_path):
                # Truncation loses the zip end-of-central-directory
                # record; garbage never had one.  np.load's own errors
                # here are misleading ("pickled data"), so sniff first.
                raise ValueError(f"shard file {shard_path} is corrupt or "
                                 f"truncated (not a valid .npz archive)")
            try:
                shard = VectorIndex.load(shard_path, mmap=mmap)
            except ValueError:
                # Format-version rejections are already clear.
                raise
            except Exception as error:
                # A well-formed zip that still fails to load (missing
                # arrays, mangled payload) raises zipfile / KeyError /
                # json flavours; normalize to one message.
                raise ValueError(f"shard file {shard_path} is corrupt or "
                                 f"truncated: {error}") from error
            if shard.kind != spec.kind or shard.dim != spec.dim:
                # The same rejection ShardedIndex.__init__ would raise,
                # surfaced before the entry-count integrity check: a
                # smuggled-in foreign shard should read as a vector-space
                # mismatch, not as a corrupt layout.
                raise ValueError(
                    f"shard file {shard_path} is ({shard.kind!r}, dim "
                    f"{shard.dim}), spec says ({spec.kind!r}, dim "
                    f"{spec.dim})")
            recorded = entry.get("entries")
            if recorded is not None and len(shard) != recorded:
                raise ValueError(
                    f"shard file {shard_path} holds {len(shard)} live "
                    f"entries but {MANIFEST_NAME} records {recorded} — the "
                    f"layout is inconsistent (partial write or hand edit?)")
            shards.append(shard)
        # ShardedIndex.__init__ re-validates kind/dim per shard, so a
        # hand-edited manifest cannot smuggle mismatched shards in.
        return ShardedIndex(spec, shards)

    def save(self, index: ShardedIndex, path: Path) -> Path:
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        entries = []
        for position, shard in enumerate(index.shards):
            filename = SHARD_TEMPLATE.format(position)
            shard.save(path / filename)
            entries.append({"file": filename, "entries": len(shard),
                            "tombstones": shard.n_tombstones,
                            "quantized": shard.quantized})
        # Rebalancing to fewer shards must not leave orphan files that a
        # later manifest rewrite could resurrect.
        kept = {entry["file"] for entry in entries}
        for stale in path.glob("shard-*.npz"):
            if stale.name not in kept:
                stale.unlink()
        manifest = {"manifest_version": MANIFEST_VERSION,
                    "spec": index.spec.to_params(),
                    "n_shards": len(index.shards), "shards": entries}
        (path / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2)
                                          + "\n")
        return path


#: Sniffing order: the manifest is an unambiguous marker, so the
#: sharded backend goes first; the single-file backend then claims any
#: existing file (or appended-``.npz`` sibling).
BACKENDS: tuple[IndexBackend, ...] = (ShardedDirBackend(),
                                      SingleFileBackend())


def open_index(path: str | Path, mmap: bool = False,
               quantized: bool = False) -> VectorIndex | ShardedIndex:
    """Open a saved index of either layout.

    Returns a :class:`VectorIndex` subclass for single ``.npz`` files
    (legacy v1 and v2 formats included) or a :class:`ShardedIndex` for
    manifest directories.  Both expose the same query/lifecycle surface
    (``query_vector``, ``remove``, ``compact``, ``merge``, ``save``),
    so callers need not care which layout they got.

    ``mmap=True`` memory-maps every vector matrix read-only instead of
    reading it eagerly — the cold-open mode the retrieval server uses:
    huge sharded layouts open without paying a full read, queries page
    in only the candidate rows they score, and results are bit-identical
    to an eager load (property-tested).  The mapped arrays are
    write-protected, so an accidental writeback raises instead of
    corrupting the file.  When the layout carries int8 sidecar members
    they are mapped (or read) alongside the fp matrix automatically.

    ``quantized=True`` additionally opts queries into the int8
    prefilter tier (``enable_quantized``); a layout without sidecar
    members raises ``ValueError`` naming the retrofit command.
    Rankings are bit-identical either way — the flag trades rerank
    cost for GEMM and resident-memory savings, not result quality.
    """
    path = Path(path)
    for backend in BACKENDS:
        if backend.handles(path):
            index = backend.load(path, mmap=mmap)
            if quantized:
                index.enable_quantized()
            return index
    if path.is_dir():
        raise FileNotFoundError(
            f"{path} is a directory without {MANIFEST_NAME} — not a "
            f"sharded index layout")
    raise FileNotFoundError(f"no index file at {path}")


def read_index_spec(path: str | Path) -> tuple[IndexSpec, int]:
    """Peek at a saved index's ``(spec, format_version)`` without
    loading any vector data.

    Works on both layouts: a sharded directory's spec comes from its
    manifest (format version from the first shard's payload — shards
    are written together, so one member answers for the layout), a
    single file's from the lazily-read ``.npz`` payload.  The cheap
    inspection path ``catalog add``/``catalog list`` use to verify an
    entry's kind and checkpoint stamp; same error contract as
    :func:`open_index` (``FileNotFoundError`` for "nothing here",
    ``ValueError`` for a broken or too-new layout)."""
    path = Path(path)
    if (path / MANIFEST_NAME).is_file():
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        version = manifest.get("manifest_version", 1)
        if version > MANIFEST_VERSION:
            raise ValueError(f"{path} uses manifest v{version}; this build "
                             f"reads up to v{MANIFEST_VERSION}")
        entries = manifest.get("shards")
        spec_params = manifest.get("spec")
        if (not isinstance(entries, list) or not isinstance(spec_params, dict)
                or not all(isinstance(entry, dict) and "file" in entry
                           for entry in entries)):
            raise ValueError(
                f"{path / MANIFEST_NAME} lacks the required 'spec'/'shards' "
                f"structure — the layout is inconsistent (partial write or "
                f"hand edit?)")
        try:
            spec = IndexSpec.from_params(spec_params)
        except KeyError as error:
            raise ValueError(
                f"{path / MANIFEST_NAME} spec lacks required field "
                f"{error} — the layout is inconsistent (partial write or "
                f"hand edit?)") from error
        if not entries:
            return spec, FORMAT_VERSION
        return spec, read_saved_payload(path / entries[0]["file"])[
            "format_version"]
    if path.is_file() or path.with_name(path.name + ".npz").is_file():
        payload = read_saved_payload(path)
        try:
            return (IndexSpec.from_params(payload["params"]),
                    payload["format_version"])
        except KeyError as error:
            raise ValueError(f"{path} payload lacks required field {error} — "
                             f"the file is corrupt or hand-edited") from error
    if path.is_dir():
        raise FileNotFoundError(
            f"{path} is a directory without {MANIFEST_NAME} — not a "
            f"sharded index layout")
    raise FileNotFoundError(f"no index file at {path}")


def save_index(index: VectorIndex | ShardedIndex, path: str | Path) -> Path:
    """Persist ``index`` in its natural layout (single file for
    ``VectorIndex``, manifest directory for ``ShardedIndex``)."""
    backend = (ShardedDirBackend() if isinstance(index, ShardedIndex)
               else SingleFileBackend())
    return backend.save(index, Path(path))
