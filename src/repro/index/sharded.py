"""Sharded index: one query/lifecycle surface over many shard files.

A :class:`ShardedIndex` holds N ordinary :class:`~repro.index.index.VectorIndex`
shards that share one :class:`~repro.index.spec.IndexSpec`.  Entries are
routed by a stable hash of their key's *table fingerprint* (column keys
``fingerprint:j`` route by the fingerprint prefix, so every column of a
table lands in the table's shard) — the same partition function
``build_sharded`` uses, so incremental ``add`` and map-reduce builds
agree on ownership.

Queries fan out: every shard ranks its own LSH candidates
(:meth:`VectorIndex.query_partial`), and the partial rankings are
heap-merged into a global top-k.  The brute-force fallback that keeps a
single index from silently shrinking results is decided *globally* — on
the candidate total across all shards — so a sharded query returns
exactly what one big index over the same corpus would (ties broken by
key, which is content-addressed and therefore layout-independent).

Queries also run *concurrently*, two orthogonal ways.  ``jobs=N`` fans
the per-shard work of one call across a thread pool — NumPy releases
the GIL inside the similarity GEMMs, so shards genuinely overlap — and
the gather preserves shard order, so threaded results are bit-identical
to the serial fan-out.  :meth:`query_many` takes a whole ``(Q, dim)``
query matrix and pushes it through each shard's batched partial path
(one hashing matmul per band, one similarity GEMM per shard) with the
brute-force fallback decided per query on the global candidate total.

The query path is **read-only**: no ``query_*`` method mutates shard
state, so any number of threads may query one ``ShardedIndex``
concurrently — with or without ``jobs=`` — as long as no writer
(``add``/``remove``/``compact``/``merge``/``rebalance``) runs
alongside them.  Writers are not synchronized with readers; interleave
them under an external lock if a workload needs both.  The same
read-only property is what lets ``open_index(path, mmap=True)`` back
every shard with a write-protected memory mapping (the serving
default): queries page in only the candidate rows they score, and any
accidental writeback raises instead of corrupting the layout.

Lifecycle operations dispatch to the owning shard (``remove``), sum
over shards (``compact``), or route incoming entries (``merge``, which
accepts single-file and sharded sources alike).  After skewed merges —
or to change the shard count — :meth:`rebalance` redistributes every
live entry back to its hash owner.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from ..retrieval.lsh import merge_ranked
from .index import FORMAT_VERSION, SearchHit, _check_jobs, merge_into
from .spec import IndexSpec


def shard_of(key: str, n_shards: int) -> int:
    """Owning shard for ``key`` under an ``n_shards`` layout.

    Routing hashes only the table-fingerprint prefix (the part before
    the first ``:``), so ``fp`` and ``fp:3`` co-locate; blake2b keeps
    the placement stable across processes and Python hash
    randomization.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be at least 1, got {n_shards}")
    fingerprint = key.split(":", 1)[0]
    digest = hashlib.blake2b(fingerprint.encode("utf-8"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_shards


def merge_shard_rankings(rankings: list[list[SearchHit]],
                         k: int) -> list[SearchHit]:
    """Heap-merge per-shard hit rankings into one global top-k, deduping
    keys (a manually assembled layout may hold one key in two shards).

    Module-level because it is the *whole* reduce step of a fan-out
    query: :class:`ShardedIndex` merges its local shards through it, and
    :class:`~repro.cluster.coordinator.RemoteShardedIndex` merges shard-
    server responses through the very same code — distributed results
    are bit-identical to local ones by construction, not by parallel
    reimplementation.  ``rankings`` must arrive in shard order; the
    shard count is implied by ``len(rankings)``.
    """
    by_key: dict[str, SearchHit] = {}
    for ranking in rankings:
        for hit in ranking:
            current = by_key.get(hit.key)
            if current is None or hit.score > current.score:
                by_key[hit.key] = hit
    # Over-fetch when deduping could shrink the result: a key held by
    # two shards (manually assembled layout) must count once, without
    # costing a slot another key earned.
    merged = merge_ranked([[(hit.key, hit.score) for hit in ranking]
                           for ranking in rankings],
                          k * len(rankings))
    hits, seen = [], set()
    for key, _score in merged:
        if key not in seen:
            seen.add(key)
            hits.append(by_key[key])
        if len(hits) == k:
            break
    return hits


class ShardedIndex:
    """N spec-sharing shards behind the ``VectorIndex`` query/lifecycle
    surface."""

    def __init__(self, spec: IndexSpec, shards: list):
        if not shards:
            raise ValueError("a sharded index needs at least one shard")
        for position, shard in enumerate(shards):
            if shard.kind != spec.kind or shard.dim != spec.dim:
                raise ValueError(
                    f"shard {position} is ({shard.kind!r}, dim {shard.dim}), "
                    f"spec says ({spec.kind!r}, dim {spec.dim})")
            # LSH geometry must match too: the fan-out fallback decision
            # sums per-shard candidate counts, which are only comparable
            # when every shard hashes through the same hyperplanes.
            mine = (shard.n_planes, shard.n_bands, shard.seed)
            want = (spec.n_planes, spec.n_bands, spec.seed)
            if mine != want:
                raise ValueError(
                    f"shard {position} has LSH geometry "
                    f"(planes, bands, seed)={mine}, spec says {want}")
        self.spec = spec
        self.shards = list(shards)
        # Generation offset for mutations the shard counters cannot
        # express monotonically (rebalance rebuilds the shards from
        # scratch, resetting their counters) — see :attr:`generation`.
        self._generation = 0

    @classmethod
    def create(cls, spec: IndexSpec, n_shards: int) -> "ShardedIndex":
        """An empty sharded index: ``n_shards`` fresh shards of ``spec``."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be at least 1, got {n_shards}")
        return cls(spec, [spec.create_index() for _ in range(n_shards)])

    # ------------------------------------------------------------------
    # Spec passthroughs (so callers treat either layout uniformly)
    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return self.spec.kind

    @property
    def dim(self) -> int:
        return self.spec.dim

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def corpus(self) -> dict:
        return self.spec.corpus

    @corpus.setter
    def corpus(self, stamp: dict) -> None:
        self.spec.corpus = stamp

    @property
    def model_id(self) -> str | None:
        return self.spec.model_id

    @model_id.setter
    def model_id(self, value: str | None) -> None:
        self.spec.model_id = value

    @property
    def format_version(self) -> int:
        """The newest on-disk format version among the shards (all are
        written together, so normally they agree); the health-check
        counterpart of ``VectorIndex.format_version``."""
        return max((shard.format_version for shard in self.shards),
                   default=FORMAT_VERSION)

    def shard_sizes(self) -> list[int]:
        """Live entries per shard (skew diagnostic)."""
        return [len(shard) for shard in self.shards]

    # ------------------------------------------------------------------
    # Quantized tier (delegates to the shards)
    # ------------------------------------------------------------------
    @property
    def quantized(self) -> bool:
        """Whether *every* shard carries the int8 sidecar — a layout is
        only quantized as a whole (empty shards count: they quantize to
        empty sidecars, so skewed layouts still qualify)."""
        return all(shard.quantized for shard in self.shards)

    @property
    def use_quantized(self) -> bool:
        """Whether every shard routes queries through the prefilter."""
        return all(shard.use_quantized for shard in self.shards)

    def quantize(self) -> int:
        """(Re)build every shard's int8 sidecar; returns total rows
        quantized.  Idempotent, like the single-file version."""
        return sum(shard.quantize() for shard in self.shards)

    def drop_quantized(self) -> None:
        for shard in self.shards:
            shard.drop_quantized()

    def enable_quantized(self, overfetch: int | None = None,
                         margin: int | None = None) -> None:
        """Opt every shard into quantized scoring (validated first, so
        a partially quantized layout fails whole rather than serving a
        mix of prefiltered and exact shards)."""
        for position, shard in enumerate(self.shards):
            if not shard.quantized:
                raise ValueError(
                    f"shard {position} has no quantized tier — build with "
                    f"`index build --quantize` or retrofit with `index "
                    f"quantize PATH`")
        for shard in self.shards:
            shard.enable_quantized(overfetch=overfetch, margin=margin)

    def disable_quantized(self) -> None:
        for shard in self.shards:
            shard.disable_quantized()

    @property
    def generation(self) -> int:
        """Monotonic mutation counter over the whole layout: the sum of
        the shard counters (every ``add``/``remove``/``compact``/
        ``merge`` dispatches to a shard, whose own generation bumps)
        plus an offset :meth:`rebalance` raises past the pre-rebalance
        total, so the value never repeats even though rebalancing
        replaces the shards with fresh ones.  The result cache folds
        this into its keys and drops everything when it changes."""
        return self._generation + sum(shard.generation
                                      for shard in self.shards)

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def _owner(self, key: str):
        return self.shards[shard_of(key, len(self.shards))]

    def _holding(self, key: str):
        """The shard that actually holds ``key`` — its hash owner in
        every layout this module writes, but a manually assembled
        directory may disagree, so fall back to scanning."""
        owner = self._owner(key)
        if key in owner:
            return owner
        for shard in self.shards:
            if shard is not owner and key in shard:
                return shard
        return None

    def add(self, key: str, vector: np.ndarray, meta: dict | None = None) -> int:
        """Route one entry to its owning shard; duplicate keys are
        no-ops *globally* — a key already held by a non-owner shard
        (manually assembled layout) is left where it is rather than
        inserted a second time.  Returns the shard-local id."""
        holder = self._holding(key)
        if holder is not None:
            return holder.add(key, vector, meta)
        return self._owner(key).add(key, vector, meta)

    def add_batch(self, keys: list[str], vectors: np.ndarray,
                  metas: list[dict] | None = None) -> list[int]:
        """Group a bulk insert per holding-or-owning shard, one
        vectorized LSH pass each.  Returns shard-local ids aligned with
        ``keys``."""
        if metas is None:
            metas = [{} for _ in keys]
        if not (len(keys) == len(vectors) == len(metas)):
            raise ValueError("keys, vectors and metas must align")
        groups: dict[int, list[int]] = {}
        for i, key in enumerate(keys):
            holder = self._holding(key)
            position = (self.shards.index(holder) if holder is not None
                        else shard_of(key, len(self.shards)))
            groups.setdefault(position, []).append(i)
        ids: list[int | None] = [None] * len(keys)
        vectors = np.asarray(vectors, float)
        for position, members in groups.items():
            shard_ids = self.shards[position].add_batch(
                [keys[i] for i in members], vectors[members],
                [metas[i] for i in members])
            for i, shard_id in zip(members, shard_ids):
                ids[i] = shard_id
        return ids

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def __contains__(self, key: str) -> bool:
        return self._holding(key) is not None

    def vector(self, key: str) -> np.ndarray:
        shard = self._holding(key)
        if shard is None:
            raise KeyError(f"no live entry for key {key!r}")
        return shard.vector(key)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def remove(self, key: str) -> None:
        """Tombstone ``key`` in the shard that holds it; ``KeyError``
        when no shard does."""
        shard = self._holding(key)
        if shard is None:
            raise KeyError(f"no live entry for key {key!r}")
        shard.remove(key)

    def compact(self) -> int:
        """Compact every shard; returns total slots reclaimed."""
        return sum(shard.compact() for shard in self.shards)

    @property
    def n_tombstones(self) -> int:
        return sum(shard.n_tombstones for shard in self.shards)

    def live_items(self) -> list[tuple[str, np.ndarray, dict]]:
        """``(key, vector, meta)`` across shards, shard-then-insertion
        order."""
        return [item for shard in self.shards for item in shard.live_items()]

    def _merge_signature(self) -> dict:
        return self.spec.signature()

    def merge(self, other) -> int:
        """Fold another index — single-file or sharded — into this one,
        routing every incoming live entry to its owning shard and
        deduping by key.  Returns the number of entries added."""
        return merge_into(self, other)

    def rebalance(self, n_shards: int | None = None) -> int:
        """Redistribute every live entry to its hash-owner shard,
        optionally under a new shard count.  Rebuilds the shards (so
        tombstones are reclaimed, like :meth:`compact`); returns the
        number of entries that changed shards."""
        target = len(self.shards) if n_shards is None else n_shards
        if target < 1:
            raise ValueError(f"n_shards must be at least 1, got {target}")
        # The fresh shards below start unquantized; carry the layout's
        # quantization state (sidecar presence, scoring opt-in and its
        # knobs) across the rebuild so a quantized layout never comes
        # out of a lifecycle op with fp vectors missing their int8
        # twins.
        was_quantized = self.quantized
        was_enabled = self.use_quantized
        overfetch = self.shards[0].q_overfetch
        margin = self.shards[0].q_margin
        moved = 0
        buckets: list[list[tuple[str, np.ndarray, dict]]] = \
            [[] for _ in range(target)]
        for position, shard in enumerate(self.shards):
            for key, vector, meta in shard.live_items():
                owner = shard_of(key, target)
                if owner != position:
                    moved += 1
                buckets[owner].append((key, vector, meta))
        fresh = [self.spec.create_index() for _ in range(target)]
        for shard, items in zip(fresh, buckets):
            if was_quantized:
                # Quantize-before-insert: add_batch then extends the
                # sidecar in lockstep with the fp rows.
                shard.quantize()
            if items:
                shard.add_batch([key for key, _vec, _meta in items],
                                np.stack([vec for _key, vec, _meta in items]),
                                [meta for _key, _vec, meta in items])
            if was_enabled:
                shard.enable_quantized(overfetch=overfetch, margin=margin)
        # The fresh shards' counters restart near zero; raise the offset
        # past the old total so the layout generation stays monotonic
        # (a cache key must never be re-minted by a later state).
        self._generation = self.generation + 1
        self.shards = fresh
        return moved

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _map_shards(self, fn, jobs: int | None) -> list:
        """Apply ``fn`` to every shard, serially or — ``jobs > 1`` —
        across a thread pool.  Results come back in shard order either
        way, so downstream merges are order-stable and the threaded
        fan-out is bit-identical to the serial one (per-shard arithmetic
        is untouched; only the executor changes).  A shard failure
        propagates out of the pool's context manager — no half-merged
        results, no leaked threads."""
        return self._map(fn, self.shards, jobs)

    def _map(self, fn, items: list, jobs: int | None) -> list:
        """The executor half of :meth:`_map_shards`, over arbitrary
        per-shard work items (the shortlist path maps over
        ``enumerate(self.shards)`` because each shard reads its own
        column of the shortlists)."""
        _check_jobs(jobs)
        if jobs is None or jobs == 1 or len(items) == 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=min(jobs, len(items))) as pool:
            return list(pool.map(fn, items))

    def _merge_partials(self, rankings: list[list[SearchHit]],
                        k: int) -> list[SearchHit]:
        """The shared reduce step (:func:`merge_shard_rankings`); every
        query path passes exactly one ranking per shard."""
        return merge_shard_rankings(rankings, k)

    def query_vector(self, vector: np.ndarray, k: int = 10,
                     exclude: str | None = None,
                     jobs: int | None = None) -> list[SearchHit]:
        """Fan-out top-k: every shard ranks its own LSH candidates, the
        partial rankings heap-merge into a global top-k.  Matches a
        single index over the same corpus exactly — including the
        brute-force fallback, which triggers on the candidate total
        across shards, never per shard.  ``jobs=N`` spreads the
        per-shard work over N threads with bit-identical results."""
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        partials = self._map_shards(
            lambda shard: shard.query_partial(vector, k, exclude=exclude),
            jobs)
        if sum(count for count, _hits in partials) < k:
            rankings = self._map_shards(
                lambda shard: shard.query_brute(vector, k, exclude=exclude),
                jobs)
        else:
            rankings = [hits for _count, hits in partials]
        return self._merge_partials(rankings, k)

    def query_many(self, vectors: np.ndarray, k: int = 10,
                   excludes: list[str | None] | None = None,
                   jobs: int | None = None) -> list[list[SearchHit]]:
        """Batched fan-out: one ``(Q, dim)`` query matrix, top-k hits
        per row.  Each shard runs its batched partial path (one hashing
        matmul per band, one similarity GEMM per shard) over the whole
        matrix; per query, the brute-force fallback is decided on the
        candidate total across shards and the per-shard rankings
        heap-merge exactly as :meth:`query_vector` would — rankings are
        identical to Q serial single-query calls (property-tested).
        ``excludes`` is an optional per-query key list aligned with the
        rows; ``jobs=N`` fans the shards over N threads."""
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        matrix = np.asarray(vectors, float)
        per_shard = self._map_shards(
            lambda shard: shard.query_partial_many(matrix, k,
                                                   excludes=excludes),
            jobs)
        # Global fallback decision, per query: sum candidate counts
        # across shards, exactly the serial fan-out's rule.
        short = [q for q in range(len(matrix))
                 if sum(partials[q][0] for partials in per_shard) < k]
        brute_by_query: dict[int, int] = {q: pos
                                          for pos, q in enumerate(short)}
        if short:
            brute_excludes = (None if excludes is None
                              else [excludes[q] for q in short])
            brute_per_shard = self._map_shards(
                lambda shard: shard.query_brute_many(matrix[short], k,
                                                     excludes=brute_excludes),
                jobs)
        results: list[list[SearchHit]] = []
        for q in range(len(matrix)):
            if q in brute_by_query:
                rankings = [brute[brute_by_query[q]]
                            for brute in brute_per_shard]
            else:
                rankings = [partials[q][1] for partials in per_shard]
            results.append(self._merge_partials(rankings, k))
        return results

    # ------------------------------------------------------------------
    # Shortlist path (result cache's semantic tier)
    # ------------------------------------------------------------------
    def band_key_tuples(self, vectors: np.ndarray) -> list[tuple[int, ...]]:
        """One packed-band-key tuple per query row.  Every shard shares
        the spec's LSH geometry (enforced by the constructor), so the
        first shard's hyperplanes speak for the whole layout — the tuple
        is the query's semantic identity across all shards at once."""
        return self.shards[0].lsh.key_tuples(np.asarray(vectors, float))

    def collect_shortlists(self, vectors: np.ndarray
                           ) -> tuple[list[tuple[int, ...]],
                                      list[tuple[np.ndarray, ...]]]:
        """``(band key tuples, candidate shortlists)``: hash the query
        matrix once, probe every shard's buckets with the shared keys.
        A shortlist is an ``n_shards``-tuple of sorted shard-local id
        arrays — exactly the candidates the uncached fan-out would rank
        (tombstones dropped, excludes left for rescore time)."""
        matrix = np.asarray(vectors, float)
        keys = self.band_key_tuples(matrix)
        per_shard = [shard.lsh.candidates_for_keys(keys)
                     for shard in self.shards]
        shortlists = [tuple(np.fromiter(sorted(cands[q]), dtype=np.int64,
                                        count=len(cands[q]))
                            for cands in per_shard)
                      for q in range(len(matrix))]
        return keys, shortlists

    def query_with_shortlists(self, vectors: np.ndarray, k: int,
                              shortlists: list[tuple[np.ndarray, ...]],
                              excludes: list[str | None] | None = None,
                              jobs: int | None = None
                              ) -> list[list[SearchHit]]:
        """:meth:`query_many` with the per-shard hash-and-probe replaced
        by caller-supplied shortlists (the result cache's semantic-tier
        reuse path).  Each shard ranks its shortlist column through the
        same kernels the uncached fan-out uses, the brute-force fallback
        is decided per query on the *global* post-exclude candidate
        total, and the per-shard rankings heap-merge identically — so
        for shortlists from :meth:`collect_shortlists` at the same
        generation the results match the uncached call exactly
        (property-tested in ``tests/cache/``)."""
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        matrix = np.asarray(vectors, float)
        if len(shortlists) != len(matrix):
            raise ValueError(f"shortlists must align with the "
                             f"{len(matrix)} queries, got {len(shortlists)}")
        for q, shortlist in enumerate(shortlists):
            if len(shortlist) != len(self.shards):
                raise ValueError(
                    f"shortlist {q} has {len(shortlist)} shard columns, "
                    f"layout has {len(self.shards)} shards — it was "
                    f"collected from a different layout")

        def shard_partials(item):
            position, shard = item
            exclude_ids = shard._exclude_ids(excludes, len(matrix))
            removed = shard.lsh.removed
            cand_sets: list[set[int]] = []
            for q in range(len(matrix)):
                cands = {int(i) for i in shortlists[q][position]}
                cands.difference_update(removed)
                if exclude_ids[q] is not None:
                    cands.discard(exclude_ids[q])
                cand_sets.append(cands)
            rankings = shard.lsh._rank_many(
                cand_sets, matrix, None, shortlist=shard._shortlist_for(k))
            return ([len(cands) for cands in cand_sets],
                    [shard._hits(ranked, k) for ranked in rankings])

        per_shard = self._map(shard_partials, list(enumerate(self.shards)),
                              jobs)
        # Global fallback decision, per query — query_many's rule.
        short = [q for q in range(len(matrix))
                 if sum(counts[q] for counts, _hits in per_shard) < k]
        brute_by_query = {q: pos for pos, q in enumerate(short)}
        if short:
            brute_excludes = (None if excludes is None
                              else [excludes[q] for q in short])
            brute_per_shard = self._map_shards(
                lambda shard: shard.query_brute_many(matrix[short], k,
                                                     excludes=brute_excludes),
                jobs)
        results: list[list[SearchHit]] = []
        for q in range(len(matrix)):
            if q in brute_by_query:
                rankings = [brute[brute_by_query[q]]
                            for brute in brute_per_shard]
            else:
                rankings = [hits[q] for _counts, hits in per_shard]
            results.append(self._merge_partials(rankings, k))
        return results

    def query_table(self, embedder, table, k: int = 10,
                    exclude_self: bool = True,
                    jobs: int | None = None) -> list[SearchHit]:
        """Table-kind counterpart of :meth:`TableIndex.query_table`."""
        from .fingerprint import table_fingerprint

        if self.kind != "table":
            raise ValueError(f"query_table needs a table index, "
                             f"not kind {self.kind!r}")
        variant = self.spec.extra.get("variant", "tblcomp1")
        vector = embedder.table_embedding(table, variant=variant)
        exclude = table_fingerprint(table) if exclude_self else None
        return self.query_vector(vector, k, exclude=exclude, jobs=jobs)

    def query_column(self, embedder, table, j: int, k: int = 10,
                     exclude_self: bool = True,
                     jobs: int | None = None) -> list[SearchHit]:
        """Column-kind counterpart of :meth:`ColumnIndex.query_column`."""
        from .fingerprint import table_fingerprint

        if self.kind != "column":
            raise ValueError(f"query_column needs a column index, "
                             f"not kind {self.kind!r}")
        composite = self.spec.extra.get("composite", True)
        vector = embedder.column_embedding(table, j, composite=composite)
        exclude = (f"{table_fingerprint(table)}:{j}"
                   if exclude_self else None)
        return self.query_vector(vector, k, exclude=exclude, jobs=jobs)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the sharded directory layout (see
        :class:`~repro.index.backends.ShardedDirBackend`)."""
        from .backends import ShardedDirBackend

        return ShardedDirBackend().save(self, path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardedIndex(kind={self.kind!r}, dim={self.dim}, "
                f"shards={self.shard_sizes()})")
