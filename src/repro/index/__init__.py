"""Corpus indexing: batched embedding store + persistent LSH indexes.

The scaling path for the paper's retrieval tasks (Section 4 embeds
hundreds of thousands of columns): :func:`table_fingerprint` gives
tables stable content-addressed identities, :class:`EmbeddingStore`
batch-encodes whole corpora through the four segment models, and
:class:`TableIndex` / :class:`ColumnIndex` persist composite embeddings
behind cosine LSH for sub-quadratic search.

Persistence goes through pluggable backends (:mod:`repro.index.backends`):
a single versioned ``.npz`` or a sharded directory of them
(``MANIFEST.json`` + ``shard-XXXX.npz``) behind a
:class:`~repro.index.sharded.ShardedIndex`.  :func:`open_index` is the
one load entry point — it sniffs the layout and returns the right
object.
"""

from .backends import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    IndexBackend,
    ShardedDirBackend,
    SingleFileBackend,
    open_index,
    read_index_spec,
    save_index,
)
from .fingerprint import table_fingerprint
from .index import (
    FORMAT_VERSION,
    ColumnIndex,
    SearchHit,
    TableIndex,
    VectorIndex,
    index_class,
    load_index,
    read_saved_payload,
)
from .sharded import ShardedIndex, merge_shard_rankings, shard_of
from .spec import IndexSpec
from .store import DEFAULT_BATCH_SIZE, EmbeddingStore, StoreStats, default_workers

__all__ = [
    "table_fingerprint",
    "EmbeddingStore", "StoreStats", "DEFAULT_BATCH_SIZE", "default_workers",
    "VectorIndex", "TableIndex", "ColumnIndex", "SearchHit", "load_index",
    "FORMAT_VERSION", "index_class",
    "IndexSpec", "ShardedIndex", "shard_of", "merge_shard_rankings",
    "IndexBackend", "SingleFileBackend", "ShardedDirBackend",
    "open_index", "save_index", "read_index_spec", "read_saved_payload",
    "MANIFEST_NAME", "MANIFEST_VERSION",
]
