"""Corpus indexing: batched embedding store + persistent LSH indexes.

The scaling path for the paper's retrieval tasks (Section 4 embeds
hundreds of thousands of columns): :func:`table_fingerprint` gives
tables stable content-addressed identities, :class:`EmbeddingStore`
batch-encodes whole corpora through the four segment models, and
:class:`TableIndex` / :class:`ColumnIndex` persist composite embeddings
behind cosine LSH for sub-quadratic search.
"""

from .fingerprint import table_fingerprint
from .index import (
    FORMAT_VERSION,
    ColumnIndex,
    SearchHit,
    TableIndex,
    VectorIndex,
    load_index,
)
from .store import DEFAULT_BATCH_SIZE, EmbeddingStore, StoreStats, default_workers

__all__ = [
    "table_fingerprint",
    "EmbeddingStore", "StoreStats", "DEFAULT_BATCH_SIZE", "default_workers",
    "VectorIndex", "TableIndex", "ColumnIndex", "SearchHit", "load_index",
    "FORMAT_VERSION",
]
