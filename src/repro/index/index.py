"""Persistent LSH-backed vector indexes over tables and columns.

A :class:`VectorIndex` owns a :class:`~repro.retrieval.lsh.CosineLSH`
plus the external keys (table fingerprints, ``fingerprint:col`` pairs)
and display metadata for every vector.  :class:`TableIndex` and
:class:`ColumnIndex` specialize it with the paper's composite embeddings
(tblcomp / colcomp, Figure 5) and corpus ``build`` constructors that go
through the batched :class:`~repro.index.store.EmbeddingStore` path.

Indexes round-trip to a single ``.npz`` file: the vector matrix is
stored as an array, everything else (keys, metadata, LSH and embedding
parameters) as a JSON blob.  Loading re-derives the LSH buckets with one
vectorized ``add_all`` — the hyperplanes are seeded, so buckets are
bit-identical across processes.  Files written since the serving work
additionally persist the packed LSH band keys (``band_keys``, an
optional array older readers simply ignore), so a reload rebuilds the
buckets from the saved keys instead of re-hashing every vector — and
``load(mmap=True)`` memory-maps the vector matrix straight out of the
(uncompressed) ``.npz`` member, making a cold open touch no vector data
at all: queries page in only the candidate rows they actually score.

Corpora churn, so indexes have a lifecycle beyond ``build``:
:meth:`VectorIndex.remove` tombstones an entry (dropped from the LSH
buckets, slot retained), :meth:`VectorIndex.compact` rebuilds the dense
arrays and bucket tables without the tombstones, and
:meth:`VectorIndex.merge` folds another compatible index in, deduping by
fingerprint key.  The ``.npz`` format is versioned
(:data:`FORMAT_VERSION`) and persists tombstones, so ``save``/``load``
is an exact round-trip at any point of the lifecycle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..retrieval.lsh import CosineLSH
from ..retrieval.quantized import MARGIN, OVERFETCH, shortlist_size
from ..tables.table import Table
from .fingerprint import table_fingerprint

_PAYLOAD_KEY = "__index__"

#: On-disk ``.npz`` format version.  Version 1 (unversioned payloads
#: from before the lifecycle work) had no tombstones; version 2 adds
#: ``format_version`` and a ``tombstones`` id list.  Loaders accept any
#: version up to this one and reject newer files with a clear error
#: instead of silently mis-reading them.
FORMAT_VERSION = 2

#: Name ``np.savez`` gives the vector-matrix member inside the archive.
_VECTORS_MEMBER = "vectors.npy"

#: Archive members of the optional int8 sidecar, in
#: ``(q8, scales, norms)`` order.  Additive: old readers only look at
#: ``vectors``/``band_keys``/the payload, so quantized files load
#: everywhere; files without these members simply have no sidecar.
_QUANT_MEMBERS = ("q8", "q_scales", "q_norms")


def _mmap_npz_member(path: Path, name: str = _VECTORS_MEMBER) -> np.ndarray:
    """Memory-map one array member of an ``.npz`` archive, read-only.

    ``np.load(..., mmap_mode=...)`` ignores the mode for zipped
    archives, so this locates the member's data inside the zip by hand:
    ``np.savez`` stores members uncompressed (``ZIP_STORED``), which
    means the raw ``.npy`` bytes sit contiguously at a knowable offset —
    local file header, then the npy header, then the data.  The returned
    ``np.memmap`` is opened ``mode="r"``: every row handed out is
    read-only, so an accidental writeback anywhere in the query or
    lifecycle paths raises instead of silently corrupting the mapping.

    Members that *are* compressed (no writer in this repo produces them)
    raise ``ValueError`` so the caller can fall back to an eager read.
    """
    import zipfile

    from numpy.lib import format as npy_format

    with zipfile.ZipFile(path) as archive:
        info = archive.getinfo(name)
        if info.compress_type != zipfile.ZIP_STORED:
            raise ValueError(f"{name} in {path} is compressed; only stored "
                             f"members can be memory-mapped")
    with open(path, "rb") as handle:
        handle.seek(info.header_offset)
        local_header = handle.read(30)
        if local_header[:4] != b"PK\x03\x04":
            raise ValueError(f"{path}: corrupt zip local header for {name}")
        # The *local* header's name/extra lengths can differ from the
        # central directory's (zip tools pad extras), so read them here.
        name_len = int.from_bytes(local_header[26:28], "little")
        extra_len = int.from_bytes(local_header[28:30], "little")
        handle.seek(info.header_offset + 30 + name_len + extra_len)
        version = npy_format.read_magic(handle)
        try:
            read_header = {(1, 0): npy_format.read_array_header_1_0,
                           (2, 0): npy_format.read_array_header_2_0}[version]
        except KeyError:
            raise ValueError(f"{path}: unsupported npy format version "
                             f"{version} for member {name}") from None
        shape, fortran_order, dtype = read_header(handle)
        if dtype.hasobject:
            raise ValueError(f"{path}: member {name} holds objects and "
                             f"cannot be memory-mapped")
        offset = handle.tell()
    return np.memmap(path, dtype=dtype, mode="r", offset=offset, shape=shape,
                     order="F" if fortran_order else "C")


def _load_member(path: Path, name: str, mmap: bool) -> np.ndarray:
    """One archive member, memory-mapped when asked and possible.

    The mmap parser reads each member's own npy header, so dtype and
    alignment come from the member itself — the fp ``vectors`` matrix,
    the int8 ``q8`` sidecar and its float32 constants all map through
    the same code path.  A member that cannot be mapped (compressed by
    a foreign writer, or zero-length — ``mmap`` rejects empty ranges)
    falls back to an eager read of *that member only*, never dragging
    the rest of the archive into memory with it.
    """
    if mmap:
        try:
            return _mmap_npz_member(path, name + ".npy")
        except (ValueError, OSError):
            pass
    with np.load(path) as archive:
        return archive[name]


#: Embedder installed in each ``build_sharded`` worker process by the
#: pool initializer, so each worker unpickles the (cache-primed)
#: embedder once instead of per partition.
_BUILD_EMBEDDER = None


def _init_build_worker(embedder) -> None:
    global _BUILD_EMBEDDER
    _BUILD_EMBEDDER = embedder


def _build_partition(cls, partition: list, batch_size: int | None,
                     build_kwargs: dict):
    """One per-shard build in a worker process (top-level so it pickles
    under every multiprocessing start method).  The global precompute
    already primed the shipped embedder's cache, so this composes
    vectors without any encoder forwards."""
    return cls.build(_BUILD_EMBEDDER, partition, batch_size=batch_size,
                     **build_kwargs)


def _check_jobs(jobs: int | None) -> None:
    """Shared validation for the ``jobs=`` thread fan-out knob — both
    layouts reject non-positive counts the way ``k < 1`` is rejected."""
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be at least 1, got {jobs}")


@dataclass(frozen=True)
class SearchHit:
    """One ranked neighbour: external key, cosine score, display metadata."""

    key: str
    score: float
    meta: dict

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SearchHit({self.key!r}, {self.score:.3f}, {self.meta})"


class VectorIndex:
    """Keyed cosine-LSH index with ``.npz`` persistence."""

    kind = "vector"

    def __init__(self, dim: int, n_planes: int = 8, n_bands: int = 4,
                 seed: int = 0):
        self.dim = dim
        self.n_planes = n_planes
        self.n_bands = n_bands
        self.seed = seed
        self.lsh = CosineLSH(dim, n_planes=n_planes, n_bands=n_bands, seed=seed)
        self.keys: list[str] = []
        self.meta: list[dict] = []
        self._id_of: dict[str, int] = {}
        #: Free-form provenance (e.g. dataset/n_tables/seed) persisted
        #: with the index so queries can check they target the same
        #: corpus the index was built from.
        self.corpus: dict = {}
        #: Fingerprint of the embedder the vectors came from (see
        #: :meth:`~repro.core.embedder.TabBiNEmbedder.fingerprint`);
        #: ``None`` for hand-built indexes.  :meth:`merge` refuses to
        #: mix vectors from two *different known* checkpoints — same
        #: dim and variant do not imply the same embedding space.
        self.model_id: str | None = None
        #: The on-disk format version this index was loaded from
        #: (:data:`FORMAT_VERSION` for a fresh in-memory build).
        #: Surfaced by the server's ``/healthz`` so a deployment can
        #: verify which format generation is live.
        self.format_version: int = FORMAT_VERSION
        #: Monotonic mutation counter.  Every operation that can change
        #: what a query returns — ``add``/``add_batch`` (new entries),
        #: ``remove``, ``compact`` (slot ids shuffle), ``merge`` (via
        #: ``add_batch``) — bumps it, so any result or candidate
        #: shortlist cached against an older generation is structurally
        #: unreachable (the cache folds the generation into its keys
        #: and clears on change).  Deliberately *not* persisted: a
        #: fresh load is a fresh cache scope.
        self.generation: int = 0
        #: Whether queries route through the int8 prefilter
        #: (:meth:`enable_quantized`).  Distinct from :attr:`quantized`
        #: — a sidecar can be present but unused; scoring through it is
        #: an explicit opt-in (``serve --quantized``,
        #: ``open_index(quantized=True)``).
        self.use_quantized: bool = False
        #: Shortlist sizing knobs (see
        #: :func:`~repro.retrieval.quantized.shortlist_size`).
        self.q_overfetch: int = OVERFETCH
        self.q_margin: int = MARGIN

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add(self, key: str, vector: np.ndarray, meta: dict | None = None) -> int:
        """Index one vector under ``key``; duplicate keys are no-ops
        (equal-content tables share a fingerprint and one entry)."""
        existing = self._id_of.get(key)
        if existing is not None:
            return existing
        idx = self.lsh.add(vector)
        self.keys.append(key)
        self.meta.append(meta or {})
        self._id_of[key] = idx
        self.generation += 1
        return idx

    def add_batch(self, keys: list[str], vectors: np.ndarray,
                  metas: list[dict] | None = None) -> list[int]:
        """Bulk insert distinct keys with one vectorized LSH pass."""
        if metas is None:
            metas = [{} for _ in keys]
        if not (len(keys) == len(vectors) == len(metas)):
            raise ValueError("keys, vectors and metas must align")
        fresh: list[int] = []
        batch_seen: set[str] = set()
        for i, key in enumerate(keys):
            if key not in self._id_of and key not in batch_seen:
                batch_seen.add(key)
                fresh.append(i)
        if fresh:
            ids = self.lsh.add_all(np.asarray(vectors, float)[fresh])
            for i, idx in zip(fresh, ids):
                self.keys.append(keys[i])
                self.meta.append(metas[i])
                self._id_of[keys[i]] = idx
            self.generation += 1
        return [self._id_of[key] for key in keys]

    def __len__(self) -> int:
        """Number of *live* (non-tombstoned) entries."""
        return len(self._id_of)

    def __contains__(self, key: str) -> bool:
        return key in self._id_of

    def vector(self, key: str) -> np.ndarray:
        return self.lsh.vector(self._id_of[key])

    # ------------------------------------------------------------------
    # Lifecycle: remove / compact / merge
    # ------------------------------------------------------------------
    def remove(self, key: str) -> None:
        """Tombstone ``key``: queries stop returning it immediately; the
        dense slot is reclaimed by the next :meth:`compact`.  Removing a
        key that is not live raises ``KeyError``."""
        idx = self._id_of.pop(key, None)
        if idx is None:
            raise KeyError(f"no live entry for key {key!r}")
        self.lsh.remove(idx)
        self.generation += 1

    @property
    def n_tombstones(self) -> int:
        """Entries removed since the last :meth:`compact`."""
        return len(self.lsh.removed)

    def live_items(self) -> list[tuple[str, np.ndarray, dict]]:
        """``(key, vector, meta)`` for every live entry, insertion order."""
        return [(self.keys[i], self.lsh.vector(i), self.meta[i])
                for i in self.lsh.live_ids()]

    def compact(self) -> int:
        """Rebuild the dense arrays and LSH bucket tables without the
        tombstones; returns the number of slots reclaimed.  A no-op (and
        no rebuild) when nothing was removed."""
        dropped = self.n_tombstones
        if not dropped:
            return 0
        # Dense ids shuffle below, so any cached candidate shortlist
        # (id-addressed) is wrong from here on: bump before rebuilding.
        self.generation += 1
        was_quantized = self.lsh.quantized
        live = self.live_items()
        self.lsh = CosineLSH(self.dim, n_planes=self.n_planes,
                             n_bands=self.n_bands, seed=self.seed)
        if was_quantized:
            # Quantize-before-insert so add_all extends the (empty)
            # sidecar in lockstep: a quantized index never holds fp
            # rows without their int8 twins, even mid-compaction.
            self.lsh.quantize()
        self.keys, self.meta, self._id_of = [], [], {}
        if live:
            vectors = np.stack([vec for _key, vec, _meta in live])
            ids = self.lsh.add_all(vectors)
            self.keys = [key for key, _vec, _meta in live]
            self.meta = [meta for _key, _vec, meta in live]
            self._id_of = dict(zip(self.keys, ids))
        return dropped

    # ------------------------------------------------------------------
    # Quantized tier
    # ------------------------------------------------------------------
    @property
    def quantized(self) -> bool:
        """Whether the int8 sidecar is present (it is then kept fresh
        through every mutation — see ``CosineLSH._extend_quantized`` and
        :meth:`compact`)."""
        return self.lsh.quantized

    def quantize(self) -> int:
        """(Re)build the int8 sidecar from the current fp vectors.
        Idempotent — running it on an already-quantized index refreshes
        the sidecar in place.  Returns the number of rows quantized.
        Queries are unaffected until :meth:`enable_quantized` opts in,
        and rankings are identical either way."""
        return self.lsh.quantize()

    def drop_quantized(self) -> None:
        """Detach the sidecar; the next :meth:`save` writes a plain
        (unquantized) layout."""
        self.lsh.drop_quantized()
        self.use_quantized = False

    def enable_quantized(self, overfetch: int | None = None,
                         margin: int | None = None) -> None:
        """Route queries through the int8 prefilter.  Requires the
        sidecar (build with ``--quantize`` or retrofit with ``index
        quantize``); rankings stay bit-identical to the exact path as
        long as the shortlist holds the true top-k (the recall contract
        the equivalence suite and benchmark gate pin)."""
        if not self.lsh.quantized:
            raise ValueError(
                "index has no quantized tier — build with `index build "
                "--quantize` or retrofit with `index quantize PATH`")
        if overfetch is not None:
            if overfetch < 1:
                raise ValueError(f"overfetch must be at least 1, "
                                 f"got {overfetch}")
            self.q_overfetch = overfetch
        if margin is not None:
            if margin < 0:
                raise ValueError(f"margin must be at least 0, got {margin}")
            self.q_margin = margin
        self.use_quantized = True

    def disable_quantized(self) -> None:
        """Stop routing queries through the prefilter (sidecar kept)."""
        self.use_quantized = False

    def _shortlist_for(self, k: int) -> int | None:
        """The prefilter size active query paths pass down to the LSH
        kernels — ``None`` (no prefilter) unless quantized scoring is
        enabled *and* the sidecar is attached."""
        if not (self.use_quantized and self.lsh.quantized):
            return None
        return shortlist_size(k, self.q_overfetch, self.q_margin)

    def _merge_signature(self) -> dict:
        """Parameters two indexes must share to be merged.  LSH geometry
        (``n_planes``/``n_bands``/``seed``) is deliberately absent: the
        merged index keeps *this* index's hyperplanes and incoming
        vectors are re-hashed through them, so only the vector space
        (kind, dim, embedding-composition params and — when both are
        known — the source model's fingerprint) must agree."""
        signature = self._params()
        for local in ("n_planes", "n_bands", "seed", "corpus"):
            signature.pop(local, None)
        return signature

    def merge(self, other: "VectorIndex") -> int:
        """Fold ``other``'s live entries into this index, deduping by
        key (fingerprints, so equal-content tables merge to one entry).
        Returns the number of entries actually added; incompatible
        parameters (see :meth:`_merge_signature`) raise ``ValueError``.

        ``other`` may be any object with the live-entry surface —
        including a :class:`~repro.index.sharded.ShardedIndex` — so the
        CLI can merge across layouts."""
        return merge_into(self, other)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _hits(self, ranked: list[tuple[int, float]],
              k: int) -> list[SearchHit]:
        """Re-break score ties in ranked ``(id, score)`` pairs by
        external key, truncate, then materialize hits.  Keys are
        content-addressed, so equal-score order is identical no matter
        how entries were distributed or inserted — the property that
        makes sharded fan-out results exactly reproduce a single
        index's.  (The input is already score-sorted, so the re-sort is
        a near-linear timsort pass; hits are only built for the final
        k.)"""
        ranked = sorted(ranked,
                        key=lambda pair: (-pair[1], self.keys[pair[0]]))
        return [SearchHit(self.keys[i], score, self.meta[i])
                for i, score in ranked[:k]]

    def query_vector(self, vector: np.ndarray, k: int = 10,
                     exclude: str | None = None,
                     jobs: int | None = None) -> list[SearchHit]:
        """Top-k neighbours of ``vector``; ``exclude`` drops one key
        (typically the query's own fingerprint).  Ties break by key;
        ``k`` below 1 raises ``ValueError`` instead of silently
        returning nothing.  ``jobs`` is accepted for surface parity with
        :class:`~repro.index.sharded.ShardedIndex` (a single file has no
        shards to fan out over)."""
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        _check_jobs(jobs)
        n_candidates, hits = self.query_partial(vector, k, exclude=exclude)
        if n_candidates < k:
            return self.query_brute(vector, k, exclude=exclude)
        return hits

    def _exclude_ids(self, excludes, n_queries: int) -> list[int | None]:
        """Map per-query exclude *keys* to shard-local lsh ids."""
        if excludes is None:
            return [None] * n_queries
        excludes = list(excludes)
        if len(excludes) != n_queries:
            raise ValueError(f"excludes must align with the {n_queries} "
                             f"queries, got {len(excludes)}")
        return [self._id_of.get(key) if key is not None else None
                for key in excludes]

    def query_many(self, vectors: np.ndarray, k: int = 10,
                   excludes: list[str | None] | None = None,
                   jobs: int | None = None) -> list[list[SearchHit]]:
        """Batched :meth:`query_vector`: top-k hits for every row of a
        ``(Q, dim)`` query matrix in one pass — band keys from one
        matmul per band, scores from one similarity GEMM — with the
        brute-force fallback decided per query exactly as the serial
        path would.  Rankings are identical to Q separate
        :meth:`query_vector` calls (property-tested); ``excludes`` is an
        optional per-query key list aligned with the rows.  ``jobs`` is
        accepted for surface parity with
        :class:`~repro.index.sharded.ShardedIndex`."""
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        _check_jobs(jobs)
        vectors = np.asarray(vectors, float)
        partials = self.query_partial_many(vectors, k, excludes=excludes)
        short = [q for q, (count, _hits) in enumerate(partials) if count < k]
        results = [hits for _count, hits in partials]
        if short:
            exclude_list = (None if excludes is None
                            else [excludes[q] for q in short])
            brute = self.query_brute_many(vectors[short], k,
                                          excludes=exclude_list)
            for q, hits in zip(short, brute):
                results[q] = hits
        return results

    # ------------------------------------------------------------------
    # Shortlist path (result cache's semantic tier)
    # ------------------------------------------------------------------
    def band_key_tuples(self, vectors: np.ndarray) -> list[tuple[int, ...]]:
        """One hashable packed-band-key tuple per query row — the
        semantic cache key: queries with equal tuples probe identical
        buckets and therefore share their candidate shortlist exactly
        (see :meth:`~repro.retrieval.lsh.CosineLSH.key_tuples`)."""
        return self.lsh.key_tuples(np.asarray(vectors, float))

    def collect_shortlists(self, vectors: np.ndarray
                           ) -> tuple[list[tuple[int, ...]],
                                      list[tuple[np.ndarray, ...]]]:
        """``(band key tuples, candidate shortlists)`` for every query
        row.  A shortlist is a tuple of per-shard sorted id arrays — one
        element for a single-file index, ``n_shards`` for a sharded one
        — holding the exact LSH candidates the uncached query path would
        probe (tombstones already dropped, excludes *not* applied: they
        are per-request and applied at rescore time).  Hash once, probe
        once: the keys returned are the ones the probe used."""
        matrix = np.asarray(vectors, float)
        keys = self.lsh.key_tuples(matrix)
        cands = self.lsh.candidates_for_keys(keys)
        return keys, [(np.fromiter(sorted(ids), dtype=np.int64,
                                   count=len(ids)),)
                      for ids in cands]

    def query_with_shortlists(self, vectors: np.ndarray, k: int,
                              shortlists: list[tuple[np.ndarray, ...]],
                              excludes: list[str | None] | None = None,
                              jobs: int | None = None
                              ) -> list[list[SearchHit]]:
        """:meth:`query_many` with the LSH hash-and-probe step replaced
        by caller-supplied candidate shortlists (the result cache's
        semantic-tier reuse path).  Everything downstream is the
        uncached machinery on the same inputs — excludes discarded the
        same way, the same einsum ranking kernel, ties re-broken by key,
        and the brute-force fallback decided on the post-exclude
        candidate count exactly as :meth:`query_many` decides it — so
        for shortlists produced by :meth:`collect_shortlists` at the
        same generation, results are identical to the uncached call
        (property-tested in ``tests/cache/``)."""
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        _check_jobs(jobs)
        matrix = np.asarray(vectors, float)
        if len(shortlists) != len(matrix):
            raise ValueError(f"shortlists must align with the "
                             f"{len(matrix)} queries, got {len(shortlists)}")
        exclude_ids = self._exclude_ids(excludes, len(matrix))
        removed = self.lsh.removed
        cand_sets: list[set[int]] = []
        for shortlist, exclude_id in zip(shortlists, exclude_ids):
            if len(shortlist) != 1:
                raise ValueError(f"a single-file index takes 1-element "
                                 f"shortlists, got {len(shortlist)}")
            cands = {int(i) for i in shortlist[0]}
            # Unconditional, like CosineLSH.candidates(): a removed id
            # must never surface even if a stale shortlist slips past
            # the generation guard.
            cands.difference_update(removed)
            if exclude_id is not None:
                cands.discard(exclude_id)
            cand_sets.append(cands)
        rankings = self.lsh._rank_many(cand_sets, matrix, None,
                                       shortlist=self._shortlist_for(k))
        results = [self._hits(ranked, k) for ranked in rankings]
        short = [q for q in range(len(matrix)) if len(cand_sets[q]) < k]
        if short:
            exclude_list = (None if excludes is None
                            else [excludes[q] for q in short])
            brute = self.query_brute_many(matrix[short], k,
                                          excludes=exclude_list)
            for q, hits in zip(short, brute):
                results[q] = hits
        return results

    def query_partial_many(self, vectors: np.ndarray, k: int = 10,
                           excludes: list[str | None] | None = None
                           ) -> list[tuple[int, list[SearchHit]]]:
        """Batched :meth:`query_partial`: one shard's contribution for a
        whole query matrix, ``(candidate count, top-k hits)`` per row,
        no brute-force fallback."""
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        vectors = np.asarray(vectors, float)
        ids = self._exclude_ids(excludes, len(vectors))
        # As in query_partial: rank all candidates, re-break ties by key
        # in _hits, truncate after.
        partials = self.lsh.query_partial_many(
            vectors, None, excludes=ids, shortlist=self._shortlist_for(k))
        return [(count, self._hits(ranked, k)) for count, ranked in partials]

    def query_brute_many(self, vectors: np.ndarray, k: int = 10,
                         excludes: list[str | None] | None = None
                         ) -> list[list[SearchHit]]:
        """Batched :meth:`query_brute`: top-k over every live entry for
        each query row, one similarity GEMM for the whole batch."""
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        vectors = np.asarray(vectors, float)
        ids = self._exclude_ids(excludes, len(vectors))
        rankings = self.lsh.query_brute_many(
            vectors, None, excludes=ids, shortlist=self._shortlist_for(k))
        return [self._hits(ranked, k) for ranked in rankings]

    def query_partial(self, vector: np.ndarray, k: int = 10,
                      exclude: str | None = None
                      ) -> tuple[int, list[SearchHit]]:
        """One shard's contribution to a fan-out query: ``(number of LSH
        candidates, top-k among them)`` with no brute-force fallback —
        whether blocking under-delivered is only decidable on the
        candidate total across every shard (see
        :meth:`~repro.index.sharded.ShardedIndex.query_vector`)."""
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        exclude_id = self._id_of.get(exclude) if exclude is not None else None
        # Rank *all* candidates and truncate after the key tie-break —
        # truncating inside the LSH (id tie-break) could swap members at
        # a tied k boundary.
        n_candidates, ranked = self.lsh.query_partial(
            vector, None, exclude=exclude_id,
            shortlist=self._shortlist_for(k))
        return n_candidates, self._hits(ranked, k)

    def query_brute(self, vector: np.ndarray, k: int = 10,
                    exclude: str | None = None) -> list[SearchHit]:
        """Top-k over every live entry, bypassing LSH blocking."""
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        exclude_id = self._id_of.get(exclude) if exclude is not None else None
        return self._hits(self.lsh.query_brute(
            vector, None, exclude=exclude_id,
            shortlist=self._shortlist_for(k)), k)

    # ------------------------------------------------------------------
    # Sharded map-reduce build
    # ------------------------------------------------------------------
    @classmethod
    def build_sharded(cls, embedder, tables: list[Table], shards: int = 4,
                      workers: int | None = None,
                      build_workers: int | None = None,
                      batch_size: int | None = None, **build_kwargs):
        """Map-reduce corpus build: partition tables by fingerprint hash
        (the same routing :class:`~repro.index.sharded.ShardedIndex`
        uses for ``add``), batch-encode the whole corpus once —
        optionally scattered over ``workers`` processes — then run the
        ordinary ``cls.build`` per partition and assemble the shards
        under one :class:`~repro.index.sharded.ShardedIndex`.

        ``workers`` also fans the **per-partition builds** across a
        ``ProcessPoolExecutor`` (override with ``build_workers`` to
        control the two stages separately): the embedder — with the
        cache the one global precompute just primed — ships to each
        worker once via the pool initializer, so the in-worker builds
        are pure cache hits and compose vectors from exactly the pooled
        vectors the serial path would use.  Built shards are gathered by
        partition position; results match serial builds exactly.

        Only meaningful on subclasses that define ``build`` (``TableIndex``
        / ``ColumnIndex``); extra keyword arguments (``variant``,
        ``composite``, LSH geometry, ...) pass through to it.
        """
        from .sharded import ShardedIndex, shard_of
        from .spec import IndexSpec

        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        if not tables:
            raise ValueError("cannot build an index over an empty corpus")
        if build_workers is None:
            build_workers = workers
        if build_workers is not None and build_workers < 1:
            raise ValueError(f"build_workers must be at least 1, "
                             f"got {build_workers}")
        # Map step: one batched encode over the full corpus primes the
        # content-addressed cache, so the per-partition builds below are
        # pure cache hits (encode_corpus skips cached tables).
        embedder.precompute(tables, batch_size=batch_size, workers=workers)
        partitions: list[list[Table]] = [[] for _ in range(shards)]
        for table in tables:
            partitions[shard_of(table_fingerprint(table), shards)].append(table)
        occupied = [(position, partition)
                    for position, partition in enumerate(partitions)
                    if partition]
        built: dict[int, VectorIndex] = {}
        if build_workers is not None and build_workers > 1 and len(occupied) > 1:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(
                    max_workers=min(build_workers, len(occupied)),
                    initializer=_init_build_worker,
                    initargs=(embedder,)) as pool:
                futures = {position: pool.submit(_build_partition, cls,
                                                 partition, batch_size,
                                                 build_kwargs)
                           for position, partition in occupied}
                built = {position: future.result()
                         for position, future in futures.items()}
        else:
            for position, partition in occupied:
                built[position] = cls.build(embedder, partition,
                                            batch_size=batch_size,
                                            **build_kwargs)
        # Reduce step: empty partitions (small corpora, skewed hashes)
        # become empty shards with the same spec, so routing stays
        # aligned with the shard count.
        spec = IndexSpec.from_index(next(iter(built.values())))
        return ShardedIndex(spec, [built[position] if position in built
                                   else spec.create_index()
                                   for position in range(shards)])

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _params(self) -> dict:
        return {"kind": self.kind, "dim": self.dim, "n_planes": self.n_planes,
                "n_bands": self.n_bands, "seed": self.seed,
                "corpus": self.corpus, "model_id": self.model_id}

    def save(self, path: str | Path) -> Path:
        """Write the full lifecycle state — dense vectors *including*
        tombstoned slots plus the tombstone id list — so a loaded index
        is an exact replica mid-lifecycle, not a silently compacted one.

        The packed LSH band keys ride along as an extra ``band_keys``
        array (still format v2 — older readers only look at ``vectors``
        and the payload, so the addition is invisible to them).  They
        let :meth:`load` rebuild the buckets without re-hashing, which
        is what makes ``mmap=True`` opens skip the vector data
        entirely.

        A quantized index additionally writes its int8 sidecar as
        ``q8``/``q_scales``/``q_norms`` members — equally invisible to
        older readers.  The members are written if and only if the
        in-memory sidecar is present, and that sidecar is kept fresh
        through every mutation, so on-disk int8 data can never be stale
        against the fp vectors it sits next to."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"format_version": FORMAT_VERSION,
                              "params": self._params(), "keys": self.keys,
                              "meta": self.meta,
                              "tombstones": sorted(self.lsh.removed)})
        arrays = {"vectors": self.lsh.vectors(),
                  "band_keys": self.lsh.band_keys_matrix()}
        if self.lsh.quantized:
            arrays.update(zip(_QUANT_MEMBERS, self.lsh.quantized_arrays()))
        np.savez(path, **arrays,
                 **{_PAYLOAD_KEY: np.frombuffer(payload.encode("utf-8"),
                                                dtype=np.uint8)})
        return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")

    @classmethod
    def _from_payload(cls, params: dict, keys: list[str], meta: list[dict],
                      vectors: np.ndarray, tombstones: list[int],
                      band_keys: np.ndarray | None = None,
                      quantized: tuple | None = None) -> "VectorIndex":
        index = cls(params["dim"], n_planes=params["n_planes"],
                    n_bands=params["n_bands"], seed=params["seed"])
        index.corpus = params.get("corpus", {})
        index.model_id = params.get("model_id")
        index._restore_extra(params)
        if len(keys):
            # No copy: the matrix was freshly read (or memory-mapped)
            # for this load, so no other owner can mutate it out from
            # under the buckets.  Keeping memmap rows as-is is what lets
            # queries page in only the candidates they score.
            index.lsh._attach(np.asarray(vectors, float),
                              band_keys=band_keys, copy=False)
            index.keys = list(keys)
            index.meta = list(meta)
            for idx in tombstones:
                index.lsh.remove(idx)
            dead = set(tombstones)
            # A key removed and later re-added occupies two dense slots;
            # only the live one may win the key -> id mapping.
            index._id_of = {key: i for i, key in enumerate(keys)
                            if i not in dead}
        if quantized is not None:
            # Attached even for an empty index: an empty shard of a
            # quantized layout must load as quantized, or the sharded
            # all-shards-quantized invariant would break on skewed
            # layouts.  Shape/dtype mismatches (foreign writer) were
            # already screened by the loader.
            index.lsh.attach_quantized(*quantized)
        return index

    def _restore_extra(self, params: dict) -> None:
        """Hook for subclasses to restore extra saved parameters."""

    @classmethod
    def load(cls, path: str | Path, mmap: bool = False) -> "VectorIndex":
        """Load a saved index.  ``mmap=True`` memory-maps the vector
        matrix read-only instead of reading it eagerly: when the file
        also carries saved ``band_keys`` (anything written since the
        serving work), the open touches *no* vector data — queries then
        page in only the candidate rows they score.  Legacy v1/v2 files
        without saved keys still open under mmap; they pay one streamed
        hashing pass over the mapping, but never a resident in-heap
        copy.  Results are bit-identical either way."""
        path = _resolve_saved_path(path)
        with np.load(path) as archive:
            payload = json.loads(bytes(archive[_PAYLOAD_KEY]).decode("utf-8"))
            band_keys = (archive["band_keys"]
                         if "band_keys" in archive.files else None)
            has_quant = all(name in archive.files
                            for name in _QUANT_MEMBERS)
            vectors = None if mmap else archive["vectors"]
        if mmap:
            # The vectors member and — when present — the int8 sidecar
            # all map through the same per-member parser (dtype and
            # alignment come from each member's own npy header); any
            # member that cannot be mapped falls back to an eager read
            # of just that member.
            vectors = _load_member(path, "vectors", mmap=True)
        quantized = None
        if has_quant:
            quantized = tuple(_load_member(path, name, mmap=mmap)
                              for name in _QUANT_MEMBERS)
            q8, scales, norms = quantized
            if (q8.shape != np.shape(vectors) or q8.dtype != np.int8
                    or scales.shape != (len(vectors),)
                    or norms.shape != (len(vectors),)
                    or scales.dtype != np.float32
                    or norms.dtype != np.float32):
                # A foreign writer (or hand edit) whose sidecar doesn't
                # line up with the fp vectors: load unquantized rather
                # than trust wrong int8 data.
                quantized = None
        version = payload.get("format_version", 1)
        if version > FORMAT_VERSION:
            raise ValueError(f"{path} uses index format v{version}; this "
                             f"build reads up to v{FORMAT_VERSION}")
        params = payload["params"]
        if band_keys is not None and band_keys.shape != (
                len(vectors), params.get("n_bands", 0)):
            # A foreign writer (or hand edit) whose keys don't line up:
            # re-hash rather than rebuild wrong buckets.
            band_keys = None
        target = _KINDS.get(params.get("kind"), cls)
        if cls is not VectorIndex and target is not cls:
            raise ValueError(f"{path} holds a {params.get('kind')!r} index, "
                             f"not {cls.kind!r}")
        index = target._from_payload(params, payload["keys"], payload["meta"],
                                     vectors, payload.get("tombstones", []),
                                     band_keys=None if band_keys is None
                                     else np.asarray(band_keys, np.int64).T,
                                     quantized=quantized)
        index.format_version = version
        return index


def _resolve_saved_path(path: str | Path) -> Path:
    """Where a saved single-file index actually lives.

    save("foo.idx") writes "foo.idx.npz" (numpy appends the suffix), so
    the fallback must *append* too — with_suffix would replace ".idx"
    and look for a "foo.npz" that was never written.  Gate on is_file,
    not exists: a stray *directory* at ``path`` must not pre-empt the
    sibling."""
    path = Path(path)
    if not path.is_file():
        appended = path.with_name(path.name + ".npz")
        if appended.is_file():
            path = appended
    return path


def read_saved_payload(path: str | Path) -> dict:
    """The JSON payload (params/keys/meta/format_version) of a saved
    single-file index, *without* touching its vector data — ``np.load``
    reads zip members lazily, so only the payload member is decoded.
    The cheap peek ``catalog add``/``catalog list`` use to verify kind
    and checkpoint without opening the index."""
    path = _resolve_saved_path(path)
    with np.load(path) as archive:
        payload = json.loads(bytes(archive[_PAYLOAD_KEY]).decode("utf-8"))
    version = payload.get("format_version", 1)
    if version > FORMAT_VERSION:
        raise ValueError(f"{path} uses index format v{version}; this "
                         f"build reads up to v{FORMAT_VERSION}")
    payload.setdefault("format_version", version)
    return payload


def load_index(path: str | Path) -> VectorIndex:
    """Load a saved single-file index, dispatching on its stored
    ``kind``.  Prefer :func:`~repro.index.backends.open_index`, which
    also understands sharded directory layouts."""
    return VectorIndex.load(path)


def index_class(kind: str) -> type:
    """The :class:`VectorIndex` subclass registered for ``kind``."""
    try:
        return _KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown index kind {kind!r}; expected one of "
                         f"{sorted(_KINDS)}") from None


def check_merge_compatible(mine: dict, theirs: dict) -> None:
    """Raise ``ValueError`` unless two merge signatures describe the
    same vector space.  An unknown checkpoint (hand-built index, pre-v2
    file) is a wildcard; only two *different known* checkpoints
    conflict."""
    mine, theirs = dict(mine), dict(theirs)
    if mine.get("model_id") is None or theirs.get("model_id") is None:
        mine.pop("model_id", None)
        theirs.pop("model_id", None)
    if mine != theirs:
        diff = {name: (mine.get(name), theirs.get(name))
                for name in mine.keys() | theirs.keys()
                if mine.get(name) != theirs.get(name)}
        raise ValueError(f"cannot merge incompatible indexes: {diff}")


def merge_into(target, source) -> int:
    """The one merge procedure both layouts share: verify the vector
    spaces agree, bulk-insert the source's live entries (the target's
    ``add_batch`` dedupes by key — and, for a sharded target, routes),
    adopt a known checkpoint so a later merge with a *third* checkpoint
    is refused instead of wildcarded through, and union the corpus
    provenance (a merged multi-corpus index must not keep the first
    input's stamp verbatim, or downstream provenance checks would
    accept queries from one source corpus and reject the other's).
    Returns the number of entries actually added."""
    check_merge_compatible(target._merge_signature(),
                           source._merge_signature())
    incoming = source.live_items()
    before = len(target)
    if incoming:
        target.add_batch([key for key, _vec, _meta in incoming],
                         np.stack([vec for _key, vec, _meta in incoming]),
                         [dict(meta) for _key, _vec, meta in incoming])
    if target.model_id is None:
        target.model_id = source.model_id
    target.corpus = merge_corpus_stamps(target.corpus, source.corpus)
    return len(target) - before


def merge_corpus_stamps(mine: dict, theirs: dict) -> dict:
    """Union two corpus-provenance stamps, flattening nested
    ``merged_from`` lists and deduping equal provenances."""
    if mine == theirs:
        return mine

    def provenances(stamp: dict) -> list[dict]:
        if not stamp:
            return []
        return list(stamp.get("merged_from", [stamp]))

    combined: list[dict] = []
    for stamp in provenances(mine) + provenances(theirs):
        if stamp not in combined:
            combined.append(stamp)
    return {"merged_from": combined} if combined else {}


class TableIndex(VectorIndex):
    """Whole-table retrieval over composite table embeddings."""

    kind = "table"

    def __init__(self, dim: int, variant: str = "tblcomp1", **kwargs):
        super().__init__(dim, **kwargs)
        self.variant = variant

    def _params(self) -> dict:
        return {**super()._params(), "variant": self.variant}

    def _restore_extra(self, params: dict) -> None:
        self.variant = params.get("variant", "tblcomp1")

    @staticmethod
    def table_meta(table: Table) -> dict:
        return {"caption": table.caption, "topic": table.topic,
                "shape": list(table.shape)}

    @classmethod
    def build(cls, embedder, tables: list[Table], variant: str = "tblcomp1",
              n_planes: int = 8, n_bands: int = 4, seed: int = 0,
              batch_size: int | None = None,
              workers: int | None = None) -> "TableIndex":
        """Index a corpus: one batched encode pass, then one bulk insert."""
        if not tables:
            raise ValueError("cannot build an index over an empty corpus")
        embedder.precompute(tables, batch_size=batch_size, workers=workers)
        keys = [table_fingerprint(t) for t in tables]
        vectors = np.stack([embedder.table_embedding(t, variant=variant)
                            for t in tables])
        index = cls(vectors.shape[1], variant=variant, n_planes=n_planes,
                    n_bands=n_bands, seed=seed)
        index.model_id = embedder.fingerprint()
        index.add_batch(keys, vectors, [cls.table_meta(t) for t in tables])
        return index

    def query_table(self, embedder, table: Table, k: int = 10,
                    exclude_self: bool = True,
                    jobs: int | None = None) -> list[SearchHit]:
        vector = embedder.table_embedding(table, variant=self.variant)
        exclude = table_fingerprint(table) if exclude_self else None
        return self.query_vector(vector, k, exclude=exclude, jobs=jobs)


class ColumnIndex(VectorIndex):
    """Per-column retrieval over colcomp embeddings (Figure 5b)."""

    kind = "column"

    def __init__(self, dim: int, composite: bool = True, **kwargs):
        super().__init__(dim, **kwargs)
        self.composite = composite

    def _params(self) -> dict:
        return {**super()._params(), "composite": self.composite}

    def _restore_extra(self, params: dict) -> None:
        self.composite = params.get("composite", True)

    @staticmethod
    def column_key(table: Table, j: int) -> str:
        return f"{table_fingerprint(table)}:{j}"

    @classmethod
    def build(cls, embedder, tables: list[Table], composite: bool = True,
              n_planes: int = 8, n_bands: int = 4, seed: int = 0,
              batch_size: int | None = None,
              workers: int | None = None) -> "ColumnIndex":
        if not tables:
            raise ValueError("cannot build an index over an empty corpus")
        embedder.precompute(tables, batch_size=batch_size, workers=workers)
        keys: list[str] = []
        vectors: list[np.ndarray] = []
        metas: list[dict] = []
        for table in tables:
            for j in range(table.n_cols):
                keys.append(cls.column_key(table, j))
                vectors.append(embedder.column_embedding(table, j,
                                                         composite=composite))
                metas.append({"caption": table.caption, "col": j,
                              "label": table.column_label(j),
                              "concept": table.column_concept(j)})
        index = cls(len(vectors[0]), composite=composite, n_planes=n_planes,
                    n_bands=n_bands, seed=seed)
        index.model_id = embedder.fingerprint()
        index.add_batch(keys, np.stack(vectors), metas)
        return index

    def query_column(self, embedder, table: Table, j: int, k: int = 10,
                     exclude_self: bool = True,
                     jobs: int | None = None) -> list[SearchHit]:
        vector = embedder.column_embedding(table, j, composite=self.composite)
        exclude = self.column_key(table, j) if exclude_self else None
        return self.query_vector(vector, k, exclude=exclude, jobs=jobs)


_KINDS = {cls.kind: cls for cls in (VectorIndex, TableIndex, ColumnIndex)}
