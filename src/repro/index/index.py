"""Persistent LSH-backed vector indexes over tables and columns.

A :class:`VectorIndex` owns a :class:`~repro.retrieval.lsh.CosineLSH`
plus the external keys (table fingerprints, ``fingerprint:col`` pairs)
and display metadata for every vector.  :class:`TableIndex` and
:class:`ColumnIndex` specialize it with the paper's composite embeddings
(tblcomp / colcomp, Figure 5) and corpus ``build`` constructors that go
through the batched :class:`~repro.index.store.EmbeddingStore` path.

Indexes round-trip to a single ``.npz`` file: the vector matrix is
stored as an array, everything else (keys, metadata, LSH and embedding
parameters) as a JSON blob.  Loading re-derives the LSH buckets with one
vectorized ``add_all`` — the hyperplanes are seeded, so buckets are
bit-identical across processes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..retrieval.lsh import CosineLSH
from ..tables.table import Table
from .fingerprint import table_fingerprint

_PAYLOAD_KEY = "__index__"


@dataclass(frozen=True)
class SearchHit:
    """One ranked neighbour: external key, cosine score, display metadata."""

    key: str
    score: float
    meta: dict

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SearchHit({self.key!r}, {self.score:.3f}, {self.meta})"


class VectorIndex:
    """Keyed cosine-LSH index with ``.npz`` persistence."""

    kind = "vector"

    def __init__(self, dim: int, n_planes: int = 8, n_bands: int = 4,
                 seed: int = 0):
        self.dim = dim
        self.n_planes = n_planes
        self.n_bands = n_bands
        self.seed = seed
        self.lsh = CosineLSH(dim, n_planes=n_planes, n_bands=n_bands, seed=seed)
        self.keys: list[str] = []
        self.meta: list[dict] = []
        self._id_of: dict[str, int] = {}
        #: Free-form provenance (e.g. dataset/n_tables/seed) persisted
        #: with the index so queries can check they target the same
        #: corpus the index was built from.
        self.corpus: dict = {}

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add(self, key: str, vector: np.ndarray, meta: dict | None = None) -> int:
        """Index one vector under ``key``; duplicate keys are no-ops
        (equal-content tables share a fingerprint and one entry)."""
        existing = self._id_of.get(key)
        if existing is not None:
            return existing
        idx = self.lsh.add(vector)
        self.keys.append(key)
        self.meta.append(meta or {})
        self._id_of[key] = idx
        return idx

    def add_batch(self, keys: list[str], vectors: np.ndarray,
                  metas: list[dict] | None = None) -> list[int]:
        """Bulk insert distinct keys with one vectorized LSH pass."""
        if metas is None:
            metas = [{} for _ in keys]
        if not (len(keys) == len(vectors) == len(metas)):
            raise ValueError("keys, vectors and metas must align")
        fresh: list[int] = []
        batch_seen: set[str] = set()
        for i, key in enumerate(keys):
            if key not in self._id_of and key not in batch_seen:
                batch_seen.add(key)
                fresh.append(i)
        if fresh:
            ids = self.lsh.add_all(np.asarray(vectors, float)[fresh])
            for i, idx in zip(fresh, ids):
                self.keys.append(keys[i])
                self.meta.append(metas[i])
                self._id_of[keys[i]] = idx
        return [self._id_of[key] for key in keys]

    def __len__(self) -> int:
        return len(self.keys)

    def __contains__(self, key: str) -> bool:
        return key in self._id_of

    def vector(self, key: str) -> np.ndarray:
        return self.lsh.vector(self._id_of[key])

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query_vector(self, vector: np.ndarray, k: int = 10,
                     exclude: str | None = None) -> list[SearchHit]:
        """Top-k neighbours of ``vector``; ``exclude`` drops one key
        (typically the query's own fingerprint)."""
        exclude_id = self._id_of.get(exclude) if exclude is not None else None
        ranked = self.lsh.query(vector, k, exclude=exclude_id)
        return [SearchHit(self.keys[i], score, self.meta[i])
                for i, score in ranked]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _params(self) -> dict:
        return {"kind": self.kind, "dim": self.dim, "n_planes": self.n_planes,
                "n_bands": self.n_bands, "seed": self.seed,
                "corpus": self.corpus}

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"params": self._params(), "keys": self.keys,
                              "meta": self.meta})
        np.savez(path, vectors=self.lsh.vectors(),
                 **{_PAYLOAD_KEY: np.frombuffer(payload.encode("utf-8"),
                                                dtype=np.uint8)})
        return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")

    @classmethod
    def _from_payload(cls, params: dict, keys: list[str], meta: list[dict],
                      vectors: np.ndarray) -> "VectorIndex":
        index = cls(params["dim"], n_planes=params["n_planes"],
                    n_bands=params["n_bands"], seed=params["seed"])
        index.corpus = params.get("corpus", {})
        index._restore_extra(params)
        if len(keys):
            ids = index.lsh.add_all(vectors)
            index.keys = list(keys)
            index.meta = list(meta)
            index._id_of = dict(zip(keys, ids))
        return index

    def _restore_extra(self, params: dict) -> None:
        """Hook for subclasses to restore extra saved parameters."""

    @classmethod
    def load(cls, path: str | Path) -> "VectorIndex":
        path = Path(path)
        if not path.exists() and path.with_suffix(".npz").exists():
            path = path.with_suffix(".npz")
        with np.load(path) as archive:
            payload = json.loads(bytes(archive[_PAYLOAD_KEY]).decode("utf-8"))
            vectors = archive["vectors"]
        params = payload["params"]
        target = _KINDS.get(params.get("kind"), cls)
        if cls is not VectorIndex and target is not cls:
            raise ValueError(f"{path} holds a {params.get('kind')!r} index, "
                             f"not {cls.kind!r}")
        return target._from_payload(params, payload["keys"], payload["meta"],
                                    vectors)


def load_index(path: str | Path) -> VectorIndex:
    """Load any saved index, dispatching on its stored ``kind``."""
    return VectorIndex.load(path)


class TableIndex(VectorIndex):
    """Whole-table retrieval over composite table embeddings."""

    kind = "table"

    def __init__(self, dim: int, variant: str = "tblcomp1", **kwargs):
        super().__init__(dim, **kwargs)
        self.variant = variant

    def _params(self) -> dict:
        return {**super()._params(), "variant": self.variant}

    def _restore_extra(self, params: dict) -> None:
        self.variant = params.get("variant", "tblcomp1")

    @staticmethod
    def table_meta(table: Table) -> dict:
        return {"caption": table.caption, "topic": table.topic,
                "shape": list(table.shape)}

    @classmethod
    def build(cls, embedder, tables: list[Table], variant: str = "tblcomp1",
              n_planes: int = 8, n_bands: int = 4, seed: int = 0,
              batch_size: int | None = None) -> "TableIndex":
        """Index a corpus: one batched encode pass, then one bulk insert."""
        if not tables:
            raise ValueError("cannot build an index over an empty corpus")
        embedder.precompute(tables, batch_size=batch_size)
        keys = [table_fingerprint(t) for t in tables]
        vectors = np.stack([embedder.table_embedding(t, variant=variant)
                            for t in tables])
        index = cls(vectors.shape[1], variant=variant, n_planes=n_planes,
                    n_bands=n_bands, seed=seed)
        index.add_batch(keys, vectors, [cls.table_meta(t) for t in tables])
        return index

    def query_table(self, embedder, table: Table, k: int = 10,
                    exclude_self: bool = True) -> list[SearchHit]:
        vector = embedder.table_embedding(table, variant=self.variant)
        exclude = table_fingerprint(table) if exclude_self else None
        return self.query_vector(vector, k, exclude=exclude)


class ColumnIndex(VectorIndex):
    """Per-column retrieval over colcomp embeddings (Figure 5b)."""

    kind = "column"

    def __init__(self, dim: int, composite: bool = True, **kwargs):
        super().__init__(dim, **kwargs)
        self.composite = composite

    def _params(self) -> dict:
        return {**super()._params(), "composite": self.composite}

    def _restore_extra(self, params: dict) -> None:
        self.composite = params.get("composite", True)

    @staticmethod
    def column_key(table: Table, j: int) -> str:
        return f"{table_fingerprint(table)}:{j}"

    @classmethod
    def build(cls, embedder, tables: list[Table], composite: bool = True,
              n_planes: int = 8, n_bands: int = 4, seed: int = 0,
              batch_size: int | None = None) -> "ColumnIndex":
        if not tables:
            raise ValueError("cannot build an index over an empty corpus")
        embedder.precompute(tables, batch_size=batch_size)
        keys: list[str] = []
        vectors: list[np.ndarray] = []
        metas: list[dict] = []
        for table in tables:
            for j in range(table.n_cols):
                keys.append(cls.column_key(table, j))
                vectors.append(embedder.column_embedding(table, j,
                                                         composite=composite))
                metas.append({"caption": table.caption, "col": j,
                              "label": table.column_label(j),
                              "concept": table.column_concept(j)})
        index = cls(len(vectors[0]), composite=composite, n_planes=n_planes,
                    n_bands=n_bands, seed=seed)
        index.add_batch(keys, np.stack(vectors), metas)
        return index

    def query_column(self, embedder, table: Table, j: int, k: int = 10,
                     exclude_self: bool = True) -> list[SearchHit]:
        vector = embedder.column_embedding(table, j, composite=self.composite)
        exclude = self.column_key(table, j) if exclude_self else None
        return self.query_vector(vector, k, exclude=exclude)


_KINDS = {cls.kind: cls for cls in (VectorIndex, TableIndex, ColumnIndex)}
