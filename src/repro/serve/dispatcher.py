"""Micro-batching dispatcher: many concurrent requests, one GEMM.

The serving hot path is the same observation that motivated
``query_many``: scoring Q queries in one similarity GEMM per shard is
far cheaper than Q separate passes.  A server receives those Q queries
*concurrently* rather than as one matrix, so the dispatcher coalesces
them: requests enqueue into a pending list, and a *tick* — fired when
``max_batch`` queries are waiting or ``max_wait_ms`` has elapsed since
the first enqueue, whichever comes first — stacks them into one matrix
and runs one :meth:`query_many` call per distinct ``k`` in the batch.

Grouping by ``k`` is a correctness requirement, not a convenience: the
brute-force fallback triggers when a query's LSH candidate count is
below *its* ``k``, so folding a ``k=2`` query into a ``k=10`` batch
could flip it onto the brute-force path (or off it) and change its
top-2.  Within one ``k`` group, ``query_many`` is property-tested
identical to serial ``query_vector`` calls — so a served ranking is
pinned to what the offline CLI path returns, no matter which requests
it was batched with.

The actual GEMMs run in the event loop's default thread-pool executor:
NumPy releases the GIL inside them, so the loop keeps accepting and
coalescing the next tick's requests while the current tick computes.
Results are demultiplexed back onto per-request futures by position —
each request sees exactly its own rows and nothing else (the soak tests
hammer this with duplicate-vector ties from many threads).
"""

from __future__ import annotations

import asyncio
from functools import partial

import numpy as np


def validate_dispatch_params(max_batch: int, max_wait_ms: float,
                             jobs: int | None,
                             max_backlog: int | None = None) -> None:
    """The dispatcher's constructor checks, callable up front — the
    catalog handle creates dispatchers lazily (one per index, on first
    use), so a bad knob must fail at server construction rather than at
    the first routed query."""
    if max_batch < 1:
        raise ValueError(f"max_batch must be at least 1, got {max_batch}")
    if max_wait_ms < 0:
        raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be at least 1, got {jobs}")
    if max_backlog is not None and max_backlog < 1:
        raise ValueError(f"max_backlog must be at least 1, "
                         f"got {max_backlog}")


class BacklogFull(RuntimeError):
    """The dispatcher's pending queue is at ``max_backlog``: overload
    must shed load (HTTP 429 + ``Retry-After``), not grow the queue
    toward OOM.  The serving layer maps this by the ``http_status``
    attribute, the same duck-typed contract cluster errors use."""

    http_status = 429
    retry_after = 1

    def __init__(self, pending: int, max_backlog: int, n_queries: int):
        super().__init__(
            f"dispatcher backlog is full ({pending} queries pending, "
            f"max_backlog={max_backlog}; this request carries "
            f"{n_queries}) — retry shortly")
        self.pending = pending
        self.max_backlog = max_backlog


class _Pending:
    """One enqueued query awaiting its tick.  ``plan`` is the cache
    engine's :class:`~repro.cache.engine.QueryPlan` from the submit-time
    lookup (``None`` when the cache is off or the request bypassed it
    with ``no_cache``) — exact hits never become ``_Pending`` at all."""

    __slots__ = ("vector", "k", "exclude", "future", "plan")

    def __init__(self, vector, k, exclude, future, plan=None):
        self.vector = vector
        self.k = k
        self.exclude = exclude
        self.future = future
        self.plan = plan


class MicroBatchDispatcher:
    """Coalesce concurrent queries into ``query_many`` ticks.

    Parameters
    ----------
    index:
        Anything with the ``query_many(matrix, k=, excludes=, jobs=)``
        surface — a :class:`~repro.index.index.VectorIndex` subclass or
        a :class:`~repro.index.sharded.ShardedIndex`.
    max_batch:
        Flush as soon as this many queries are pending (a tick may
        exceed it only when one request carries a bigger batch than
        this, in which case that request's overflow rides the next
        tick).
    max_wait_ms:
        Flush this many milliseconds after the *first* query of a tick
        arrived, even if the batch is not full.  ``0`` flushes on the
        next loop iteration — lowest latency, smallest batches.
    jobs:
        Passed through to ``query_many`` to fan per-shard work over a
        thread pool inside the tick.
    engine:
        Optional :class:`~repro.cache.engine.CachedQueryEngine` over
        the same index.  With an engine attached, submits look the
        cache up on the event-loop thread: exact hits resolve
        immediately without joining a tick, semantic hits carry their
        shortlist into the tick (rescored exactly, one executor call
        per tick group), and misses run the full path while harvesting
        shortlists for the semantic tier.  Cache state is only ever
        touched on the loop thread (lookup at submit, store at demux);
        the executor threads see plain index calls.
    max_backlog:
        Bound on the pending queue.  A request whose rows would push
        the backlog past this raises :class:`BacklogFull` *before*
        enqueuing anything (all-or-nothing — no partially admitted
        requests), which the server answers as 429 + ``Retry-After``.
        The check is conservative under caching: it counts the
        request's full row count even though exact hits would never
        join the queue — at rejection time the backlog is already
        saturated, so protecting memory wins over admitting maybe-hits.
        ``None`` (default) keeps the pre-backpressure behaviour:
        unbounded.
    """

    def __init__(self, index, max_batch: int = 32,
                 max_wait_ms: float = 2.0, jobs: int | None = None,
                 stats=None, engine=None, max_backlog: int | None = None):
        validate_dispatch_params(max_batch, max_wait_ms, jobs, max_backlog)
        if engine is not None and engine.index is not index:
            raise ValueError("cache engine wraps a different index than "
                             "the dispatcher serves")
        self.index = index
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.jobs = jobs
        self.stats = stats
        self.engine = engine
        self.max_backlog = max_backlog
        #: Queries refused by backpressure (surfaced in ``/stats``).
        self.rejected_total = 0
        self._pending: list[_Pending] = []
        self._timer: asyncio.TimerHandle | None = None
        self._inflight: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Introspection (stats endpoint / drain loop)
    # ------------------------------------------------------------------
    @property
    def n_pending(self) -> int:
        return len(self._pending)

    @property
    def n_inflight(self) -> int:
        return len(self._inflight)

    # ------------------------------------------------------------------
    # Enqueue
    # ------------------------------------------------------------------
    async def submit_many(self, matrix: np.ndarray, k: int,
                          excludes: list[str | None],
                          no_cache: bool = False) -> list[list]:
        """Enqueue every row of ``matrix`` and await all results.

        Rows join the shared pending list individually, so one client's
        batch coalesces with other clients' concurrent singles; results
        come back aligned with the rows.  A failed tick propagates its
        exception to every affected caller.  With a cache engine
        attached, exact hits resolve here without joining a tick;
        ``no_cache`` rows skip both tiers entirely (neither read nor
        written) and are counted as bypassed.

        With ``max_backlog`` set, a request that would overflow the
        pending queue raises :class:`BacklogFull` before touching any
        state — the backpressure valve.
        """
        if (self.max_backlog is not None
                and len(self._pending) + len(matrix) > self.max_backlog):
            pending = len(self._pending)
            self.rejected_total += len(matrix)
            # Hurry the queue along so the client's Retry-After has a
            # fighting chance of being long enough.
            self.flush_now()
            raise BacklogFull(pending, self.max_backlog, len(matrix))
        loop = asyncio.get_running_loop()
        futures: list[asyncio.Future] = []
        engine = self.engine
        if engine is not None and no_cache:
            engine.note_bypass(len(matrix))
        for vector, exclude in zip(matrix, excludes):
            future = loop.create_future()
            futures.append(future)
            plan = None
            if engine is not None and not no_cache:
                hits, plan = engine.lookup(vector, k, exclude)
                if hits is not None:
                    future.set_result(hits)
                    continue
            self._pending.append(_Pending(vector, k, exclude, future, plan))
            if len(self._pending) >= self.max_batch:
                self.flush_now()
            elif self._timer is None:
                self._timer = loop.call_later(self.max_wait_ms / 1000.0,
                                              self.flush_now)
        return await asyncio.gather(*futures)

    # ------------------------------------------------------------------
    # Ticks
    # ------------------------------------------------------------------
    def flush_now(self) -> None:
        """Start a tick for everything currently pending (no-op when
        nothing is).  Safe to call at any time — the drain loop uses it
        to hurry stragglers out during shutdown."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        task = asyncio.get_running_loop().create_task(self._run_batch(batch))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(self, batch: list[_Pending]) -> None:
        groups: dict[int, list[_Pending]] = {}
        for item in batch:
            groups.setdefault(item.k, []).append(item)
        # Groups run concurrently (gather, not a sequential loop): a
        # mixed-k tick's latency is the slowest group's GEMM, not the
        # sum of all of them.
        await asyncio.gather(*(self._run_group(k, members)
                               for k, members in groups.items()))

    async def _run_group(self, k: int, members: list[_Pending]) -> None:
        """One tick's per-``k`` group.  Without a cache every member
        takes the direct ``query_many`` path; with one, members split
        into direct (``no_cache``), semantic-hit (cached shortlist,
        exact rescore) and miss (full path + shortlist harvest)
        subgroups that run concurrently — each is still one GEMM pass
        for all its rows."""
        direct = [m for m in members if m.plan is None]
        shortlisted = [m for m in members
                       if m.plan is not None and m.plan.shortlist is not None]
        misses = [m for m in members
                  if m.plan is not None and m.plan.shortlist is None]
        runs = []
        if direct:
            runs.append(self._run_members(k, direct, self._call_direct))
        if shortlisted:
            runs.append(self._run_members(k, shortlisted,
                                          self._call_shortlisted))
        if misses:
            runs.append(self._run_members(k, misses, self._call_misses))
        await asyncio.gather(*runs)

    def _call_direct(self, matrix, k, excludes, members):
        return (self.index.query_many(matrix, k=k, excludes=excludes,
                                      jobs=self.jobs), None)

    def _call_shortlisted(self, matrix, k, excludes, members):
        shortlists = [item.plan.shortlist for item in members]
        return (self.engine.run_shortlisted(matrix, k, shortlists, excludes,
                                            jobs=self.jobs), None)

    def _call_misses(self, matrix, k, excludes, members):
        return self.engine.run_misses(matrix, k, excludes, jobs=self.jobs)

    async def _run_members(self, k: int, members: list[_Pending],
                           call) -> None:
        loop = asyncio.get_running_loop()
        matrix = np.stack([item.vector for item in members])
        excludes = [item.exclude for item in members]
        if self.stats is not None:
            self.stats.record_batch(len(members))
        try:
            results, harvested = await loop.run_in_executor(
                None, partial(call, matrix, k, excludes, members))
        except Exception as error:
            for item in members:
                if not item.future.done():
                    item.future.set_exception(error)
        else:
            # Demux strictly by position: row i of the subgroup's matrix
            # is member i's query, so member i gets result i.  Stores
            # happen here — back on the event-loop thread — honoring
            # the cache's single-writer contract; the engine drops them
            # if the index generation moved since lookup.
            for position, (item, hits) in enumerate(zip(members, results)):
                if self.engine is not None and item.plan is not None:
                    self.engine.store(
                        item.plan, hits,
                        None if harvested is None else harvested[position])
                if not item.future.done():
                    item.future.set_result(hits)

    async def drain(self) -> None:
        """Flush pending queries and wait for every in-flight tick —
        the dispatcher half of graceful shutdown."""
        self.flush_now()
        while self._inflight or self._pending:
            self.flush_now()
            if self._inflight:
                await asyncio.gather(*list(self._inflight),
                                     return_exceptions=True)
            else:
                # A submitter raced in between flush and here; yield so
                # it lands, then loop.
                await asyncio.sleep(0)
