"""The retrieval server: asyncio HTTP front-end over a catalog of
named indexes.

:class:`RetrievalServer` holds a
:class:`~repro.catalog.CatalogHandle` — one entry per named index,
opened lazily via :func:`~repro.index.open_index` (typically
``mmap=True``, so even a huge sharded layout boots without reading its
vector data) and LRU-evicted under a configurable cap — and serves:

- ``POST /query``   — single or batch JSON queries, routed by the
  optional ``"index"`` name field (absent → the default entry, exactly
  the one-index wire contract; unknown → 404), answered from that
  entry's own micro-batching dispatcher so concurrent requests share
  GEMMs but distinct indexes never share batch ticks; served rankings
  are pinned identical to the offline ``query_many`` path.
- ``GET /indexes``  — the catalog: every entry with its open/closed
  state and per-entry traffic counters.
- ``GET /healthz``  — liveness plus the default index's identity
  (kind/dim/entries/model checkpoint/saved format version).
- ``GET /stats``    — QPS, latency percentiles, batch-size shape,
  dispatcher backlog, and a per-index section (queries, batch shapes,
  opens, evictions).

A server constructed from a bare index (the pre-catalog API, still the
``serve PATH``-to-a-``.npz`` path) wraps it as a pinned single-entry
catalog, so every old caller — and every old client — sees byte-
identical behaviour.

The query path never writes to any index, so one server instance
handles any number of concurrent connections without locks; the only
writer-adjacent machinery is shutdown, which *drains*: the listener
closes, idle keep-alive connections are disconnected, in-flight
requests run to completion (every open entry's dispatcher flushes its
queries), and only then does :meth:`RetrievalServer.shutdown` return.

:class:`ServerThread` wraps a server in a background thread with its
own event loop — the harness the e2e/soak tests and the serving
benchmark use to run server and clients in one process.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import threading
import time
from pathlib import Path

from ..cache import DEFAULT_CACHE_SIZE
from ..catalog import Catalog, CatalogHandle
from .protocol import (
    DEFAULT_MAX_BODY,
    STREAM_LIMIT,
    ProtocolError,
    Request,
    format_hits,
    index_route,
    json_body,
    no_cache_flag,
    parse_json_object,
    parse_query_payload,
    read_request,
    render_response,
)
from .stats import ServerStats

#: Environment variable naming a file the server appends its access log
#: to (CI tails it on failure); constructor argument wins over it.
LOG_ENV = "REPRO_SERVE_LOG"


class _Connection:
    """Per-connection state the drain logic needs: whether the handler
    is mid-request (must finish) or idle between keep-alive requests
    (safe to disconnect), and whether the current request arrived after
    draining began (rejected with 503) or was already in flight (served
    to completion — the drain guarantee)."""

    __slots__ = ("writer", "busy", "reject")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.busy = False
        self.reject = False


class RetrievalServer:
    """Serve a catalog of indexes over hand-rolled HTTP/1.1.

    ``target`` may be a :class:`~repro.catalog.CatalogHandle` (full
    control over open policy), a :class:`~repro.catalog.Catalog`
    (wrapped in a handle using ``mmap``/``max_open``), or an already-
    open index (wrapped as a pinned single-entry catalog — the
    pre-catalog constructor contract, unchanged)."""

    def __init__(self, target, host: str = "127.0.0.1", port: int = 0, *,
                 max_batch: int = 32, max_wait_ms: float = 2.0,
                 jobs: int | None = None, mmap: bool = True,
                 max_open: int | None = None,
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 cache_ttl: float | None = None,
                 max_backlog: int | None = None,
                 max_body: int = DEFAULT_MAX_BODY,
                 drain_timeout: float = 10.0,
                 log_path: str | Path | None = None,
                 sock=None, worker_id: int | None = None,
                 stats_dir: str | Path | None = None,
                 stats_flush_interval: float = 0.25,
                 quantized: bool = False,
                 overfetch: int | None = None,
                 margin: int | None = None):
        if isinstance(target, CatalogHandle):
            self.handle = target
        elif isinstance(target, Catalog):
            self.handle = CatalogHandle(target, mmap=mmap, max_open=max_open,
                                        quantized=quantized,
                                        overfetch=overfetch, margin=margin)
        else:
            if quantized:
                # A bare index is already open, so the quantized scoring
                # opt-in applies directly (and a missing sidecar fails
                # here, at construction, with the retrofit hint).
                target.enable_quantized(overfetch=overfetch, margin=margin)
            self.handle = CatalogHandle.for_index(target)
        self.host = host
        self._requested_port = port
        self.max_body = max_body
        self.drain_timeout = drain_timeout
        self.stats = ServerStats()
        # Validates the knobs eagerly; per-entry dispatchers (and result
        # caches — cache_size=0 turns caching off) are created lazily by
        # the handle, on each entry's first use.
        self.handle.configure_dispatch(stats=self.stats, max_batch=max_batch,
                                       max_wait_ms=max_wait_ms, jobs=jobs,
                                       cache_size=cache_size,
                                       cache_ttl=cache_ttl,
                                       max_backlog=max_backlog)
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_backlog = max_backlog
        self._server: asyncio.Server | None = None
        self._connections: set[_Connection] = set()
        self._draining = False
        self._stopped = asyncio.Event()
        # Pre-fork wiring: an already-bound listen socket (the worker's
        # SO_REUSEPORT socket, or the supervisor's inherited one — see
        # repro.serve.prefork), this worker's fleet id, and the shared
        # stats directory it publishes its counters into.
        self._sock = sock
        self._worker_id = worker_id
        self._stats_dir = None if stats_dir is None else Path(stats_dir)
        self._stats_flush_interval = stats_flush_interval
        self._stats_task: asyncio.Task | None = None
        if log_path is None:
            log_path = os.environ.get(LOG_ENV) or None
        self._log_path = None if log_path is None else Path(log_path)
        self._log_handle = None

    # ------------------------------------------------------------------
    # Back-compat surface (the pre-catalog one-index API)
    # ------------------------------------------------------------------
    @property
    def index(self):
        """The default entry's open index."""
        return self.handle.get().index

    @property
    def dispatcher(self):
        """The default entry's dispatcher."""
        return self.handle.get().dispatcher

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral pick)."""
        if self._server is not None:
            return self._server.sockets[0].getsockname()[1]
        if self._sock is not None:
            return self._sock.getsockname()[1]
        return self._requested_port

    async def start(self) -> None:
        if self._log_path is not None:
            self._log_path.parent.mkdir(parents=True, exist_ok=True)
            self._log_handle = open(self._log_path, "a", encoding="utf-8")
        # The default entry opens at boot: a server that cannot serve
        # its default index should fail to start, not 500 later, and
        # /healthz answers from it without lazy-open surprises.
        default = self.handle.get()
        if self._sock is not None:
            # Pre-fork worker: adopt the already-bound socket
            # (asyncio calls listen on it).
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self._sock,
                limit=STREAM_LIMIT)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self._requested_port,
                limit=STREAM_LIMIT)
        if self._stats_dir is not None:
            self._publish_stats()
            self._stats_task = asyncio.get_running_loop().create_task(
                self._stats_flush_loop())
        self._log(f"serving kind={default.index.kind} "
                  f"dim={default.index.dim} "
                  f"entries={len(default.index)} on "
                  f"http://{self.host}:{self.port}")
        if len(self.handle) > 1:
            names = ", ".join(slot.name for slot in self.handle)
            self._log(f"catalog: {len(self.handle)} indexes ({names}), "
                      f"default {default.name!r}, "
                      f"max_open={self.handle.max_open}")

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes (CLI entry point)."""
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight requests,
        flush every open entry's dispatcher, then return.  Idempotent."""
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        self._log("draining: listener closing")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Idle keep-alive connections are parked in readline; closing
        # their transports turns that into a clean EOF.  Busy ones keep
        # running — their response is the whole point of draining.
        for connection in list(self._connections):
            if not connection.busy:
                connection.writer.close()
        for slot in self.handle.open_slots():
            await slot.dispatcher.drain()
        deadline = time.monotonic() + self.drain_timeout
        while self._connections and time.monotonic() < deadline:
            # A handler that read its request just before the listener
            # closed may enqueue queries *during* the drain — and may
            # even lazily open another catalog entry; keep hurrying
            # every open dispatcher until all handlers have answered.
            for slot in self.handle.open_slots():
                slot.dispatcher.flush_now()
            await asyncio.sleep(0.01)
        for connection in list(self._connections):
            self._log("drain timeout: force-closing a connection")
            connection.writer.close()
        if self._stats_task is not None:
            self._stats_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._stats_task
            self._stats_task = None
        if self._stats_dir is not None:
            # Final counters outlive the worker: the fleet /stats keeps
            # an accurate total across graceful worker exits.
            self._publish_stats()
        self._log(f"stopped after {self.stats.requests_total} requests / "
                  f"{self.stats.queries_total} queries")
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None
        self._stopped.set()

    def _log(self, message: str) -> None:
        if self._log_handle is not None:
            stamp = time.strftime("%Y-%m-%dT%H:%M:%S")
            self._log_handle.write(f"{stamp} {message}\n")
            self._log_handle.flush()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        connection = _Connection(writer)
        self._connections.add(connection)
        loop = asyncio.get_running_loop()
        try:
            def mark_request_started() -> None:
                # Fires the moment a request line arrives: busy makes a
                # concurrent drain wait for this request (even if the
                # client is still streaming its body) instead of
                # severing the upload; reject records whether draining
                # had *already* begun, in which case the request gets a
                # 503 rather than sneaking in behind the drain.
                connection.busy = True
                connection.reject = self._draining

            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.max_body,
                        on_request_line=mark_request_started)
                except ProtocolError as error:
                    started = loop.time()
                    self._respond_error(writer, error)
                    self.stats.record_response(error.status,
                                               loop.time() - started)
                    await writer.drain()
                    connection.busy = False
                    if error.close:
                        break
                    continue
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if request is None:
                    break
                started = loop.time()
                try:
                    status, payload, n_queries = await self._respond(
                        request, reject=connection.reject)
                except Exception as error:  # noqa: BLE001 - last resort
                    # A bug must produce one 500, not a dead connection.
                    status, payload, n_queries = 500, {"error": repr(error)}, 0
                keep_alive = (request.keep_alive and not self._draining
                              and status < 500)
                # Load-shed and unavailable answers carry a retry hint;
                # the connection stays open (429 is the *point* of not
                # melting down — the client should come right back).
                extra = ({"Retry-After": "1"} if status in (429, 503)
                         else None)
                writer.write(render_response(status, json_body(payload),
                                             keep_alive=keep_alive,
                                             extra_headers=extra))
                await writer.drain()
                latency = loop.time() - started
                self.stats.record_response(status, latency,
                                           n_queries=n_queries)
                self._log(f"{request.method} {request.target} -> {status} "
                          f"({n_queries} queries, {latency * 1000:.2f} ms)")
                connection.busy = False
                if not keep_alive:
                    break
        except ConnectionError:
            pass
        finally:
            self._connections.discard(connection)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _respond_error(self, writer: asyncio.StreamWriter,
                       error: ProtocolError) -> None:
        self._log(f"protocol error -> {error.status}: {error.message}")
        writer.write(render_response(error.status,
                                     json_body({"error": error.message}),
                                     keep_alive=not error.close))

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _respond(self, request: Request,
                       reject: bool = False) -> tuple[int, dict, int]:
        """Route one request; returns ``(status, payload, n_queries)``.

        ``reject`` means the request *arrived after* draining began (a
        keep-alive client racing the shutdown): it gets a 503.  A
        request already in flight when the drain started is served
        normally — that is the drain guarantee."""
        if reject:
            return 503, {"error": "server is draining"}, 0
        if request.target == "/query":
            if request.method != "POST":
                return 405, {"error": "/query takes POST"}, 0
            return await self._respond_query(request)
        if request.target == "/healthz":
            if request.method != "GET":
                return 405, {"error": "/healthz takes GET"}, 0
            default = self.handle.get()
            payload = {
                "status": "ok",
                "kind": default.index.kind,
                "dim": default.index.dim,
                "entries": len(default.index),
                "shards": getattr(default.index, "n_shards", 1),
                # Checkpoint + saved-format identity: what a catalog
                # A/B deployment reads to verify which model is live.
                "model_id": default.index.model_id,
                "format_version": default.index.format_version,
                "indexes": len(self.handle),
                # Quantization state of the default index: whether an
                # int8 sidecar is attached and whether scoring actually
                # uses it (getattr — a remote cluster facade has no
                # quantize surface of its own).
                "quantized": bool(getattr(default.index, "quantized",
                                          False)),
                "quantized_scoring": bool(getattr(default.index,
                                                  "use_quantized", False)),
            }
            if self._worker_id is not None:
                # Which fleet member answered — lets a client (and the
                # prefork tests) observe accept distribution.
                payload["worker_id"] = self._worker_id
                payload["pid"] = os.getpid()
            # A distributed index (duck-typed: it knows its shards'
            # health) gets a cluster section, and a partial outage
            # flips the status to "degraded" — visible here before it
            # surfaces as failed queries.
            health = getattr(default.index, "shard_health", None)
            if callable(health):
                loop = asyncio.get_running_loop()
                cluster = await loop.run_in_executor(None, health)
                payload["cluster"] = cluster
                if cluster["reachable"] < cluster["total"]:
                    payload["status"] = "degraded"
            return 200, payload, 0
        if request.target == "/indexes":
            if request.method != "GET":
                return 405, {"error": "/indexes takes GET"}, 0
            return 200, {"indexes": [self._describe_slot(slot)
                                     for slot in self.handle]}, 0
        if request.target == "/stats":
            if request.method != "GET":
                return 405, {"error": "/stats takes GET"}, 0
            if self._stats_dir is not None:
                return 200, self._fleet_stats(), 0
            return 200, self._stats_payload(), 0
        return 404, {"error": f"no route {request.target!r}"}, 0

    def _stats_payload(self) -> dict:
        """This process's ``/stats`` body: counters, latency shape,
        dispatcher backlog, per-index sections.  Also what a pre-fork
        worker publishes into its stats file."""
        snapshot = self.stats.snapshot()
        open_slots = self.handle.open_slots()
        snapshot["dispatcher"] = {
            "pending": sum(slot.dispatcher.n_pending
                           for slot in open_slots),
            "in_flight_batches": sum(slot.dispatcher.n_inflight
                                     for slot in open_slots),
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "max_backlog": self.max_backlog,
            # Queries shed by backpressure (each became a 429).
            "rejected": sum(slot.dispatcher.rejected_total
                            for slot in open_slots),
        }
        snapshot["indexes"] = {
            slot.name: self._slot_stats(slot) for slot in self.handle}
        return snapshot

    def _publish_stats(self) -> None:
        """Atomically write this worker's stats file (see
        ``repro.serve.prefork``)."""
        from .prefork import write_worker_stats
        record = {
            "worker_id": self._worker_id,
            "pid": os.getpid(),
            "updated_at": time.time(),
            "stats": self._stats_payload(),
            "latencies": self.stats.latencies(),
        }
        try:
            write_worker_stats(self._stats_dir, self._worker_id, record)
        except OSError:
            # The stats dir tearing down mid-drain is not worth dying
            # over; /stats degrades to the sections that exist.
            pass

    async def _stats_flush_loop(self) -> None:
        """Keep this worker's stats file at most one interval stale so
        whichever sibling answers ``/stats`` sees near-live counters;
        idle workers skip the rewrite."""
        last_marker = None
        while True:
            await asyncio.sleep(self._stats_flush_interval)
            marker = (self.stats.requests_total, self.stats.queries_total)
            if marker != last_marker:
                self._publish_stats()
                last_marker = marker

    def _fleet_stats(self) -> dict:
        """The pre-fork fleet view of ``/stats``: this worker publishes
        a fresh record of itself, reads every sibling's file, and rolls
        them up.  Peer sections are at most one flush interval stale —
        each carries its ``updated_at`` saying exactly how stale."""
        from .prefork import aggregate_worker_stats, read_worker_stats
        self._publish_stats()
        records = read_worker_stats(self._stats_dir)
        workers = {}
        for worker_id, record in sorted(records.items()):
            section = dict(record.get("stats", {}))
            section["pid"] = record.get("pid")
            section["updated_at"] = record.get("updated_at")
            workers[str(worker_id)] = section
        return {
            "worker_id": self._worker_id,
            "workers": workers,
            "aggregate": aggregate_worker_stats(records),
        }

    def _slot_stats(self, slot) -> dict:
        """One entry's ``/stats`` section: lifetime counters plus, while
        the index is open, its live generation and the cache's entry
        counts (the lifecycle tests read the generation here to observe
        invalidation).  With caching disabled the section is omitted
        entirely, so whenever it appears its counters partition the
        query total."""
        described = dict(slot.stats.snapshot(), open=slot.open)
        if slot.open:
            described["generation"] = slot.index.generation
            described["quantized"] = bool(getattr(slot.index, "quantized",
                                                  False))
            described["quantized_scoring"] = bool(
                getattr(slot.index, "use_quantized", False))
        if not self.handle.cache_enabled:
            described.pop("cache")
        elif slot.cache is not None:
            described["cache"] = dict(described["cache"],
                                      **slot.cache.sizes())
        return described

    def _describe_slot(self, slot) -> dict:
        entry = slot.entry
        described = {
            "name": entry.name,
            "kind": entry.kind,
            "path": entry.path,
            "model_id": entry.model_id,
            "default": entry.name == self.handle.default_name,
            "open": slot.open,
            # Only an *open* index knows its live entry count; listing
            # must never force-open a closed one.
            "entries": len(slot.index) if slot.open else None,
            "generation": slot.index.generation if slot.open else None,
            "queries": slot.stats.queries_total,
        }
        return described

    async def _respond_query(self,
                             request: Request) -> tuple[int, dict, int]:
        try:
            payload = parse_json_object(request.body)
            name = index_route(payload)
            no_cache = no_cache_flag(payload)
        except ProtocolError as error:
            return error.status, {"error": error.message}, 0
        try:
            slot = self.handle.get(name)
        except KeyError:
            known = ", ".join(repr(slot.name) for slot in self.handle)
            return 404, {"error": f"no index named {name!r} "
                                  f"(catalog has: {known})"}, 0
        except (FileNotFoundError, ValueError) as error:
            # The catalog names the entry but its layout won't open
            # (deleted, corrupt, checkpoint mismatch): a server-side
            # condition, not a client error.
            self._log(f"failed to open index {name!r}: {error}")
            return 500, {"error": f"failed to open index {name!r}: "
                                  f"{error}"}, 0
        try:
            matrix, k, excludes, single = parse_query_payload(
                payload, slot.index.dim)
        except ProtocolError as error:
            return error.status, {"error": error.message}, 0
        try:
            results = await slot.dispatcher.submit_many(matrix, k, excludes,
                                                        no_cache=no_cache)
        except Exception as error:
            # Failures that know their own HTTP status — the
            # dispatcher's BacklogFull (429: load shed, retry shortly)
            # and the cluster tier's ShardUnavailable/ClusterError
            # (503: a shard is down; the coordinator refused to serve
            # a half-merged ranking).  Both are duck-typed so the serve
            # layer needs no upward imports; anything else is a real
            # bug and falls through to the generic 500 handler.
            status = getattr(error, "http_status", None)
            if status is None:
                raise
            self._log(f"query shed -> {status}: {error}")
            return status, {"error": str(error)}, 0
        slot.stats.record_queries(len(results))
        if single:
            return 200, {"hits": format_hits(results[0])}, 1
        return 200, {"results": [{"hits": format_hits(hits)}
                                 for hits in results]}, len(results)


class ServerThread:
    """A :class:`RetrievalServer` on a background thread's event loop.

    Context-manager harness for in-process clients (tests, the serving
    benchmark)::

        with ServerThread(index_or_catalog, max_wait_ms=1.0) as handle:
            requests.post(f"http://127.0.0.1:{handle.port}/query", ...)

    ``__exit__`` performs the same graceful drain the CLI's signal
    handler does, so in-flight requests finish before the thread joins.
    """

    def __init__(self, target, **server_kwargs):
        self.server = RetrievalServer(target, **server_kwargs)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._stopped = False

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._started.is_set():
            raise RuntimeError("server thread failed to start in time")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as error:  # noqa: BLE001 - reported to starter
            self._startup_error = error
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.run_until_complete(loop.shutdown_default_executor())
            loop.close()

    def stop(self, timeout: float = 30.0) -> None:
        if self._stopped or self._loop is None:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(self.server.shutdown(),
                                                  self._loop)
        future.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
