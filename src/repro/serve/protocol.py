"""HTTP/1.1 framing and the ``/query`` JSON wire shapes.

The retrieval server speaks hand-rolled HTTP/1.1 over raw
``asyncio`` streams — no ``http.server``, no third-party framework —
so this module owns the whole wire format in one unit-testable place:

- :func:`read_request` parses one request (request line, headers, body)
  off a :class:`asyncio.StreamReader`, enforcing size limits before a
  byte of body is buffered;
- :func:`render_response` frames one response (status line, headers,
  body) as bytes ready for ``writer.write``;
- :func:`parse_query_payload` validates a ``POST /query`` JSON body
  into a ``(Q, dim)`` query matrix plus ``k``/per-query excludes,
  accepting both the single-vector and the batch shape.

Anything a client can get wrong raises :class:`ProtocolError` carrying
the HTTP status to answer with — malformed JSON and bad shapes are 400,
an oversized body is 413 (and closes the connection, since the body was
never read), an unsupported transfer encoding is 501.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

import numpy as np

#: Default cap on request body size (bytes).  A batch of ~8k queries at
#: dim 128 fits comfortably; anything larger should be chunked.
DEFAULT_MAX_BODY = 8 * 1024 * 1024

#: Cap on the number of request headers (sanity, not a real workload).
MAX_HEADERS = 100

#: ``asyncio.StreamReader`` buffer limit: bounds the request line and
#: each header line (readline past this raises, answered with 400).
STREAM_LIMIT = 64 * 1024

def _reason(status: int) -> str:
    """Standard reason phrase (stdlib-sourced; codes only matter to
    clients, the phrase is cosmetic)."""
    from http import HTTPStatus

    try:
        return HTTPStatus(status).phrase
    except ValueError:
        return "Unknown"


class ProtocolError(Exception):
    """A client-visible protocol failure: answer with ``status`` and a
    JSON ``{"error": message}`` body; ``close`` forces the connection
    shut afterwards (used when the request body was never consumed, so
    the stream position is unknowable)."""

    def __init__(self, status: int, message: str, close: bool = False):
        super().__init__(message)
        self.status = status
        self.message = message
        self.close = close


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 defaults to persistent connections; either side can
        opt out with ``Connection: close``."""
        token = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return token == "keep-alive"
        return token != "close"


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    """One CRLF-terminated line, or :class:`ProtocolError` when the
    client sends a line longer than the stream limit."""
    try:
        return await reader.readline()
    except ValueError:
        # StreamReader signals limit overruns as ValueError.
        raise ProtocolError(400, "request line or header exceeds "
                            f"{STREAM_LIMIT} bytes", close=True) from None


async def read_request(reader: asyncio.StreamReader,
                       max_body: int = DEFAULT_MAX_BODY,
                       on_request_line=None) -> Request | None:
    """Parse one request off ``reader``.

    Returns ``None`` on clean EOF (the client closed a keep-alive
    connection between requests).  Malformed framing raises
    :class:`ProtocolError`; an abruptly severed mid-request connection
    raises :class:`asyncio.IncompleteReadError` for the caller to treat
    as a disconnect.

    ``on_request_line`` (if given) fires as soon as a request line has
    arrived — the point a connection stops being "idle between
    requests" and becomes "mid-request".  Graceful drain hangs on this
    distinction: idle connections may be disconnected, one that has
    started sending (and may still be streaming its body) must be
    allowed to finish and get its response.
    """
    line = await _read_line(reader)
    if not line:
        return None
    if on_request_line is not None:
        on_request_line()
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, "malformed request line", close=True)
    method, target, version = parts
    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            # EOF mid-headers: the client gave up; nothing to answer.
            raise asyncio.IncompleteReadError(b"", None)
        if len(headers) >= MAX_HEADERS:
            raise ProtocolError(400, f"more than {MAX_HEADERS} headers",
                                close=True)
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, "malformed header line", close=True)
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise ProtocolError(501, "transfer-encoding is not supported",
                            close=True)
    length_header = headers.get("content-length")
    body = b""
    if length_header is not None:
        try:
            length = int(length_header)
            if length < 0:
                raise ValueError
        except ValueError:
            raise ProtocolError(400, "invalid content-length",
                                close=True) from None
        if length > max_body:
            # The body was never read, so the connection must close —
            # the next "request" would start mid-payload.
            raise ProtocolError(413, f"request body of {length} bytes "
                                f"exceeds the {max_body} byte limit",
                                close=True)
        if length:
            body = await reader.readexactly(length)
    elif method == "POST":
        raise ProtocolError(411, "POST requires content-length", close=True)
    return Request(method=method, target=target, version=version,
                   headers=headers, body=body)


def render_response(status: int, body: bytes,
                    content_type: str = "application/json",
                    keep_alive: bool = True,
                    extra_headers: dict[str, str] | None = None) -> bytes:
    """Frame one HTTP/1.1 response as bytes.  ``extra_headers`` adds
    response headers beyond the framing trio (e.g. ``Retry-After`` on a
    backpressure 429)."""
    extras = "".join(f"{name}: {value}\r\n"
                     for name, value in (extra_headers or {}).items())
    head = (f"HTTP/1.1 {status} {_reason(status)}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extras}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n")
    return head.encode("latin-1") + body


def json_body(payload: dict) -> bytes:
    return (json.dumps(payload) + "\n").encode("utf-8")


def parse_json_object(body: bytes) -> dict:
    """Decode a request body into a JSON object, or 400.

    Split out of :func:`parse_query_payload` for the catalog-routed
    server: the optional ``"index"`` route field must be read (and the
    target index resolved — its ``dim`` drives validation) *before* the
    vectors can be checked."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(400, f"request body is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise ProtocolError(400, "request body must be a JSON object")
    return payload


def index_route(payload: dict) -> str | None:
    """The optional ``"index"`` field of a ``POST /query`` payload:
    ``None`` when absent (→ the catalog's default entry), the name when
    it is a non-empty string, 400 otherwise.  Whether the *name* exists
    is the server's call (unknown → 404)."""
    name = payload.get("index")
    if name is None:
        return None
    if not isinstance(name, str) or not name:
        raise ProtocolError(400, "'index' must be a non-empty string "
                            "naming a catalog entry")
    return name


def no_cache_flag(payload: dict) -> bool:
    """The optional ``"no_cache"`` field of a ``POST /query`` payload:
    ``False`` when absent, the flag when it is a real boolean, 400
    otherwise (truthy strings must not silently bypass the cache)."""
    flag = payload.get("no_cache", False)
    if not isinstance(flag, bool):
        raise ProtocolError(400, "'no_cache' must be a boolean")
    return flag


def parse_query_payload(body: bytes | dict,
                        dim: int) -> tuple[np.ndarray, int,
                                           list[str | None], bool]:
    """Validate a ``POST /query`` body into query inputs.

    Two accepted shapes::

        {"vector":  [...],          "k": 5, "exclude": "key"}
        {"vectors": [[...], [...]], "k": 5, "excludes": ["key", null]}

    Accepts raw bytes or an already-decoded object (the routed server
    parses JSON once, resolves the ``"index"`` field, then validates
    against the routed index's ``dim``).  Returns ``(matrix, k,
    excludes, single)`` where ``single`` records which shape the client
    used (it picks the response shape).  Every validation failure is a
    :class:`ProtocolError` with status 400 and a message naming what
    was wrong — the server never 500s on bad input.
    """
    payload = (parse_json_object(body)
               if isinstance(body, (bytes, bytearray)) else body)
    if "vector" in payload and "vectors" in payload:
        raise ProtocolError(400, "'vector' and 'vectors' are mutually "
                            "exclusive")
    if "vector" in payload:
        single = True
        rows = [payload["vector"]]
        excludes = [payload.get("exclude")]
        if "excludes" in payload:
            raise ProtocolError(400, "'exclude' (singular) goes with "
                                "'vector'; 'excludes' goes with 'vectors'")
    elif "vectors" in payload:
        single = False
        rows = payload["vectors"]
        if not isinstance(rows, list) or not rows:
            raise ProtocolError(400, "'vectors' must be a non-empty list "
                                "of vectors")
        excludes = payload.get("excludes")
        if excludes is None:
            excludes = [None] * len(rows)
        elif (not isinstance(excludes, list)
              or len(excludes) != len(rows)):
            raise ProtocolError(400, f"'excludes' must align with the "
                                f"{len(rows)} vectors")
    else:
        raise ProtocolError(400, "missing 'vector' (single query) or "
                            "'vectors' (batch)")
    for exclude in excludes:
        if exclude is not None and not isinstance(exclude, str):
            raise ProtocolError(400, "excludes must be keys (strings) "
                                "or null")
    for q, row in enumerate(rows):
        if (not isinstance(row, list) or not row
                or not all(isinstance(x, (int, float))
                           and not isinstance(x, bool) for x in row)):
            raise ProtocolError(400, f"query {q} must be a non-empty "
                                f"numeric vector")
        if len(row) != dim:
            raise ProtocolError(400, f"query {q} has {len(row)} dims, "
                                f"index expects {dim}")
    matrix = np.asarray(rows, dtype=float)
    if not np.isfinite(matrix).all():
        # json.loads accepts NaN/Infinity literals; a non-finite query
        # would poison every similarity it touches.
        raise ProtocolError(400, "query vectors must be finite")
    k = payload.get("k", 10)
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ProtocolError(400, "'k' must be an integer >= 1")
    return matrix, k, excludes, single


def format_hits(hits) -> list[dict]:
    """``SearchHit`` list to the wire shape."""
    return [{"key": hit.key, "score": hit.score, "meta": hit.meta}
            for hit in hits]
