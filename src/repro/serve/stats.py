"""Serving metrics: QPS, latency percentiles, micro-batch shapes.

All recording happens on the server's event-loop thread (handlers and
the dispatcher both live there), so the counters need no locks; the
``/stats`` endpoint serves :meth:`ServerStats.snapshot` from the same
thread.  Latencies and batch sizes live in bounded deques — a soak run
cannot grow server memory — and QPS is computed over a sliding window
of recent completions rather than the whole uptime, so it reflects the
current load, not the average since boot.
"""

from __future__ import annotations

import math
import time
from collections import Counter, deque


def percentile(values: list[float], q: float) -> float | None:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 1]): the
    ``ceil(q * n)``-th smallest value (1-indexed), clamped into range.
    Truncating instead of taking the ceiling would shift every rank up
    one on small reservoirs — p50 of ``[1, 2]`` must be 1, not 2."""
    if not values:
        return None
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


class ServerStats:
    """Counters + reservoirs behind ``GET /stats``."""

    def __init__(self, window_seconds: float = 60.0, reservoir: int = 2048,
                 clock=time.monotonic):
        self.window_seconds = window_seconds
        self._clock = clock
        self.started_at = clock()
        self.requests_total = 0
        self.queries_total = 0
        self.responses_by_status: Counter[int] = Counter()
        self.batches_dispatched = 0
        self._latencies: deque[float] = deque(maxlen=reservoir)
        self._batch_sizes: deque[int] = deque(maxlen=reservoir)
        #: ``(completed_at, n_queries)`` pairs inside the QPS window.
        self._completions: deque[tuple[float, int]] = deque()

    # ------------------------------------------------------------------
    # Recording (event-loop thread only)
    # ------------------------------------------------------------------
    def record_response(self, status: int, latency_seconds: float,
                        n_queries: int = 0) -> None:
        """One finished HTTP exchange: status, wall latency, and how
        many queries it carried (0 for health/stats/errors)."""
        self.requests_total += 1
        self.responses_by_status[status] += 1
        self._latencies.append(latency_seconds)
        if n_queries:
            self.queries_total += n_queries
            self._completions.append((self._clock(), n_queries))
            self._prune()

    def record_batch(self, size: int) -> None:
        """One micro-batch handed to ``query_many``."""
        self.batches_dispatched += 1
        self._batch_sizes.append(size)

    def _prune(self) -> None:
        horizon = self._clock() - self.window_seconds
        while self._completions and self._completions[0][0] < horizon:
            self._completions.popleft()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def qps(self) -> float:
        """Queries per second over the *occupied* part of the sliding
        window: completions divided by the span from the oldest
        retained completion to now, floored at one second so a lone
        fresh completion cannot read as a thousand QPS.  Dividing by
        the full window would under-report a burst on a freshly-busy
        server (100 queries in the last 2 s of a 60 s window is
        50 QPS, not 1.7)."""
        self._prune()
        if not self._completions:
            return 0.0
        occupied = max(self._clock() - self._completions[0][0], 1.0)
        return sum(n for _t, n in self._completions) / occupied

    def latencies(self) -> list[float]:
        """The current latency reservoir (seconds) — exported into the
        per-worker stats files so a fleet-wide ``/stats`` can compute
        aggregate percentiles over the *concatenated* reservoirs
        instead of trying to merge per-worker percentiles."""
        return list(self._latencies)

    def snapshot(self) -> dict:
        latencies = list(self._latencies)
        batches = list(self._batch_sizes)
        return {
            "uptime_seconds": self._clock() - self.started_at,
            "requests_total": self.requests_total,
            "queries_total": self.queries_total,
            "responses_by_status": {str(status): count for status, count
                                    in sorted(self.responses_by_status.items())},
            "qps": self.qps(),
            "latency_ms": {
                "p50": _ms(percentile(latencies, 0.50)),
                "p99": _ms(percentile(latencies, 0.99)),
                "max": _ms(max(latencies) if latencies else None),
            },
            "batch": {
                "dispatched": self.batches_dispatched,
                "mean_size": (sum(batches) / len(batches)
                              if batches else None),
                "max_size": max(batches) if batches else None,
            },
        }


def _ms(seconds: float | None) -> float | None:
    return None if seconds is None else seconds * 1000.0
