"""Async retrieval serving over a saved index.

The served front-end for the concurrent query engine: one
:func:`~repro.index.open_index` handle (memory-mapped by default from
the CLI, so cold starts of huge sharded layouts read no vector data),
an asyncio HTTP/1.1 server (:class:`RetrievalServer`), and a
micro-batching dispatcher (:class:`MicroBatchDispatcher`) that
coalesces concurrent requests into shared ``query_many`` GEMMs while
keeping every served ranking identical to the offline CLI path.

Start one from the command line with ``python -m repro.cli serve``, or
in-process (tests, benchmarks) with :class:`ServerThread`.
"""

from .dispatcher import MicroBatchDispatcher
from .protocol import (
    DEFAULT_MAX_BODY,
    ProtocolError,
    Request,
    parse_query_payload,
    read_request,
    render_response,
)
from .server import LOG_ENV, RetrievalServer, ServerThread
from .stats import ServerStats

__all__ = [
    "RetrievalServer", "ServerThread", "MicroBatchDispatcher",
    "ServerStats", "ProtocolError", "Request", "read_request",
    "render_response", "parse_query_payload", "DEFAULT_MAX_BODY",
    "LOG_ENV",
]
