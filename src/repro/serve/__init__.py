"""Async retrieval serving over a catalog of saved indexes.

The served front-end for the concurrent query engine: a
:class:`~repro.catalog.CatalogHandle` of named indexes (each opened
lazily via :func:`~repro.index.open_index` — memory-mapped by default
from the CLI, so cold starts of huge sharded layouts read no vector
data — and LRU-evicted under a configurable cap), an asyncio HTTP/1.1
server (:class:`RetrievalServer`) that routes ``POST /query`` by the
optional ``"index"`` name field, and per-index micro-batching
dispatchers (:class:`MicroBatchDispatcher`) that coalesce concurrent
requests into shared ``query_many`` GEMMs while keeping every served
ranking identical to the offline CLI path.

Start one from the command line with ``python -m repro.cli serve``
(a bare index path or a catalog directory), or in-process (tests,
benchmarks) with :class:`ServerThread`.
"""

from .dispatcher import MicroBatchDispatcher, validate_dispatch_params
from .protocol import (
    DEFAULT_MAX_BODY,
    ProtocolError,
    Request,
    index_route,
    no_cache_flag,
    parse_json_object,
    parse_query_payload,
    read_request,
    render_response,
)
from .prefork import (
    REUSEPORT_AVAILABLE,
    PreforkSupervisor,
    RestartBackoff,
    aggregate_worker_stats,
    bind_socket,
    read_worker_stats,
    write_worker_stats,
)
from .server import LOG_ENV, RetrievalServer, ServerThread
from .stats import ServerStats

__all__ = [
    "RetrievalServer", "ServerThread", "MicroBatchDispatcher",
    "ServerStats", "ProtocolError", "Request", "read_request",
    "render_response", "parse_query_payload", "parse_json_object",
    "index_route", "no_cache_flag", "validate_dispatch_params",
    "DEFAULT_MAX_BODY", "LOG_ENV",
    "PreforkSupervisor", "RestartBackoff", "REUSEPORT_AVAILABLE",
    "bind_socket", "write_worker_stats", "read_worker_stats",
    "aggregate_worker_stats",
]
