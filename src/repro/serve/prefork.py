"""Pre-fork multi-worker serving: one supervisor, N worker processes.

The single-process asyncio server tops out around ~600 QPS on one box
(``results/BENCH_serve.json``): one event loop, one GIL, one process.
The mmap work (PR 5) made the fix nearly free in memory — every worker
opens the same shard files with ``open_index(mmap=True)``, so the
kernel page cache holds **one** resident copy of the vector data no
matter how many workers map it.  This module multiplies the processes:

- :class:`PreforkSupervisor` binds the listen address once (resolving
  ``port=0`` to a concrete shared port *before* any fork), then forks
  N workers.  Where the platform has ``SO_REUSEPORT`` (Linux, BSDs)
  each worker binds its own socket to the resolved port and the kernel
  load-balances accepts across them; elsewhere the workers share the
  supervisor's inherited socket — one accept queue, classic pre-fork.
  The supervisor's own socket never listens, so it never siphons
  connections into a queue nobody drains.
- Each worker runs the unmodified asyncio
  :class:`~repro.serve.server.RetrievalServer` — same wire contract,
  same micro-batching, same served-rankings-equal-offline guarantee,
  gated by ``benchmarks/bench_serve.py --prefork`` before any timing.
- SIGTERM/SIGINT to the supervisor fans SIGTERM out to every worker;
  each performs the server's graceful drain (in-flight requests,
  including ones parked in a micro-batch window, run to completion)
  and the supervisor waits for all of them before exiting 0.
- A crashed worker (killed, segfaulted, uncaught exception) is
  restarted in the same slot with capped exponential backoff
  (:class:`RestartBackoff`); a worker that exits with code 2 — the
  CLI's configuration-error code — is fatal: the whole fleet shuts
  down rather than crash-looping on a config that can never work.
- Workers publish their stats as atomically-replaced per-worker JSON
  files in a supervisor-owned directory; whichever worker answers
  ``GET /stats`` composes the fleet view (per-worker sections plus an
  aggregate) from them.  Files rather than a unix-socket control
  channel: restart-safe, zero cross-process coordination on the hot
  path, and the staleness bound is simply the flush interval (each
  section carries its ``updated_at``).

Caches and dispatchers are per-worker **by construction** — each
worker builds its own :class:`~repro.catalog.handles.CatalogHandle`
after the fork, so no cache entry, dispatcher queue, LRU-eviction
decision, or stats counter is ever shared between processes (see the
``repro.catalog.handles`` module docstring; pinned by
``tests/catalog/test_worker_isolation.py``).
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import socket
import sys
import tempfile
import time
import traceback
from pathlib import Path

from .stats import _ms, percentile

#: Whether the platform can load-balance accepts across per-worker
#: listen sockets; without it workers share one inherited accept queue.
REUSEPORT_AVAILABLE = hasattr(socket, "SO_REUSEPORT")


def bind_socket(host: str, port: int, *,
                reuse_port: bool = False) -> socket.socket:
    """A bound — deliberately **not** listening — TCP socket for
    ``host:port``.  The caller (a worker's ``asyncio`` server) calls
    ``listen``; the supervisor keeps its copy bound-only so the port
    stays reserved across worker restarts without ever joining the
    kernel's accept distribution."""
    infos = socket.getaddrinfo(host, port, type=socket.SOCK_STREAM)
    family, type_, proto, _name, addr = infos[0]
    sock = socket.socket(family, type_, proto)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind(addr)
    except OSError:
        sock.close()
        raise
    return sock


class RestartBackoff:
    """Capped exponential backoff for one worker slot.

    A crash after a *stable* run (``uptime >= stable_after``) restarts
    at the initial delay — an isolated OOM kill should not be punished
    with a long outage.  Rapid crash loops double toward the cap, so a
    persistently-dying worker costs bounded CPU without ever giving up
    (code-2 config errors are handled separately, as fatal)."""

    def __init__(self, initial: float = 0.1, cap: float = 2.0,
                 stable_after: float = 5.0):
        if not 0 < initial <= cap:
            raise ValueError(f"need 0 < initial <= cap, got "
                             f"initial={initial} cap={cap}")
        self.initial = initial
        self.cap = cap
        self.stable_after = stable_after
        self._next = initial

    def next_delay(self, uptime: float) -> float:
        """The delay before restarting a worker that died after
        ``uptime`` seconds."""
        if uptime >= self.stable_after:
            self._next = self.initial
        delay = self._next
        self._next = min(self._next * 2.0, self.cap)
        return delay


# ----------------------------------------------------------------------
# Per-worker stats files (the fleet half of GET /stats)
# ----------------------------------------------------------------------

def stats_path(stats_dir, worker_id: int) -> Path:
    return Path(stats_dir) / f"worker-{worker_id:03d}.json"


def write_worker_stats(stats_dir, worker_id: int, record: dict) -> Path:
    """Atomically publish one worker's stats record: write a sibling
    temp file, then ``os.replace`` — a concurrent reader sees either
    the old record or the new one, never a torn file."""
    path = stats_path(stats_dir, worker_id)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(record) + "\n")
    os.replace(tmp, path)
    return path


def read_worker_stats(stats_dir) -> dict[int, dict]:
    """Every worker's last published record, keyed by worker id.
    Records that fail to parse (a worker died mid-setup, the directory
    is tearing down) are skipped, not fatal — a fleet ``/stats`` must
    degrade to the sections it can read."""
    records: dict[int, dict] = {}
    for path in sorted(Path(stats_dir).glob("worker-*.json")):
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if isinstance(record, dict) and isinstance(
                record.get("worker_id"), int):
            records[record["worker_id"]] = record
    return records


def aggregate_worker_stats(records: dict[int, dict]) -> dict:
    """The fleet-wide rollup of per-worker records: counters and
    status tallies sum, QPS adds (each worker's own sliding-window
    figure), and latency percentiles are computed over the
    *concatenation* of every worker's reservoir — averaging per-worker
    percentiles would be statistically meaningless."""
    requests = queries = batches = rejected = 0
    qps = 0.0
    by_status: dict[str, int] = {}
    latencies: list[float] = []
    for record in records.values():
        stats = record.get("stats", {})
        requests += stats.get("requests_total", 0)
        queries += stats.get("queries_total", 0)
        qps += stats.get("qps", 0.0) or 0.0
        for status, count in stats.get("responses_by_status", {}).items():
            by_status[status] = by_status.get(status, 0) + count
        rejected += stats.get("dispatcher", {}).get("rejected", 0) or 0
        batches += stats.get("batch", {}).get("dispatched", 0) or 0
        latencies.extend(record.get("latencies", ()))
    return {
        "workers": len(records),
        "requests_total": requests,
        "queries_total": queries,
        "responses_by_status": dict(sorted(by_status.items())),
        "qps": qps,
        "latency_ms": {
            "p50": _ms(percentile(latencies, 0.50)),
            "p99": _ms(percentile(latencies, 0.99)),
            "max": _ms(max(latencies) if latencies else None),
        },
        "batch": {"dispatched": batches},
        "rejected": rejected,
    }


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------

def _describe_exit(status: int) -> tuple[int, str]:
    code = os.waitstatus_to_exitcode(status)
    if code < 0:
        return code, f"was killed by signal {-code}"
    return code, f"exited with code {code}"


class _WorkerSlot:
    """One worker position in the fleet: stable id, current pid (or
    ``None`` while down), its restart backoff, and when it last
    started (for the stable-uptime reset)."""

    __slots__ = ("worker_id", "pid", "backoff", "started_at",
                 "restart_at", "restarts")

    def __init__(self, worker_id: int, backoff: RestartBackoff):
        self.worker_id = worker_id
        self.pid: int | None = None
        self.backoff = backoff
        self.started_at = 0.0
        #: Monotonic deadline when a respawn is due; ``None`` = alive.
        self.restart_at: float | None = None
        self.restarts = 0


class PreforkSupervisor:
    """Fork-and-watch supervisor around a ``worker_main`` callable.

    Parameters
    ----------
    worker_main:
        ``worker_main(worker_id, sock) -> int`` — runs **in the forked
        child** with ``sock`` the child's listen socket (bound; the
        worker's asyncio server calls listen on it) and returns the
        child's exit code.  It runs after the fork, so closing over
        parent state (CLI args, the supervisor itself) is fine.
    n_workers:
        Fleet size (>= 1).
    host / port:
        Listen address.  ``port=0`` is resolved once, before any fork,
        so every worker shares the same concrete port.
    reuse_port:
        Force the socket strategy; default auto-detects
        ``SO_REUSEPORT``.
    stats_dir:
        Directory for the per-worker stats files.  ``None`` (default)
        creates a private temp directory, removed on exit.
    backoff_initial / backoff_cap / stable_after:
        :class:`RestartBackoff` knobs for crashed-worker restarts.
    drain_timeout:
        Seconds to wait for workers to finish their graceful drain
        after SIGTERM before escalating to SIGKILL.
    """

    #: Worker exit code meaning "this configuration can never work" —
    #: the CLI's own usage-error code.  Restarting would crash-loop,
    #: so the supervisor shuts the fleet down and exits with it.
    FATAL_EXIT = 2

    def __init__(self, worker_main, n_workers: int,
                 host: str = "127.0.0.1", port: int = 0, *,
                 reuse_port: bool | None = None, stats_dir=None,
                 backoff_initial: float = 0.1, backoff_cap: float = 2.0,
                 stable_after: float = 5.0, drain_timeout: float = 30.0,
                 log=None):
        if n_workers < 1:
            raise ValueError(f"n_workers must be at least 1, "
                             f"got {n_workers}")
        self.worker_main = worker_main
        self.n_workers = n_workers
        self.host = host
        self._requested_port = port
        self.reuse_port = (REUSEPORT_AVAILABLE if reuse_port is None
                           else reuse_port)
        self.drain_timeout = drain_timeout
        self.stats_dir = stats_dir
        self._owns_stats_dir = stats_dir is None
        self._slots = [
            _WorkerSlot(i, RestartBackoff(backoff_initial, backoff_cap,
                                          stable_after))
            for i in range(n_workers)]
        self._sock: socket.socket | None = None
        self._stop = False
        self._exit_code = 0
        self._log = log if log is not None else (
            lambda message: print(message, flush=True))

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._sock is not None:
            return self._sock.getsockname()[1]
        return self._requested_port

    @property
    def worker_pids(self) -> dict[int, int]:
        """Live workers only: ``{worker_id: pid}``."""
        return {slot.worker_id: slot.pid for slot in self._slots
                if slot.pid is not None}

    @property
    def restarts_total(self) -> int:
        return sum(slot.restarts for slot in self._slots)

    def start(self) -> "PreforkSupervisor":
        """Bind the listen address (resolving ``port=0``) and create
        the stats directory — separate from :meth:`run` so a CLI can
        print an accurate banner before blocking."""
        if self._sock is None:
            self._sock = bind_socket(self.host, self._requested_port,
                                     reuse_port=self.reuse_port)
        if self.stats_dir is None:
            self.stats_dir = Path(tempfile.mkdtemp(prefix="repro-prefork-"))
        else:
            Path(self.stats_dir).mkdir(parents=True, exist_ok=True)
        return self

    def request_stop(self) -> None:
        """Ask the supervise loop to drain the fleet and exit (what
        the SIGTERM/SIGINT handlers call; also the test hook)."""
        self._stop = True

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, install_signals: bool = True) -> int:
        """Fork the fleet and supervise until stopped; returns the
        process exit code (0 after a clean drain, 2 after a fatal
        worker config error)."""
        self.start()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    signal.signal(signum,
                                  lambda *_args: self.request_stop())
                except ValueError:  # not the main thread (tests)
                    pass
        try:
            for slot in self._slots:
                self._spawn(slot)
            while not self._stop:
                self._reap()
                if self._stop:
                    break
                self._respawn_due()
                time.sleep(0.02)
        finally:
            self._shutdown_workers()
            self._cleanup()
        return self._exit_code

    # ------------------------------------------------------------------
    # Fork plumbing
    # ------------------------------------------------------------------
    def _spawn(self, slot: _WorkerSlot) -> None:
        sys.stdout.flush()
        sys.stderr.flush()
        pid = os.fork()
        if pid == 0:
            # Child.  Must never return into the supervisor's stack,
            # and must skip the parent's atexit/finalizers (it shares
            # their state only copy-on-write): os._exit, always.
            code = 1
            try:
                # The supervisor's handlers must not run here — an
                # early SIGTERM should kill the child outright until
                # the worker's own asyncio drain handler takes over.
                signal.signal(signal.SIGTERM, signal.SIG_DFL)
                signal.signal(signal.SIGINT, signal.SIG_DFL)
                returned = self.worker_main(slot.worker_id,
                                            self._child_socket())
                code = 0 if returned is None else int(returned)
            except SystemExit as error:
                code = (error.code if isinstance(error.code, int)
                        else 0 if error.code is None else 1)
            except BaseException:  # noqa: BLE001 - child's last resort
                traceback.print_exc()
                code = 1
            finally:
                sys.stdout.flush()
                sys.stderr.flush()
                os._exit(code)
        slot.pid = pid
        slot.started_at = time.monotonic()
        slot.restart_at = None
        self._log(f"prefork: worker {slot.worker_id} started (pid {pid})")

    def _child_socket(self) -> socket.socket:
        """The child's listen socket.  With ``SO_REUSEPORT`` each
        worker binds its own socket to the already-resolved port (the
        kernel then balances accepts per-socket); the inherited
        supervisor socket is closed in the child.  Without it, the
        inherited socket *is* the shared accept queue."""
        if not self.reuse_port:
            return self._sock
        port = self.port
        inherited = self._sock
        fresh = bind_socket(self.host, port, reuse_port=True)
        inherited.close()
        return fresh

    # ------------------------------------------------------------------
    # Reaping / restarting
    # ------------------------------------------------------------------
    def _reap(self) -> None:
        while True:
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                return
            if pid == 0:
                return
            slot = next((s for s in self._slots if s.pid == pid), None)
            if slot is None:
                continue
            slot.pid = None
            code, described = _describe_exit(status)
            if self._stop:
                continue
            if code == self.FATAL_EXIT:
                self._log(f"prefork: worker {slot.worker_id} exited with "
                          f"code {code} (configuration error) — shutting "
                          f"the fleet down")
                self._exit_code = self.FATAL_EXIT
                self._stop = True
                continue
            uptime = time.monotonic() - slot.started_at
            delay = slot.backoff.next_delay(uptime)
            slot.restarts += 1
            slot.restart_at = time.monotonic() + delay
            self._log(f"prefork: worker {slot.worker_id} {described} "
                      f"after {uptime:.1f}s; restarting in {delay:.2f}s "
                      f"(restart #{slot.restarts})")

    def _respawn_due(self) -> None:
        now = time.monotonic()
        for slot in self._slots:
            if (slot.pid is None and slot.restart_at is not None
                    and now >= slot.restart_at):
                self._spawn(slot)

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def _shutdown_workers(self) -> None:
        live = [slot for slot in self._slots if slot.pid is not None]
        if live:
            self._log(f"prefork: draining {len(live)} worker(s) "
                      f"(SIGTERM fan-out)")
        for slot in live:
            try:
                os.kill(slot.pid, signal.SIGTERM)
            except ProcessLookupError:
                slot.pid = None
        deadline = time.monotonic() + self.drain_timeout
        while (any(slot.pid is not None for slot in self._slots)
               and time.monotonic() < deadline):
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                break
            if pid == 0:
                time.sleep(0.02)
                continue
            for slot in self._slots:
                if slot.pid == pid:
                    slot.pid = None
                    code, described = _describe_exit(status)
                    if code != 0:
                        self._log(f"prefork: worker {slot.worker_id} "
                                  f"{described} during drain")
        for slot in self._slots:
            if slot.pid is not None:
                self._log(f"prefork: worker {slot.worker_id} missed the "
                          f"{self.drain_timeout:.0f}s drain deadline; "
                          f"killing (SIGKILL)")
                try:
                    os.kill(slot.pid, signal.SIGKILL)
                    os.waitpid(slot.pid, 0)
                except (ProcessLookupError, ChildProcessError):
                    pass
                slot.pid = None
        self._log("prefork: all workers exited")

    def _cleanup(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        if self._owns_stats_dir and self.stats_dir is not None:
            shutil.rmtree(self.stats_dir, ignore_errors=True)
            self.stats_dir = None
