"""Two-tier cached query engine over a :class:`VectorIndex`/:class:`ShardedIndex`.

Tier 1 (exact) maps a blake2b fingerprint of (query vector bytes, k,
kind, exclude, generation) straight to the served ``SearchHit`` list.
Tier 2 (semantic) maps the query's packed LSH band-key tuple to the
candidate *shortlist* the uncached path would probe: a near-duplicate
query — one that hashes into the same buckets — skips the hash-and-
probe step but is rescored **exactly** against the (possibly mmapped)
vectors through the same einsum kernels, the same tie-breaking and the
same brute-force fallback rule, so served rankings stay bit-identical
to the uncached path.  That is not an approximation: two queries with
equal band-key tuples probe equal buckets by construction, so the
shortlist is a pure function of (band keys, index generation).

Invalidation is by generation.  The engine snapshots
``index.generation`` and clears both tiers the moment it observes a
different value; the generation is *also* folded into every tier key,
so even a stale entry that somehow survived a clear is structurally
unreachable.  Rescoring additionally drops tombstoned ids
unconditionally, a third belt on the same trousers.

Threading contract (mirrors the serving layer's single-writer
discipline): ``lookup``/``store``/``note_bypass`` run on the event-loop
thread only; ``run_shortlisted``/``run_misses`` are the GEMM-heavy
steps and run in executor threads.  :meth:`CachedQueryEngine.query_many`
composes them synchronously in exactly the order the dispatcher does —
it exists so equivalence tests can drive the cache without booting a
server.
"""

from __future__ import annotations

import time

import numpy as np

from .result_cache import DEFAULT_CACHE_SIZE, TTLCache, exact_key


class CacheCounters:
    """Hit/miss/bypass tallies for one index's cache.

    Held by the catalog slot's :class:`IndexStats` (not by the engine)
    so the counts survive LRU eviction of the index itself.  The
    consistency invariant the soak tests pin: ``exact_hits +
    semantic_hits + misses + bypassed == queries_total``.
    """

    __slots__ = ("exact_hits", "semantic_hits", "misses", "bypassed")

    def __init__(self):
        self.exact_hits = 0
        self.semantic_hits = 0
        self.misses = 0
        self.bypassed = 0

    def record(self, event: str, n: int = 1) -> None:
        if event == "exact":
            self.exact_hits += n
        elif event == "semantic":
            self.semantic_hits += n
        elif event == "miss":
            self.misses += n
        elif event == "bypass":
            self.bypassed += n
        else:
            raise ValueError(f"unknown cache event {event!r}")

    def snapshot(self) -> dict:
        served = self.exact_hits + self.semantic_hits + self.misses
        return {
            "exact_hits": self.exact_hits,
            "semantic_hits": self.semantic_hits,
            "misses": self.misses,
            "bypassed": self.bypassed,
            "hit_rate": ((self.exact_hits + self.semantic_hits) / served
                         if served else 0.0),
        }


class QueryPlan:
    """What :meth:`CachedQueryEngine.lookup` learned about one query:
    its tier-1 fingerprint, its band-key tuple, the semantic-tier
    shortlist if one was found, and the generation all of that was
    computed at (a :meth:`~CachedQueryEngine.store` against a moved
    generation is silently dropped)."""

    __slots__ = ("fingerprint", "band_key", "shortlist", "generation")

    def __init__(self, fingerprint: bytes, band_key: tuple,
                 shortlist, generation: int):
        self.fingerprint = fingerprint
        self.band_key = band_key
        self.shortlist = shortlist
        self.generation = generation


class CachedQueryEngine:
    """Two-tier result cache in front of one index (see module doc)."""

    def __init__(self, index, *, max_entries: int = DEFAULT_CACHE_SIZE,
                 ttl: float | None = None, counters: CacheCounters | None = None,
                 clock=time.monotonic):
        self.index = index
        self.exact = TTLCache(max_entries, ttl, clock)
        self.semantic = TTLCache(max_entries, ttl, clock)
        self.counters = CacheCounters() if counters is None else counters
        self._generation = index.generation
        # The semantic tier needs the index's LSH surface (band keys +
        # shortlist harvesting).  A remote coordinator index
        # (RemoteShardedIndex) has neither — its hyperplanes live on
        # the shard servers — so it gets the exact tier only: hits are
        # still fingerprint-keyed full results, misses run the plain
        # query path with no shortlist harvest.
        self._semantic_capable = (hasattr(index, "band_key_tuples")
                                  and hasattr(index, "collect_shortlists"))

    # -- loop-thread surface -------------------------------------------

    @property
    def generation(self) -> int:
        """The index generation as of the last lookup/sync."""
        return self._generation

    def _sync_generation(self) -> int:
        generation = self.index.generation
        if generation != self._generation:
            self.exact.clear()
            self.semantic.clear()
            self._generation = generation
        return generation

    def note_bypass(self, n: int = 1) -> None:
        """Count ``n`` queries that asked for ``no_cache`` (they neither
        read nor write either tier)."""
        self.counters.record("bypass", n)

    def lookup(self, vector: np.ndarray, k: int, exclude: str | None
               ) -> tuple[list | None, QueryPlan | None]:
        """``(hits, None)`` on an exact hit, else ``(None, plan)`` where
        ``plan.shortlist`` is the semantic-tier shortlist or ``None`` on
        a full miss.  Counts exactly one of exact/semantic/miss."""
        generation = self._sync_generation()
        vector = np.ascontiguousarray(vector, dtype=float)
        fingerprint = exact_key(vector, k, self.index.kind,
                                exclude, generation)
        hits = self.exact.get(fingerprint)
        if hits is not None:
            self.counters.record("exact")
            return hits, None
        if not self._semantic_capable:
            self.counters.record("miss")
            return None, QueryPlan(fingerprint, None, None, generation)
        band_key = self.index.band_key_tuples(vector[None, :])[0]
        shortlist = self.semantic.get((generation, band_key))
        self.counters.record("semantic" if shortlist is not None else "miss")
        return None, QueryPlan(fingerprint, band_key, shortlist, generation)

    def store(self, plan: QueryPlan, hits: list, shortlist=None) -> None:
        """Insert one query's results (and, for misses, its harvested
        shortlist) under the plan's keys.  Dropped whole if the
        generation moved since the lookup — results computed against an
        old index state must never become reachable."""
        if (plan.generation != self._generation
                or plan.generation != self.index.generation):
            return
        self.exact.put(plan.fingerprint, hits)
        if shortlist is not None:
            self.semantic.put((plan.generation, plan.band_key), shortlist)

    def clear(self) -> None:
        """Drop both tiers (counters are untouched — they belong to the
        stats layer)."""
        self.exact.clear()
        self.semantic.clear()

    def sizes(self) -> dict:
        """Entry counts and churn totals for ``/stats``."""
        return {
            "exact_entries": len(self.exact),
            "semantic_entries": len(self.semantic),
            "evictions": self.exact.evictions + self.semantic.evictions,
            "expirations": self.exact.expirations + self.semantic.expirations,
        }

    # -- executor-thread surface ---------------------------------------

    def run_shortlisted(self, matrix: np.ndarray, k: int,
                        shortlists: list, excludes: list,
                        jobs: int | None = None) -> list:
        """Rescore cached shortlists exactly (semantic-tier service
        path).  Pure index work — no cache state touched."""
        return self.index.query_with_shortlists(matrix, k, shortlists,
                                                excludes=excludes, jobs=jobs)

    def run_misses(self, matrix: np.ndarray, k: int, excludes: list,
                   jobs: int | None = None) -> tuple[list, list | None]:
        """Full hash-probe-rescore for cache misses, harvesting each
        query's shortlist for the semantic tier on the way: ``(results,
        shortlists)``.  Identical to ``index.query_many`` because the
        shortlist *is* the candidate set that call would probe.  For an
        exact-only index (no shortlist surface) this is the plain query
        path and the harvest is ``None``."""
        if not self._semantic_capable:
            return (self.index.query_many(matrix, k=k,
                                          excludes=list(excludes),
                                          jobs=jobs), None)
        _keys, shortlists = self.index.collect_shortlists(matrix)
        results = self.index.query_with_shortlists(matrix, k, shortlists,
                                                   excludes=excludes,
                                                   jobs=jobs)
        return results, shortlists

    # -- synchronous driver (tests, benchmarks) ------------------------

    def query_many(self, vectors: np.ndarray, k: int = 10,
                   excludes: list | None = None, jobs: int | None = None,
                   no_cache: bool = False) -> list:
        """The dispatcher's cache flow, run synchronously: per-query
        lookup, one grouped rescore for semantic hits, one grouped full
        query for misses, then store.  Rankings are identical to
        ``index.query_many`` on the same inputs (the cache-equivalence
        property ``tests/cache`` pins)."""
        matrix = np.asarray(vectors, float)
        if excludes is None:
            excludes = [None] * len(matrix)
        if no_cache:
            self.note_bypass(len(matrix))
            return self.index.query_many(matrix, k=k, excludes=list(excludes),
                                         jobs=jobs)
        results: list = [None] * len(matrix)
        shortlisted: list[tuple[int, QueryPlan]] = []
        misses: list[tuple[int, QueryPlan]] = []
        for q in range(len(matrix)):
            hits, plan = self.lookup(matrix[q], k, excludes[q])
            if hits is not None:
                results[q] = hits
            elif plan.shortlist is not None:
                shortlisted.append((q, plan))
            else:
                misses.append((q, plan))
        if shortlisted:
            rows = [q for q, _plan in shortlisted]
            served = self.run_shortlisted(
                matrix[rows], k, [plan.shortlist for _q, plan in shortlisted],
                [excludes[q] for q in rows], jobs=jobs)
            for (q, plan), hits in zip(shortlisted, served):
                results[q] = hits
                self.store(plan, hits)
        if misses:
            rows = [q for q, _plan in misses]
            served, harvested = self.run_misses(
                matrix[rows], k, [excludes[q] for q in rows], jobs=jobs)
            if harvested is None:
                harvested = [None] * len(served)
            for (q, plan), hits, shortlist in zip(misses, served, harvested):
                results[q] = hits
                self.store(plan, hits, shortlist)
        return results
