"""Server-side result cache: exact + semantic tiers, generation-scoped.

See :mod:`repro.cache.engine` for the design contract; the one-line
version is that cached answers are *bit-identical* to the uncached
path — tier 1 replays stored rankings under a fingerprint that covers
every answer-changing request parameter, tier 2 reuses candidate
shortlists but rescores them through the uncached kernels.
"""

from .engine import CacheCounters, CachedQueryEngine, QueryPlan
from .result_cache import (DEFAULT_CACHE_SIZE, TTLCache, exact_key,
                           validate_cache_params)

__all__ = [
    "CacheCounters",
    "CachedQueryEngine",
    "QueryPlan",
    "DEFAULT_CACHE_SIZE",
    "TTLCache",
    "exact_key",
    "validate_cache_params",
]
