"""Bounded TTL-LRU maps and query fingerprinting for the result cache.

:class:`TTLCache` is the storage primitive behind both cache tiers: a
plain ``OrderedDict`` in LRU order with an optional per-entry time-to-
live.  It is deliberately not thread-safe — the serving layer touches
cache structures only from the event-loop thread (the same single-
writer discipline :class:`~repro.catalog.handles.CatalogHandle` relies
on), and the offline driver in :mod:`repro.cache.engine` is
synchronous.

:func:`exact_key` is the tier-1 fingerprint: a blake2b digest over the
query vector *bytes* plus every request parameter that changes the
answer — ``k``, the index kind, the per-query ``exclude`` and the index
generation.  Two requests that differ in any of those must never share
a cache entry (regression-tested in ``tests/cache``).
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict

import numpy as np

#: Default per-tier entry bound used by the server and CLI.
DEFAULT_CACHE_SIZE = 1024


def validate_cache_params(size: int, ttl: float | None) -> None:
    """Raise ``ValueError`` unless ``size``/``ttl`` are usable cache
    bounds: ``size`` a nonnegative int (0 disables the cache), ``ttl``
    ``None`` (no expiry) or a positive number of seconds."""
    if not isinstance(size, int) or isinstance(size, bool) or size < 0:
        raise ValueError(f"cache size must be a nonnegative int, got {size!r}")
    if ttl is not None and not (isinstance(ttl, (int, float))
                                and not isinstance(ttl, bool) and ttl > 0):
        raise ValueError(f"cache ttl must be None or a positive number "
                         f"of seconds, got {ttl!r}")


def exact_key(vector: np.ndarray, k: int, kind: str,
              exclude: str | None, generation: int) -> bytes:
    """Tier-1 fingerprint of one query: blake2b over the query vector's
    float64 bytes and every request parameter that can change the
    served ranking.  ``exclude=None`` and ``exclude=""`` hash
    differently (tagged, not concatenated)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.ascontiguousarray(vector, dtype=float).tobytes())
    digest.update(f"|k={k}|kind={kind}|gen={generation}|".encode())
    if exclude is None:
        digest.update(b"\x00")
    else:
        digest.update(b"\x01" + exclude.encode("utf-8"))
    return digest.digest()


class TTLCache:
    """A bounded mapping with LRU eviction and optional TTL expiry.

    ``get`` refreshes recency; ``put`` inserts (or overwrites) and
    evicts the least-recently-used entries beyond ``max_entries``.
    Entries older than ``ttl`` seconds are dropped lazily on ``get``.
    ``clock`` is injectable so tests can step time deterministically.
    """

    def __init__(self, max_entries: int, ttl: float | None = None,
                 clock=time.monotonic):
        validate_cache_params(max_entries, ttl)
        if max_entries < 1:
            raise ValueError(f"TTLCache needs max_entries >= 1, got "
                             f"{max_entries} (size 0 means: no cache at all)")
        self.max_entries = max_entries
        self.ttl = ttl
        self._clock = clock
        self._data: OrderedDict = OrderedDict()
        self.expirations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        """Side-effect-free membership probe: no recency bump, no lazy
        expiry sweep, no counter mutation.  An expired-but-unswept
        entry reports absent while staying in place for ``get`` to
        reap — ``x in cache`` must never change what a subsequent
        eviction or ``get`` does."""
        entry = self._data.get(key)
        if entry is None:
            return False
        expires_at, _value = entry
        return expires_at is None or self._clock() < expires_at

    def get(self, key):
        """The cached value, or ``None`` on miss/expiry.  A hit moves
        the entry to most-recently-used."""
        entry = self._data.get(key)
        if entry is None:
            return None
        expires_at, value = entry
        if expires_at is not None and self._clock() >= expires_at:
            del self._data[key]
            self.expirations += 1
            return None
        self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        """Insert ``value`` (which must not be ``None`` — that is the
        miss sentinel) as most-recently-used, evicting LRU overflow."""
        if value is None:
            raise ValueError("TTLCache cannot store None (the miss sentinel)")
        expires_at = None if self.ttl is None else self._clock() + self.ttl
        self._data[key] = (expires_at, value)
        self._data.move_to_end(key)
        while len(self._data) > self.max_entries:
            _key, (popped_expiry, _value) = self._data.popitem(last=False)
            # An entry that had already timed out but was never swept by
            # a get() is an expiry, not an eviction — crediting it to
            # evictions would overstate capacity pressure (the counters
            # feed /stats, where operators size --cache-size from them).
            if popped_expiry is not None and self._clock() >= popped_expiry:
                self.expirations += 1
            else:
                self.evictions += 1

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        dropped = len(self._data)
        self._data.clear()
        return dropped
