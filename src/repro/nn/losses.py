"""Loss functions for pre-training and classification."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

IGNORE_INDEX = -100


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: int = IGNORE_INDEX) -> Tensor:
    """Mean cross-entropy over positions whose target is not ignored.

    Parameters
    ----------
    logits:
        Shape ``(N, C)`` unnormalized scores.
    targets:
        Shape ``(N,)`` integer class ids; positions equal to
        ``ignore_index`` contribute nothing (used for unmasked MLM slots).
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2 or targets.ndim != 1 or logits.shape[0] != targets.shape[0]:
        raise ValueError(f"bad shapes: logits {logits.shape}, targets {targets.shape}")
    keep = targets != ignore_index
    count = int(keep.sum())
    if count == 0:
        raise ValueError("all targets are ignore_index; nothing to average")
    log_probs = logits.log_softmax(axis=-1)
    rows = np.nonzero(keep)[0]
    picked = log_probs[rows, targets[keep]]
    return -picked.sum() * (1.0 / count)


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically stable mean BCE on raw logits.

    Uses the identity ``bce = max(x, 0) - x*y + log(1 + exp(-|x|))``.
    """
    targets = np.asarray(targets, dtype=float)
    if logits.shape != targets.shape:
        raise ValueError(f"shape mismatch: {logits.shape} vs {targets.shape}")
    x = logits
    relu_x = x.relu()
    abs_x = (x * x) ** 0.5
    loss = relu_x - x * Tensor(targets) + ((-abs_x).exp() + 1.0).log()
    return loss.mean()


def mse(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    diff = pred - Tensor(np.asarray(target, dtype=float))
    return (diff * diff).mean()


def accuracy(logits: Tensor, targets: np.ndarray,
             ignore_index: int = IGNORE_INDEX) -> float:
    """Fraction of non-ignored positions predicted correctly."""
    targets = np.asarray(targets, dtype=np.int64)
    keep = targets != ignore_index
    if not keep.any():
        return 0.0
    pred = logits.data.argmax(axis=-1)
    return float((pred[keep] == targets[keep]).mean())
