"""Multi-head self-attention with support for binary visibility masks.

The paper's equation (1) writes ``TabBiNAttention(Q, K, V) =
Attention(Q, K, V) · M`` where ``M`` is the visibility matrix.  As in
TUTA and standard masked transformers, the mask is applied to the
attention *logits* (scores set to -inf where ``M_ij = 0``) so the softmax
renormalizes over visible tokens only; multiplying probabilities after
softmax would leave rows unnormalized.  The visibility matrix itself is
built in :mod:`repro.core.visibility`.
"""

from __future__ import annotations

import numpy as np

from .layers import Dropout, Linear, Module
from .tensor import Tensor

_NEG_INF = -1e9


class MultiHeadSelfAttention(Module):
    """Standard scaled dot-product multi-head self-attention.

    Parameters
    ----------
    hidden:
        Model width; must be divisible by ``num_heads``.
    num_heads:
        Number of attention heads.
    dropout:
        Dropout applied to attention probabilities during training.
    """

    def __init__(self, hidden: int, num_heads: int, dropout: float = 0.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if hidden % num_heads != 0:
            raise ValueError(f"hidden ({hidden}) not divisible by heads ({num_heads})")
        rng = rng or np.random.default_rng(0)
        self.hidden = hidden
        self.num_heads = num_heads
        self.head_dim = hidden // num_heads
        self.q_proj = Linear(hidden, hidden, rng=rng)
        self.k_proj = Linear(hidden, hidden, rng=rng)
        self.v_proj = Linear(hidden, hidden, rng=rng)
        self.out_proj = Linear(hidden, hidden, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, S, H) -> (B, heads, S, head_dim)
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Attend within each sequence.

        Parameters
        ----------
        x:
            Input of shape ``(batch, seq, hidden)``.
        mask:
            Optional binary visibility matrix, shape ``(seq, seq)`` or
            ``(batch, seq, seq)``; entry 1 means *j is visible to i*.
        """
        if x.ndim != 3:
            raise ValueError(f"expected (batch, seq, hidden) input, got {x.shape}")
        batch, seq, _ = x.shape

        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            blocked = self._blocked(mask, batch, seq)
            scores = scores.masked_fill(blocked, _NEG_INF)
        probs = scores.softmax(axis=-1)
        probs = self.attn_dropout(probs)

        context = probs @ v  # (B, heads, S, head_dim)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.hidden)
        return self.out_proj(merged)

    def _blocked(self, mask: np.ndarray, batch: int, seq: int) -> np.ndarray:
        """Expand a visibility matrix to a (B, heads, S, S) blocked mask."""
        mask = np.asarray(mask)
        if mask.shape == (seq, seq):
            mask = np.broadcast_to(mask, (batch, seq, seq))
        elif mask.shape != (batch, seq, seq):
            raise ValueError(
                f"mask shape {mask.shape} incompatible with batch={batch}, seq={seq}"
            )
        blocked = mask == 0
        if blocked.all(axis=-1).any():
            raise ValueError("visibility matrix has a row with no visible token")
        return np.broadcast_to(blocked[:, None, :, :], (batch, self.num_heads, seq, seq))
