"""Neural network module system and basic layers.

Provides a light-weight analogue of ``torch.nn``: a :class:`Module` base
class with recursive parameter discovery, plus the layers the TabBiN
architecture needs (linear, embedding, layer norm, dropout).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, embedding_lookup


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` and :meth:`state_dict` discover them
    recursively in attribute order.
    """

    def __init__(self):
        self._parameters: dict[str, Tensor] = {}
        self._modules: dict[str, Module] = {}
        self.training = True

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # -- parameter traversal ------------------------------------------------
    def named_parameters(self, prefix: str = ""):
        for name, param in self._parameters.items():
            yield (prefix + name, param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> list[Tensor]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar weights in the module tree."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- train / eval mode ---------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- (de)serialization ----------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{param.data.shape} vs {state[name].shape}"
                )
            param.data = state[name].astype(param.data.dtype).copy()

    # -- call protocol ---------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Parameter(Tensor):
    """A tensor registered as a trainable weight of a :class:`Module`."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class ModuleList(Module):
    """Hold an ordered list of submodules (registered for traversal)."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        name = str(len(self._items))
        self._modules[name] = module
        self._items.append(module)

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def __getitem__(self, i) -> Module:
        return self._items[i]


class Sequential(Module):
    """Apply submodules one after another."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = ModuleList(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class Linear(Module):
    """Affine map ``y = x W + b`` with Glorot-uniform initialization."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        bound = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Parameter(rng.uniform(-bound, bound, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Trainable lookup table mapping integer ids to vectors."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: np.random.Generator | None = None, scale: float = 0.02):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(rng.standard_normal((num_embeddings, dim)) * scale)
        self.num_embeddings = num_embeddings
        self.dim = dim

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return embedding_lookup(self.weight, indices)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))
        self.eps = eps
        self.dim = dim

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * (var + self.eps) ** -0.5
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity when :attr:`training` is ``False``."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1): {p}")
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)
