"""Checkpoint save/load for :class:`~repro.nn.layers.Module` trees.

Checkpoints are plain ``.npz`` archives mapping parameter paths to
arrays, plus an optional JSON metadata blob under the reserved key
``__meta__`` — portable and dependency-free.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .layers import Module

_META_KEY = "__meta__"


def save_checkpoint(module: Module, path: str | Path,
                    meta: dict | None = None) -> Path:
    """Write the module's state dict (and optional metadata) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    if _META_KEY in state:
        raise ValueError(f"parameter name collides with reserved key {_META_KEY}")
    payload = dict(state)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(module: Module, path: str | Path) -> dict:
    """Load parameters into ``module``; returns the stored metadata."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        meta_raw = archive[_META_KEY].tobytes().decode("utf-8") if _META_KEY in archive else "{}"
        state = {k: archive[k] for k in archive.files if k != _META_KEY}
    module.load_state_dict(state)
    return json.loads(meta_raw)
