"""Optimizers and learning-rate schedules."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base class holding a flat list of parameters."""

    def __init__(self, params: list[Tensor], lr: float):
        self.params = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum > 0.0:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba); the paper trains with lr 2e-5."""

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay > 0.0:
                # Decoupled weight decay (AdamW style).
                p.data -= self.lr * self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay enabled by default."""

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.01):
        super().__init__(params, lr, betas, eps, weight_decay)


class LinearWarmupSchedule:
    """Linear warmup to ``base_lr`` then linear decay to zero.

    Mirrors the BERT fine-tuning schedule used for the 50k-step
    pre-training runs in the paper.
    """

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int):
        if total_steps <= 0 or warmup_steps < 0 or warmup_steps > total_steps:
            raise ValueError("invalid schedule bounds")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self._step_count = 0

    def step(self) -> float:
        self._step_count += 1
        self.optimizer.lr = self.lr_at(self._step_count)
        return self.optimizer.lr

    def lr_at(self, step: int) -> float:
        if self.warmup_steps and step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        remaining = max(self.total_steps - step, 0)
        denom = max(self.total_steps - self.warmup_steps, 1)
        return self.base_lr * remaining / denom


def clip_grad_norm(params: list[Tensor], max_norm: float) -> float:
    """Scale gradients in place so the global L2 norm is at most
    ``max_norm``; returns the pre-clip norm."""
    total = 0.0
    grads = [p.grad for p in params if p.grad is not None]
    for g in grads:
        total += float((g * g).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for g in grads:
            g *= scale
    return norm
