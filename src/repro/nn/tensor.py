"""A small reverse-mode automatic differentiation engine on numpy.

This module is the foundation of the neural substrate used by the TabBiN
reproduction.  The execution environment has no PyTorch, so the paper's
transformer stack (multi-head attention with a visibility-matrix mask,
embedding layers, MLM/CLC heads, GRU/CNN metadata classifiers) is built on
top of this :class:`Tensor`.

The design follows the familiar define-by-run style: every operation
records a backward closure, and :meth:`Tensor.backward` runs a topological
sweep.  Broadcasting is fully supported; gradients flowing into a
broadcast operand are summed back to the operand's shape.
"""

from __future__ import annotations

import numpy as np

DEFAULT_DTYPE = np.float64


def _as_array(value, dtype=DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over the axes that were added or broadcast to reach it.

    If an operand of shape ``shape`` was broadcast to produce an output
    whose gradient is ``grad``, the operand's gradient is the sum of
    ``grad`` over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes numpy added on the left.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus gradient bookkeeping.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return self.data.item()

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    def _init_grad(self) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)

    def _accumulate(self, grad: np.ndarray) -> None:
        self._init_grad()
        self.grad += grad

    @staticmethod
    def _make(data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without gradient on non-scalar tensor")
            grad = np.ones_like(self.data)
        self._accumulate(_as_array(grad))

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data ** exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                if other.data.ndim == 1:
                    g = np.outer(grad, other.data) if grad.ndim == 1 else grad[..., None] * other.data
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    g = np.outer(self.data, grad) if grad.ndim == 1 else self.data[..., None] * grad
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0.0))

        return Tensor._make(out_data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation, as in BERT)."""
        c = np.sqrt(2.0 / np.pi)
        inner = c * (self.data + 0.044715 * self.data ** 3)
        t = np.tanh(inner)
        out_data = 0.5 * self.data * (1.0 + t)

        def backward(grad):
            if self.requires_grad:
                dinner = c * (1.0 + 3 * 0.044715 * self.data ** 2)
                dt = (1.0 - t ** 2) * dinner
                local = 0.5 * (1.0 + t) + 0.5 * self.data * dt
                self._accumulate(grad * local)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out, axis)
            mask = (self.data == out)
            # Split gradient between ties so the total is conserved.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(np.broadcast_to(g, self.shape) * mask / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]
        advanced = _is_advanced_index(idx)

        def backward(grad):
            if not self.requires_grad:
                return
            self._init_grad()
            if advanced:
                np.add.at(self.grad, idx, grad)
            else:
                self.grad[idx] += grad

        return Tensor._make(out_data, (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a tensor equal to ``self`` with ``value`` where ``mask``."""
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, value, self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(np.where(mask, 0.0, grad))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Numerically stable softmax family (primitive backward rules)
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        out_data = e / e.sum(axis=axis, keepdims=True)

        def backward(grad):
            if self.requires_grad:
                dot = (grad * out_data).sum(axis=axis, keepdims=True)
                self._accumulate(out_data * (grad - dot))

        return Tensor._make(out_data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_norm
        soft = np.exp(out_data)

        def backward(grad):
            if self.requires_grad:
                total = grad.sum(axis=axis, keepdims=True)
                self._accumulate(grad - soft * total)

        return Tensor._make(out_data, (self,), backward)


def _is_advanced_index(idx) -> bool:
    """True when ``idx`` uses integer-array (fancy) indexing anywhere."""
    items = idx if isinstance(idx, tuple) else (idx,)
    return any(isinstance(i, (list, np.ndarray)) for i in items)


# ----------------------------------------------------------------------
# Free functions
# ----------------------------------------------------------------------
def tensor(data, requires_grad: bool = False) -> Tensor:
    """Build a :class:`Tensor` from array-like data."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def randn(shape, rng: np.random.Generator, scale: float = 1.0,
          requires_grad: bool = False) -> Tensor:
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=requires_grad)


def concatenate(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                t._accumulate(grad[tuple(index)])

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        slices = np.split(grad, len(tensors), axis=axis)
        for t, g in zip(tensors, slices):
            if t.requires_grad:
                t._accumulate(np.squeeze(g, axis=axis))

    return Tensor._make(data, tuple(tensors), backward)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``weight[indices]`` with scatter-add backward."""
    indices = np.asarray(indices, dtype=np.int64)
    out_data = weight.data[indices]

    def backward(grad):
        if weight.requires_grad:
            weight._init_grad()
            np.add.at(weight.grad, indices, grad)

    return Tensor._make(out_data, (weight,), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select: ``a`` where ``condition`` else ``b``."""
    condition = np.asarray(condition, dtype=bool)
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(_unbroadcast(np.where(condition, grad, 0.0), a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(np.where(condition, 0.0, grad), b.shape))

    return Tensor._make(out_data, (a, b), backward)
