"""1-D convolution layers (im2col formulation) for the CNN metadata
classifier described in Section 2.3 of the paper."""

from __future__ import annotations

import numpy as np

from .layers import Module, Parameter
from .tensor import Tensor


class Conv1d(Module):
    """1-D convolution over ``(batch, seq, channels)`` with 'same' padding.

    Implemented as an im2col gather followed by a single matmul so the
    autograd engine differentiates it without a custom backward rule.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd for 'same' padding")
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel_size
        bound = np.sqrt(6.0 / (fan_in + out_channels))
        self.weight = Parameter(
            rng.uniform(-bound, bound, (kernel_size * in_channels, out_channels))
        )
        self.bias = Parameter(np.zeros(out_channels))
        self.kernel_size = kernel_size
        self.in_channels = in_channels
        self.out_channels = out_channels

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3:
            raise ValueError(f"expected (batch, seq, channels), got {x.shape}")
        batch, seq, channels = x.shape
        if channels != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {channels}")
        pad = self.kernel_size // 2
        # Gather indices for each window position, clamping into a zero
        # border: build an index over a zero-padded copy of the input.
        padded = _zero_pad_seq(x, pad)
        positions = np.arange(seq)[:, None] + np.arange(self.kernel_size)[None, :]
        windows = padded[:, positions.reshape(-1), :]
        windows = windows.reshape(batch, seq, self.kernel_size * channels)
        return windows @ self.weight + self.bias


def _zero_pad_seq(x: Tensor, pad: int) -> Tensor:
    """Pad the sequence axis of ``(batch, seq, channels)`` with zeros."""
    from .tensor import concatenate, zeros

    if pad == 0:
        return x
    batch, _, channels = x.shape
    zero_block = zeros((batch, pad, channels))
    return concatenate([zero_block, x, zero_block], axis=1)


class GlobalMaxPool1d(Module):
    """Max over the sequence axis of ``(batch, seq, channels)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.max(axis=1)


class GlobalAvgPool1d(Module):
    """Mean over the sequence axis of ``(batch, seq, channels)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=1)
