"""GRU recurrent layers.

The paper trains "binary metadata classifiers based on Deep-learning
bi-GRU and CNN architectures" to label multi-layer horizontal/vertical
metadata (Section 2.3, citing [40]).  This module provides the GRU half
of that substrate.
"""

from __future__ import annotations

import numpy as np

from . import tensor as T
from .layers import Linear, Module
from .tensor import Tensor


class GRUCell(Module):
    """Single gated recurrent unit step.

    Uses the standard formulation:
    ``z = sigma(W_z x + U_z h)``, ``r = sigma(W_r x + U_r h)``,
    ``n = tanh(W_n x + r * U_n h)``, ``h' = (1 - z) * n + z * h``.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.x_z = Linear(input_dim, hidden_dim, rng=rng)
        self.h_z = Linear(hidden_dim, hidden_dim, bias=False, rng=rng)
        self.x_r = Linear(input_dim, hidden_dim, rng=rng)
        self.h_r = Linear(hidden_dim, hidden_dim, bias=False, rng=rng)
        self.x_n = Linear(input_dim, hidden_dim, rng=rng)
        self.h_n = Linear(hidden_dim, hidden_dim, bias=False, rng=rng)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        z = (self.x_z(x) + self.h_z(h)).sigmoid()
        r = (self.x_r(x) + self.h_r(h)).sigmoid()
        n = (self.x_n(x) + r * self.h_n(h)).tanh()
        return (1.0 - z) * n + z * h


class GRU(Module):
    """Unrolled unidirectional GRU over a ``(batch, seq, input)`` tensor."""

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.cell = GRUCell(input_dim, hidden_dim, rng=rng)
        self.hidden_dim = hidden_dim

    def forward(self, x: Tensor, reverse: bool = False) -> Tensor:
        """Return all hidden states, shape ``(batch, seq, hidden)``."""
        if x.ndim != 3:
            raise ValueError(f"expected (batch, seq, input), got {x.shape}")
        batch, seq, _ = x.shape
        h = T.zeros((batch, self.hidden_dim))
        steps = range(seq - 1, -1, -1) if reverse else range(seq)
        outputs: list[Tensor] = [None] * seq
        for t in steps:
            h = self.cell(x[:, t, :], h)
            outputs[t] = h
        return T.stack(outputs, axis=1)

    def last_state(self, x: Tensor) -> Tensor:
        """Final hidden state, shape ``(batch, hidden)``."""
        return self.forward(x)[:, -1, :]


class BiGRU(Module):
    """Bidirectional GRU; concatenates forward and backward states."""

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.forward_gru = GRU(input_dim, hidden_dim, rng=rng)
        self.backward_gru = GRU(input_dim, hidden_dim, rng=rng)
        self.hidden_dim = hidden_dim

    def forward(self, x: Tensor) -> Tensor:
        """All states, shape ``(batch, seq, 2 * hidden)``."""
        fwd = self.forward_gru(x)
        bwd = self.backward_gru(x, reverse=True)
        return T.concatenate([fwd, bwd], axis=-1)

    def pooled(self, x: Tensor) -> Tensor:
        """Sequence representation: mean over time of the bi-states."""
        return self.forward(x).mean(axis=1)
