"""Transformer encoder blocks (post-layer-norm, BERT style)."""

from __future__ import annotations

import numpy as np

from .attention import MultiHeadSelfAttention
from .layers import Dropout, LayerNorm, Linear, Module, ModuleList
from .tensor import Tensor


class FeedForward(Module):
    """Position-wise two-layer MLP with GELU activation."""

    def __init__(self, hidden: int, intermediate: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.fc1 = Linear(hidden, intermediate, rng=rng)
        self.fc2 = Linear(intermediate, hidden, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.fc1(x).gelu())


class TransformerEncoderLayer(Module):
    """One encoder block: masked self-attention + FFN, each with residual
    connection and post-layer-norm as in BERT_BASE."""

    def __init__(self, hidden: int, num_heads: int, intermediate: int,
                 dropout: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.attention = MultiHeadSelfAttention(hidden, num_heads, dropout, rng=rng)
        self.attn_norm = LayerNorm(hidden)
        self.ffn = FeedForward(hidden, intermediate, rng=rng)
        self.ffn_norm = LayerNorm(hidden)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        attended = self.dropout(self.attention(x, mask))
        x = self.attn_norm(x + attended)
        fed = self.dropout(self.ffn(x))
        return self.ffn_norm(x + fed)


class TransformerEncoder(Module):
    """Stack of :class:`TransformerEncoderLayer`.

    This is the shared encoder trunk used by TabBiN, the TUTA-like
    baseline, the BioBERT-like baseline, and the DITTO-like matcher; they
    differ in their embedding layers and attention masks.
    """

    def __init__(self, num_layers: int, hidden: int, num_heads: int,
                 intermediate: int, dropout: float = 0.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.layers = ModuleList(
            TransformerEncoderLayer(hidden, num_heads, intermediate, dropout, rng=rng)
            for _ in range(num_layers)
        )
        self.hidden = hidden
        self.num_layers = num_layers

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, mask)
        return x
