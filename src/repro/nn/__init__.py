"""Neural substrate: numpy autograd, transformer, GRU/CNN, optimizers.

The execution environment has no deep-learning framework, so the paper's
entire model stack is built on this package.  Public surface:

- :class:`~repro.nn.tensor.Tensor` and free functions (``concatenate``,
  ``stack``, ``embedding_lookup``, ``where``, ``zeros`` ...)
- layers: :class:`Module`, :class:`Linear`, :class:`Embedding`,
  :class:`LayerNorm`, :class:`Dropout`, :class:`Sequential`
- :class:`MultiHeadSelfAttention` with visibility-mask support
- :class:`TransformerEncoder` / :class:`TransformerEncoderLayer`
- :class:`GRU` / :class:`BiGRU`, :class:`Conv1d` for metadata classifiers
- optimizers: :class:`SGD`, :class:`Adam`, :class:`AdamW`,
  :class:`LinearWarmupSchedule`, :func:`clip_grad_norm`
- losses: :func:`cross_entropy`, :func:`binary_cross_entropy_with_logits`
- checkpoints: :func:`save_checkpoint`, :func:`load_checkpoint`
"""

from .attention import MultiHeadSelfAttention
from .cnn import Conv1d, GlobalAvgPool1d, GlobalMaxPool1d
from .layers import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    Parameter,
    Sequential,
)
from .losses import (
    IGNORE_INDEX,
    accuracy,
    binary_cross_entropy_with_logits,
    cross_entropy,
    mse,
)
from .optim import SGD, Adam, AdamW, LinearWarmupSchedule, Optimizer, clip_grad_norm
from .rnn import GRU, BiGRU, GRUCell
from .serialize import load_checkpoint, save_checkpoint
from .tensor import (
    Tensor,
    concatenate,
    embedding_lookup,
    ones,
    randn,
    stack,
    tensor,
    where,
    zeros,
)
from .transformer import FeedForward, TransformerEncoder, TransformerEncoderLayer

__all__ = [
    "Tensor", "tensor", "zeros", "ones", "randn", "concatenate", "stack",
    "embedding_lookup", "where",
    "Module", "Parameter", "ModuleList", "Sequential", "Linear", "Embedding",
    "LayerNorm", "Dropout",
    "MultiHeadSelfAttention", "FeedForward", "TransformerEncoder",
    "TransformerEncoderLayer",
    "GRUCell", "GRU", "BiGRU", "Conv1d", "GlobalMaxPool1d", "GlobalAvgPool1d",
    "Optimizer", "SGD", "Adam", "AdamW", "LinearWarmupSchedule", "clip_grad_norm",
    "IGNORE_INDEX", "cross_entropy", "binary_cross_entropy_with_logits", "mse",
    "accuracy",
    "save_checkpoint", "load_checkpoint",
]
