"""The catalog manifest: named indexes behind one serving process.

A *catalog* is a version-controlled ``catalog.json`` that names saved
indexes — table-level and column-level, several corpora, several model
checkpoints — so one server can front all of them and route queries by
name::

    {
      "catalog_version": 1,
      "entries": [
        {"name": "tables",  "path": "tables",  "kind": "table",
         "model_id": "3f9a...", "default": true},
        {"name": "columns", "path": "columns", "kind": "column",
         "model_id": "3f9a...", "default": false}
      ]
    }

Paths are resolved against the directory holding ``catalog.json``
(absolute paths pass through), so a catalog directory that contains its
index layouts is fully relocatable — ``git mv`` the directory and it
still serves.

Validation follows the same discipline as
:meth:`~repro.index.backends.ShardedDirBackend.load`: anything wrong
with the manifest — bad JSON, a newer ``catalog_version``, missing or
mistyped fields, duplicate names, an unknown ``kind``, two defaults —
surfaces as **one clear ValueError** naming the file and the problem,
never a KeyError/TypeError traceback.  A missing file raises
``FileNotFoundError`` (the "no catalog here" case callers turn into a
hint), mirroring :func:`~repro.index.open_index`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

#: File that marks a directory as a catalog.
CATALOG_NAME = "catalog.json"

#: Version stamp of the catalog schema.  Newer catalogs are rejected
#: with a clear error instead of being silently mis-read.
CATALOG_VERSION = 1


def _bad(where: str | Path, problem: str) -> ValueError:
    return ValueError(f"{where}: {problem}")


@dataclass
class CatalogEntry:
    """One named index in a catalog.

    ``path`` is the saved layout (single ``.npz`` or sharded directory)
    relative to the catalog directory, or absolute.  ``path=None`` marks
    an *in-memory* entry (a bare index handed straight to the server);
    such entries cannot be persisted.  ``model_id`` is the embedder
    checkpoint stamp the entry's vectors are expected to come from —
    when both it and the opened index's stamp are known they must agree,
    which is what lets an A/B deployment trust ``GET /healthz``.
    """

    name: str
    path: str | None
    kind: str
    model_id: str | None = None
    default: bool = False
    #: Manifest-level generation stamp: bumped every time the entry is
    #: replaced in place (``catalog add --replace``), so anything that
    #: cached results against the old layout — a warm client, a CDN, a
    #: downstream service — can detect the swap without opening the
    #: index.  Additive field, absent in older manifests (read as 0).
    generation: int = 0

    def to_params(self) -> dict:
        """The JSON shape stored in ``catalog.json``."""
        return {"name": self.name, "path": self.path, "kind": self.kind,
                "model_id": self.model_id, "default": self.default,
                "generation": self.generation}

    @classmethod
    def from_params(cls, params: object, where: str | Path,
                    position: int) -> "CatalogEntry":
        """Validate one manifest entry; every failure is one clear
        ValueError naming the file and the entry position."""
        label = f"entry {position}"
        if not isinstance(params, dict):
            raise _bad(where, f"{label} must be an object, got "
                              f"{type(params).__name__}")
        name = params.get("name")
        if not isinstance(name, str) or not name:
            raise _bad(where, f"{label} needs a non-empty string 'name'")
        path = params.get("path")
        if not isinstance(path, str) or not path:
            raise _bad(where, f"entry {name!r} needs a non-empty string "
                              f"'path'")
        kind = params.get("kind")
        if not isinstance(kind, str):
            raise _bad(where, f"entry {name!r} needs a string 'kind'")
        from repro.index import index_class

        try:
            index_class(kind)
        except ValueError as error:
            raise _bad(where, f"entry {name!r}: {error}") from None
        model_id = params.get("model_id")
        if model_id is not None and not isinstance(model_id, str):
            raise _bad(where, f"entry {name!r}: 'model_id' must be a "
                              f"string or null")
        default = params.get("default", False)
        if not isinstance(default, bool):
            raise _bad(where, f"entry {name!r}: 'default' must be a "
                              f"boolean")
        generation = params.get("generation", 0)
        if (not isinstance(generation, int) or isinstance(generation, bool)
                or generation < 0):
            raise _bad(where, f"entry {name!r}: 'generation' must be a "
                              f"nonnegative integer")
        return cls(name=name, path=path, kind=kind, model_id=model_id,
                   default=default, generation=generation)


class Catalog:
    """An ordered set of named :class:`CatalogEntry` objects.

    ``root`` is the directory relative entry paths resolve against —
    the directory of the loaded ``catalog.json``, or ``None`` for a
    purely in-memory catalog (entry paths must then be absolute or
    the entries pre-opened by the caller).
    """

    def __init__(self, entries: list[CatalogEntry] | tuple = (),
                 root: str | Path | None = None):
        self.root = None if root is None else Path(root)
        self.entries: dict[str, CatalogEntry] = {}
        for entry in entries:
            self.add(entry)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, entry: CatalogEntry) -> None:
        """Add one entry; duplicate names and second defaults are
        rejected (the invariants `load` enforces hold for built
        catalogs too)."""
        if entry.name in self.entries:
            raise ValueError(f"catalog already has an entry named "
                             f"{entry.name!r}")
        if entry.default and any(e.default for e in self.entries.values()):
            current = next(e.name for e in self.entries.values() if e.default)
            raise ValueError(f"catalog already has a default entry "
                             f"({current!r}); only one entry may be the "
                             f"default")
        self.entries[entry.name] = entry

    def replace(self, entry: CatalogEntry) -> int:
        """Swap an existing entry for ``entry`` (same name), stamping
        the replacement's generation one past the old entry's — the
        manifest-level lifecycle bump.  Default status carries over
        unless the replacement claims it.  Returns the new generation."""
        old = self.entries.get(entry.name)
        if old is None:
            raise KeyError(entry.name)
        entry.generation = old.generation + 1
        entry.default = entry.default or old.default
        self.entries[entry.name] = entry
        if entry.default:
            # Claiming the default demotes the previous holder (one
            # default only — the same invariant `add` enforces).
            self.set_default(entry.name)
        return entry.generation

    def set_default(self, name: str) -> str | None:
        """Make ``name`` the explicit default; returns the previous
        explicit default's name (or ``None``)."""
        if name not in self.entries:
            raise KeyError(name)
        previous = next((e.name for e in self.entries.values() if e.default),
                        None)
        for entry in self.entries.values():
            entry.default = entry.name == name
        return previous

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries.values())

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    @property
    def default_name(self) -> str | None:
        """The explicit default entry's name, else the first entry's
        (insertion order), else ``None`` for an empty catalog."""
        for entry in self.entries.values():
            if entry.default:
                return entry.name
        return next(iter(self.entries), None)

    def resolve_path(self, entry: CatalogEntry) -> Path:
        """The on-disk location of ``entry`` (relative paths resolve
        against the catalog directory)."""
        if entry.path is None:
            raise ValueError(f"entry {entry.name!r} is in-memory only "
                             f"(no path to resolve)")
        path = Path(entry.path)
        if path.is_absolute() or self.root is None:
            return path
        return self.root / path

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @staticmethod
    def handles(path: str | Path) -> bool:
        """Whether ``path`` looks like a catalog: a directory holding
        ``catalog.json``, or the manifest file itself.  The marker is
        unambiguous, so `serve` sniffs this before the index backends."""
        path = Path(path)
        return ((path / CATALOG_NAME).is_file()
                or (path.name == CATALOG_NAME and path.is_file()))

    @classmethod
    def load(cls, path: str | Path) -> "Catalog":
        """Load and validate a ``catalog.json`` (or the directory
        holding one)."""
        path = Path(path)
        if path.is_dir():
            path = path / CATALOG_NAME
        if not path.is_file():
            raise FileNotFoundError(f"no catalog at {path}")
        try:
            manifest = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise _bad(path, f"not valid JSON: {error}") from None
        if not isinstance(manifest, dict):
            raise _bad(path, "the catalog must be a JSON object")
        version = manifest.get("catalog_version", 1)
        if not isinstance(version, int) or version < 1:
            raise _bad(path, "'catalog_version' must be a positive integer")
        if version > CATALOG_VERSION:
            raise _bad(path, f"uses catalog v{version}; this build reads "
                             f"up to v{CATALOG_VERSION}")
        raw_entries = manifest.get("entries")
        if not isinstance(raw_entries, list):
            raise _bad(path, "missing the required 'entries' list — the "
                             "catalog is inconsistent (partial write or "
                             "hand edit?)")
        catalog = cls(root=path.parent)
        for position, params in enumerate(raw_entries):
            entry = CatalogEntry.from_params(params, path, position)
            try:
                catalog.add(entry)
            except ValueError as error:
                raise _bad(path, str(error)) from None
        return catalog

    def save(self, path: str | Path | None = None) -> Path:
        """Write ``catalog.json`` (stable key order, indented — the
        format is meant to live under version control).  ``path`` may
        be a directory or the manifest file; defaults to the catalog's
        own root."""
        if path is None:
            if self.root is None:
                raise ValueError("an in-memory catalog has no root; pass "
                                 "an explicit path to save")
            path = self.root
        path = Path(path)
        if path.name != CATALOG_NAME:
            path = path / CATALOG_NAME
        for entry in self.entries.values():
            if entry.path is None:
                raise ValueError(f"entry {entry.name!r} is in-memory only "
                                 f"and cannot be persisted")
        path.parent.mkdir(parents=True, exist_ok=True)
        manifest = {"catalog_version": CATALOG_VERSION,
                    "entries": [entry.to_params()
                                for entry in self.entries.values()]}
        path.write_text(json.dumps(manifest, indent=2) + "\n")
        return path
