"""Catalog layer: one process, many named indexes.

A :class:`Catalog` is a version-controlled ``catalog.json`` manifest of
named index entries (table-level, column-level, per-corpus,
per-checkpoint); a :class:`CatalogHandle` opens those entries lazily
(memory-mapped), LRU-evicts them under a configurable cap, and gives
each its own micro-batch dispatcher so the retrieval server can route
``POST /query`` traffic by index name — see :mod:`repro.serve`.
"""

from .catalog import CATALOG_NAME, CATALOG_VERSION, Catalog, CatalogEntry
from .handles import CatalogHandle, IndexSlot, IndexStats

__all__ = [
    "Catalog", "CatalogEntry", "CATALOG_NAME", "CATALOG_VERSION",
    "CatalogHandle", "IndexSlot", "IndexStats",
]
