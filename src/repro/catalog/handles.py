"""Lazy, LRU-bounded open handles over a catalog's indexes.

:class:`CatalogHandle` is what the retrieval server actually holds: it
maps every catalog entry to an :class:`IndexSlot` and opens entries
only when a query routes to them (``open_index(mmap=True)`` makes that
cheap — no vector data is read).  An optional ``max_open`` cap bounds
how many indexes are resident at once: exceeding it evicts the
least-recently-used *idle* slot.  Because opens are memory-mapped,
eviction is purely a cache decision — a reopened index returns
bit-identical rankings to its first open (property-tested), so the cap
trades reopen latency for memory and nothing else.

Each slot gets its **own** :class:`~repro.serve.dispatcher.
MicroBatchDispatcher`, created with the index on first use: distinct
indexes never share batch ticks, so one entry's traffic can never ride
(or delay) another's GEMM, and per-index batch shapes stay observable.
The dispatcher binds the open index object, so it lives and dies with
the open handle; the slot's :class:`IndexStats` survives eviction,
which is how ``/stats`` can report lifetime opens/evictions/queries
per entry.

Everything here runs on the server's event-loop thread (the same
single-writer discipline as :class:`~repro.serve.stats.ServerStats`),
so no locks are needed.

**Per-process by construction.**  Under pre-fork serving
(``serve --workers N``, :mod:`repro.serve.prefork`) every worker
builds its own ``CatalogHandle`` *after* the fork, so slots,
dispatchers, result caches, LRU-eviction state, and counters are all
strictly per-worker: a cache entry populated in one worker is never
visible in another, one worker's eviction decision cannot close a
sibling's index, and dispatcher queues never interleave queries from
two processes.  Nothing in this module is fork-aware and nothing needs
to be — there is no shared mutable state to protect.  What *is* shared
across workers is the read-only layer underneath: the mmapped shard
files, whose pages the kernel cache keeps resident exactly once for
the whole fleet.  Pinned by ``tests/catalog/test_worker_isolation.py``.
"""

from __future__ import annotations

from pathlib import Path

from repro.cache import (DEFAULT_CACHE_SIZE, CacheCounters,
                         validate_cache_params)

from .catalog import Catalog, CatalogEntry


class IndexStats:
    """Lifetime per-entry counters; survives eviction/reopen cycles.

    ``cache`` is the entry's :class:`~repro.cache.engine.CacheCounters`:
    it lives *here* rather than on the cache engine so hit/miss/bypass
    tallies survive eviction (the engine itself is dropped with the
    index — each reopen gets a cold cache but warm counters).  The
    invariant the soak tests pin: ``exact_hits + semantic_hits + misses
    + bypassed == queries_total``."""

    __slots__ = ("requests_total", "queries_total", "opens", "evictions",
                 "batches_dispatched", "max_batch_size", "_batch_size_sum",
                 "cache")

    def __init__(self):
        self.requests_total = 0
        self.queries_total = 0
        self.opens = 0
        self.evictions = 0
        self.batches_dispatched = 0
        self.max_batch_size = 0
        self._batch_size_sum = 0
        self.cache = CacheCounters()

    def record_queries(self, n: int) -> None:
        """One routed request carrying ``n`` queries."""
        self.requests_total += 1
        self.queries_total += n

    def record_batch(self, size: int) -> None:
        """One micro-batch tick dispatched for this entry (the slot's
        dispatcher calls this — the ``stats`` duck type it expects)."""
        self.batches_dispatched += 1
        self._batch_size_sum += size
        self.max_batch_size = max(self.max_batch_size, size)

    def snapshot(self) -> dict:
        return {
            "requests": self.requests_total,
            "queries": self.queries_total,
            "opens": self.opens,
            "evictions": self.evictions,
            "batch": {
                "dispatched": self.batches_dispatched,
                "mean_size": (self._batch_size_sum / self.batches_dispatched
                              if self.batches_dispatched else None),
                "max_size": self.max_batch_size or None,
            },
            "cache": self.cache.snapshot(),
        }


class _BatchStatsFanout:
    """Forward ``record_batch`` to the slot's own stats *and* the
    server-wide :class:`~repro.serve.stats.ServerStats` — global batch
    shapes keep meaning "all ticks" while per-index shapes separate."""

    __slots__ = ("sinks",)

    def __init__(self, *sinks):
        self.sinks = [sink for sink in sinks if sink is not None]

    def record_batch(self, size: int) -> None:
        for sink in self.sinks:
            sink.record_batch(size)


class IndexSlot:
    """One catalog entry's runtime state: open index + dispatcher +
    result-cache engine when resident, ``None`` when closed; stats
    always.  Cache, dispatcher and index share one lifetime — eviction
    drops all three together, so a stale cache can never outlive (or
    precede) the index object its entries were computed against."""

    __slots__ = ("entry", "stats", "index", "dispatcher", "cache",
                 "last_used", "pinned")

    def __init__(self, entry: CatalogEntry, pinned: bool = False):
        self.entry = entry
        self.stats = IndexStats()
        self.index = None
        self.dispatcher = None
        self.cache = None
        self.last_used = 0
        self.pinned = pinned

    @property
    def name(self) -> str:
        return self.entry.name

    @property
    def open(self) -> bool:
        return self.index is not None

    @property
    def busy(self) -> bool:
        """Whether the slot's dispatcher has queries pending or ticks in
        flight — a busy slot must never be evicted out from under them."""
        return (self.dispatcher is not None
                and (self.dispatcher.n_pending > 0
                     or self.dispatcher.n_inflight > 0))


class CatalogHandle:
    """Open/evict/route façade over a :class:`Catalog`.

    Parameters
    ----------
    catalog:
        The validated catalog to serve.  Must have at least one entry.
    mmap:
        How entries are opened (``open_index(..., mmap=...)``).  The
        default ``True`` is what makes lazy opens and eviction cheap.
    max_open:
        Cap on concurrently open *unpinned* entries; ``None`` means
        unbounded.  When exceeded, the least-recently-used idle slot is
        evicted; if every other open slot is busy, the cap is exceeded
        temporarily rather than evicting under in-flight work.
    quantized:
        Opt every opened entry into the int8 prefilter tier
        (``open_index(..., quantized=True)`` semantics: an entry whose
        layout lacks the sidecar fails its open with the retrofit
        hint).  ``overfetch``/``margin`` tune the shortlist size; both
        are only meaningful with ``quantized=True``.
    """

    def __init__(self, catalog: Catalog, *, mmap: bool = True,
                 max_open: int | None = None, quantized: bool = False,
                 overfetch: int | None = None, margin: int | None = None):
        if max_open is not None and max_open < 1:
            raise ValueError(f"max_open must be at least 1, got {max_open}")
        if overfetch is not None and overfetch < 1:
            raise ValueError(f"overfetch must be at least 1, got {overfetch}")
        if margin is not None and margin < 0:
            raise ValueError(f"margin must be at least 0, got {margin}")
        if not len(catalog):
            raise ValueError("catalog has no entries; add one with "
                             "`catalog add` before serving")
        self.catalog = catalog
        self.mmap = mmap
        self.max_open = max_open
        self.quantized = quantized
        self.overfetch = overfetch
        self.margin = margin
        self.slots: dict[str, IndexSlot] = {
            entry.name: IndexSlot(entry) for entry in catalog}
        self._clock = 0
        self._dispatch_kwargs: dict = {}
        self._cache_kwargs: dict = {"max_entries": DEFAULT_CACHE_SIZE,
                                    "ttl": None}
        self._batch_sink = None

    @property
    def cache_enabled(self) -> bool:
        """Whether slots get a result cache when opened.  Distinct from
        a *closed* slot's ``cache is None`` — counters of an evicted
        slot are still meaningful when this is True."""
        return self._cache_kwargs["max_entries"] >= 1

    @classmethod
    def for_index(cls, index, name: str = "default") -> "CatalogHandle":
        """Wrap one already-open index as a single-entry catalog — the
        bare-path ``serve`` mode, preserving the one-index server's
        behaviour exactly.  The slot is *pinned*: it was handed to us
        open with no path to reopen from, so it is never evicted."""
        entry = CatalogEntry(name=name, path=None, kind=index.kind,
                             model_id=index.model_id, default=True)
        catalog = Catalog.__new__(Catalog)
        catalog.root = None
        catalog.entries = {name: entry}
        handle = cls(catalog)
        slot = handle.slots[name]
        slot.pinned = True
        slot.index = index
        return handle

    # ------------------------------------------------------------------
    # Dispatcher wiring
    # ------------------------------------------------------------------
    def configure_dispatch(self, *, stats=None, max_batch: int = 32,
                           max_wait_ms: float = 2.0,
                           jobs: int | None = None,
                           cache_size: int = DEFAULT_CACHE_SIZE,
                           cache_ttl: float | None = None,
                           max_backlog: int | None = None) -> None:
        """Set the knobs every per-slot dispatcher (and result-cache
        engine) is created with, plus an optional server-wide
        batch-stats sink.  ``cache_size`` is the per-tier entry bound
        for each index's cache — 0 disables caching entirely;
        ``cache_ttl`` expires entries after that many seconds.
        ``max_backlog`` bounds each slot's pending queue (backpressure:
        overflow raises ``BacklogFull`` → 429); ``None`` is unbounded.
        Validates eagerly (the same checks ``MicroBatchDispatcher`` and
        ``TTLCache`` make) so a bad configuration fails at server
        construction, not at the first query."""
        from repro.serve.dispatcher import validate_dispatch_params

        validate_dispatch_params(max_batch=max_batch,
                                 max_wait_ms=max_wait_ms, jobs=jobs,
                                 max_backlog=max_backlog)
        validate_cache_params(cache_size, cache_ttl)
        self._dispatch_kwargs = {"max_batch": max_batch,
                                 "max_wait_ms": max_wait_ms, "jobs": jobs,
                                 "max_backlog": max_backlog}
        self._cache_kwargs = {"max_entries": cache_size, "ttl": cache_ttl}
        self._batch_sink = stats

    def _make_engine(self, slot: IndexSlot):
        """A fresh cache engine for a just-opened slot (``None`` when
        caching is disabled).  Counters come from the slot's stats so
        they accumulate across eviction/reopen cycles; the cache
        *contents* start cold on every open — an engine never outlives
        the index object it fingerprinted."""
        from repro.cache import CachedQueryEngine

        if self._cache_kwargs["max_entries"] < 1:
            return None
        return CachedQueryEngine(slot.index, counters=slot.stats.cache,
                                 **self._cache_kwargs)

    def _make_dispatcher(self, slot: IndexSlot):
        # Runtime import: repro.serve sits *above* repro.catalog in the
        # layering (the server imports this module), so importing it at
        # module scope here would be circular.  By the time a dispatcher
        # is actually needed both packages are fully initialised.
        from repro.serve.dispatcher import MicroBatchDispatcher

        return MicroBatchDispatcher(
            slot.index,
            stats=_BatchStatsFanout(slot.stats, self._batch_sink),
            engine=slot.cache,
            **self._dispatch_kwargs)

    # ------------------------------------------------------------------
    # Lookup / open / evict
    # ------------------------------------------------------------------
    @property
    def default_name(self) -> str:
        return self.catalog.default_name

    def __len__(self) -> int:
        return len(self.slots)

    def __iter__(self):
        return iter(self.slots.values())

    def open_slots(self) -> list[IndexSlot]:
        return [slot for slot in self.slots.values() if slot.open]

    def get(self, name: str | None = None) -> IndexSlot:
        """The slot for ``name`` (``None`` → the default entry), opened.

        Raises ``KeyError`` for a name the catalog does not know (the
        server's 404), and lets open failures (missing/corrupt layout,
        checkpoint mismatch) propagate as the clear errors
        ``open_index`` produces."""
        if name is None:
            name = self.default_name
        slot = self.slots.get(name)
        if slot is None:
            raise KeyError(name)
        if not slot.open:
            self._open(slot)
        if slot.dispatcher is None:
            slot.cache = self._make_engine(slot)
            slot.dispatcher = self._make_dispatcher(slot)
        self._clock += 1
        slot.last_used = self._clock
        self._evict_over_cap(keep=slot)
        return slot

    def _open(self, slot: IndexSlot) -> None:
        from repro.index import open_index

        entry = slot.entry
        index = open_index(self.catalog.resolve_path(entry), mmap=self.mmap)
        if self.quantized:
            # After the open, so a missing sidecar surfaces as the
            # clear enable_quantized error (with the retrofit hint)
            # rather than a failed open of an otherwise-good layout.
            index.enable_quantized(overfetch=self.overfetch,
                                   margin=self.margin)
        if index.kind != entry.kind:
            raise ValueError(
                f"catalog entry {entry.name!r} says kind {entry.kind!r} but "
                f"{self.catalog.resolve_path(entry)} holds a {index.kind!r} "
                f"index — the catalog is stale (re-run `catalog add`)")
        if (entry.model_id is not None and index.model_id is not None
                and entry.model_id != index.model_id):
            raise ValueError(
                f"catalog entry {entry.name!r} expects checkpoint "
                f"{entry.model_id!r} but the saved index was built from "
                f"{index.model_id!r} — the catalog is stale (re-run "
                f"`catalog add`)")
        slot.index = index
        slot.stats.opens += 1

    def _evict_over_cap(self, keep: IndexSlot) -> None:
        if self.max_open is None:
            return
        while True:
            resident = [slot for slot in self.slots.values()
                        if slot.open and not slot.pinned]
            if len(resident) <= self.max_open:
                return
            candidates = [slot for slot in resident
                          if slot is not keep and not slot.busy]
            if not candidates:
                # Every other resident slot has in-flight work; run over
                # cap until their ticks finish rather than evict an
                # index a GEMM is still reading.
                return
            self._evict(min(candidates, key=lambda slot: slot.last_used))

    def _evict(self, slot: IndexSlot) -> None:
        # Index, dispatcher and cache go together: a cache keyed
        # against this open's id space must not survive into the next
        # open (counters live on slot.stats and do survive).
        slot.index = None
        slot.dispatcher = None
        slot.cache = None
        slot.stats.evictions += 1

    def evict(self, name: str) -> bool:
        """Explicitly close one entry (tests, admin).  Returns whether
        it was evicted — pinned, busy, and already-closed slots are
        left alone."""
        slot = self.slots[name]
        if not slot.open or slot.pinned or slot.busy:
            return False
        self._evict(slot)
        return True
