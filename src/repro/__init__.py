"""TabBiN reproduction: structure-aware embeddings for tables with
bi-dimensional hierarchical metadata and nesting (EDBT 2025).

Subpackages
-----------
``repro.nn``         numpy autograd + transformer/GRU/CNN substrate
``repro.text``       tokenizer, vocabulary, unit lexicon, type inference
``repro.tables``     BiN table model: values, metadata trees, coordinates
``repro.metadata``   bi-GRU / CNN metadata classifiers and heuristics
``repro.core``       the TabBiN model, pre-training, composite embeddings
``repro.baselines``  TUTA-like, BioBERT-like, Word2Vec, DITTO-like, LLM+RAG
``repro.retrieval``  LSH blocking, cosine top-k, cluster formation
``repro.index``      batched embedding store + persistent table/column indexes
``repro.eval``       MAP/MRR/F1 metrics and the CC/TC/EC task runners
``repro.datasets``   synthetic corpus generators for the five datasets
"""

__version__ = "1.0.0"
