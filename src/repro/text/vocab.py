"""Vocabulary with the special tokens used by TabBiN serialization.

The paper adds ``[CLS]`` at the start of each row/column, ``[SEP]``
between cells, masks tokens with ``[MASK]`` for MLM, and tokenizes
numbers with the special token ``[VAL]`` (Section 3.1, "Token").
"""

from __future__ import annotations

import json
from pathlib import Path

PAD, UNK, CLS, SEP, MASK, VAL = "[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]", "[VAL]"
SPECIAL_TOKENS = (PAD, UNK, CLS, SEP, MASK, VAL)


class Vocabulary:
    """Bidirectional token <-> id mapping; ids are dense from zero."""

    def __init__(self, tokens: list[str] | None = None):
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for token in SPECIAL_TOKENS:
            self.add(token)
        for token in tokens or []:
            self.add(token)

    def add(self, token: str) -> int:
        """Insert ``token`` if new; return its id either way."""
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        idx = len(self._id_to_token)
        self._token_to_id[token] = idx
        self._id_to_token.append(token)
        return idx

    def id(self, token: str) -> int:
        """Id of ``token``, falling back to ``[UNK]``."""
        return self._token_to_id.get(token, self._token_to_id[UNK])

    def token(self, idx: int) -> str:
        return self._id_to_token[idx]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __iter__(self):
        return iter(self._id_to_token)

    # Convenience ids used throughout serialization and pre-training.
    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[CLS]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[SEP]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[MASK]

    @property
    def val_id(self) -> int:
        return self._token_to_id[VAL]

    def special_ids(self) -> set[int]:
        return {self._token_to_id[t] for t in SPECIAL_TOKENS}

    # -- persistence -----------------------------------------------------
    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self._id_to_token))

    @classmethod
    def load(cls, path: str | Path) -> "Vocabulary":
        tokens = json.loads(Path(path).read_text())
        if list(tokens[: len(SPECIAL_TOKENS)]) != list(SPECIAL_TOKENS):
            raise ValueError("vocabulary file does not start with the special tokens")
        vocab = cls()
        for token in tokens[len(SPECIAL_TOKENS):]:
            vocab.add(token)
        return vocab
