"""Semantic type inference with exactly 14 supported types.

Section 3.1 ("Type Inference"): the paper tags chemicals, diseases,
medication types, drugs via scispaCy, generic entities (names, places,
measurements) via spaCy, and numeric / range / text via regex — "The
type inference mapping has a finite set of size T = 14", and "All tokens
in a cell get the same type".

This module reproduces that contract offline: regexes classify numeric
shapes (number, range, gaussian, percent, date) and gazetteers classify
entities; anything unknown is ``text``.
"""

from __future__ import annotations

import re

from .gazetteers import GAZETTEERS

#: The 14 supported types, in fixed id order (T = 14 in the paper).
TYPE_NAMES = (
    "text",          # 0 - fallback
    "number",        # 1 - plain numeric value
    "range",         # 2 - numeric range, e.g. 20-30
    "gaussian",      # 3 - mean +/- spread, e.g. 12.3 +/- 4.5
    "percent",       # 4 - percentage
    "date",          # 5 - calendar date or year
    "person",        # 6
    "place",         # 7
    "organization",  # 8
    "disease",       # 9 - includes symptoms
    "drug",          # 10
    "vaccine",       # 11
    "treatment",     # 12
    "measurement",   # 13 - named quantities (overall survival, crime rate ...)
)
NUM_TYPES = len(TYPE_NAMES)
TYPE_TO_ID = {name: i for i, name in enumerate(TYPE_NAMES)}

_NUMBER_RE = re.compile(r"^\s*[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?\s*[%\w]*\s*$")
_PERCENT_RE = re.compile(r"^\s*[+-]?\d+(\.\d+)?\s*(%|percent)\s*$", re.IGNORECASE)
_RANGE_RE = re.compile(
    r"^\s*[+-]?\d+(\.\d+)?\s*(-|–|—|to)\s*[+-]?\d+(\.\d+)?\s*[%\w]*\s*$",
    re.IGNORECASE,
)
_GAUSSIAN_RE = re.compile(
    r"^\s*[+-]?\d+(\.\d+)?\s*(±|\+/-)\s*\d+(\.\d+)?\s*[%\w]*\s*$"
    r"|^\s*[+-]?\d+(\.\d+)?\s*\(\s*sd\s*[:=]?\s*\d+(\.\d+)?\s*\)\s*$",
    re.IGNORECASE,
)
_YEAR_RE = re.compile(r"^\s*(19|20)\d{2}\s*$")
_DATE_RE = re.compile(
    r"^\s*(\d{4}-\d{2}-\d{2}|\d{1,2}/\d{1,2}/\d{2,4}"
    r"|(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\.?\s+\d{1,2}"
    r"(\s*,?\s*\d{4})?)\s*$",
    re.IGNORECASE,
)


class TypeInference:
    """Map cell text to one of the 14 semantic types.

    Gazetteer entries can be extended per corpus, mirroring the paper's
    "custom list of named-entities ... for our datasets".
    """

    def __init__(self, extra_gazetteers: dict[str, tuple[str, ...]] | None = None):
        self._gazetteer: dict[str, str] = {}
        merged: dict[str, tuple[str, ...]] = {k: tuple(v) for k, v in GAZETTEERS.items()}
        for type_name, phrases in (extra_gazetteers or {}).items():
            if type_name not in TYPE_TO_ID:
                raise ValueError(f"unknown type name: {type_name}")
            merged[type_name] = merged.get(type_name, ()) + tuple(phrases)
        for type_name, phrases in merged.items():
            for phrase in phrases:
                self._gazetteer[phrase.lower()] = type_name

    def infer(self, text: str) -> str:
        """Type name for a cell's raw text."""
        stripped = text.strip()
        if not stripped:
            return "text"
        lowered = stripped.lower()
        entity = self._gazetteer.get(lowered)
        if entity is not None:
            return entity
        if _PERCENT_RE.match(stripped):
            return "percent"
        if _GAUSSIAN_RE.match(stripped):
            return "gaussian"
        if _RANGE_RE.match(stripped) and not _DATE_RE.match(stripped):
            return "range"
        if _YEAR_RE.match(stripped) or _DATE_RE.match(stripped):
            return "date"
        if _NUMBER_RE.match(stripped) and any(c.isdigit() for c in stripped):
            return "number"
        # Fall back to a token-level gazetteer scan for multi-word cells.
        for phrase, type_name in self._gazetteer.items():
            if " " in phrase and phrase in lowered:
                return type_name
        return "text"

    def infer_id(self, text: str) -> int:
        """Type id (0..13) for a cell's raw text."""
        return TYPE_TO_ID[self.infer(text)]
