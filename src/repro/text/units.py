"""Unit lexicon and detection.

Section 3.1 ("Units and Nesting") encodes cell features as an 8-bit
one-hot vector in the order ``[stats, length, weight, capacity, time,
temperature, pressure, nested]`` — seven unit categories plus a nesting
bit.  This module owns the unit categories and the string → category
lookup used both by value parsing and by the synthetic generators.
"""

from __future__ import annotations

import re

#: Order matters — it fixes the bit layout of the cell-feature vector.
UNIT_CATEGORIES = (
    "stats", "length", "weight", "capacity", "time", "temperature", "pressure",
)
NESTED_FEATURE = "nested"
CELL_FEATURE_ORDER = UNIT_CATEGORIES + (NESTED_FEATURE,)
NUM_CELL_FEATURES = len(CELL_FEATURE_ORDER)  # F = 8 in the paper

#: Canonical unit string -> category.
_UNIT_TABLE: dict[str, str] = {}


def _register(category: str, *aliases: str) -> None:
    for alias in aliases:
        _UNIT_TABLE[alias] = category


_register("stats", "%", "percent", "pct", "mean", "median", "sd", "iqr", "ci",
          "ratio", "rate", "hr", "or", "rr", "p")
_register("length", "mm", "cm", "m", "km", "in", "inch", "inches", "ft",
          "feet", "mi", "mile", "miles", "yd")
_register("weight", "mcg", "ug", "mg", "g", "kg", "lb", "lbs", "ton", "tons",
          "oz")
_register("capacity", "ml", "dl", "l", "liter", "liters", "gal", "gallon",
          "gallons", "cc", "fl oz")
_register("time", "ms", "s", "sec", "secs", "min", "mins", "h", "hour",
          "hours", "day", "days", "week", "weeks", "month", "months", "yr",
          "yrs", "year", "years")
_register("temperature", "\N{DEGREE SIGN}c", "\N{DEGREE SIGN}f", "celsius",
          "fahrenheit", "kelvin")
_register("pressure", "mmhg", "pa", "kpa", "atm", "bar", "psi", "torr")

_UNIT_SUFFIX_RE = re.compile(
    r"^\s*[+-]?\d+(?:\.\d+)?\s*(?P<unit>[%\w\N{DEGREE SIGN}]+(?:\s?oz)?)\s*$"
)

#: Aliases that are too ambiguous to classify without a number in front
#: (e.g. a lone "p" or "m" in a text cell).
_AMBIGUOUS = {"p", "m", "s", "in", "g", "l", "or", "hr"}


def unit_category(unit: str | None) -> str | None:
    """Map a unit string to one of :data:`UNIT_CATEGORIES` (or ``None``)."""
    if not unit:
        return None
    return _UNIT_TABLE.get(unit.strip().lower())


def canonical_units(category: str) -> list[str]:
    """All unit spellings registered under ``category``."""
    if category not in UNIT_CATEGORIES:
        raise ValueError(f"unknown unit category: {category}")
    return sorted(u for u, c in _UNIT_TABLE.items() if c == category)


def detect_trailing_unit(text: str) -> tuple[str | None, str | None]:
    """Find a unit attached to a number, e.g. ``"20.3 months"``.

    Returns ``(unit_string, category)``; both ``None`` when no known unit
    trails the number.
    """
    match = _UNIT_SUFFIX_RE.match(text)
    if not match:
        return None, None
    unit = match.group("unit").lower()
    category = _UNIT_TABLE.get(unit)
    if category is None:
        return None, None
    return unit, category


def is_known_unit(token: str, standalone: bool = False) -> bool:
    """Whether ``token`` is a registered unit spelling.

    With ``standalone=True``, single-letter aliases that collide with
    ordinary words are rejected.
    """
    token = token.strip().lower()
    if standalone and token in _AMBIGUOUS:
        return False
    return token in _UNIT_TABLE


def feature_bits(unit_cat: str | None, nested: bool) -> list[int]:
    """8-bit cell feature vector in the paper's fixed order."""
    bits = [0] * NUM_CELL_FEATURES
    if unit_cat is not None:
        bits[CELL_FEATURE_ORDER.index(unit_cat)] = 1
    if nested:
        bits[-1] = 1
    return bits
