"""Curated gazetteers shared by type inference and the synthetic corpora.

The paper uses scispaCy [60] plus a custom named-entity list (vaccines,
treatments, therapies, prescriptions) and spaCy's ``en_core_web_sm`` for
generic entities.  Offline, we replace both with these curated lists: the
synthetic generators draw surface forms from them, and
:mod:`repro.text.types` looks entities up in them — giving the same
interface (14 semantic types) and the same failure mode (unknown
strings fall back to ``text``).
"""

from __future__ import annotations

DISEASES = (
    "colorectal cancer", "colon cancer", "rectal cancer", "breast cancer",
    "lung cancer", "melanoma", "leukemia", "lymphoma", "covid-19",
    "influenza", "pneumonia", "diabetes", "hypertension", "asthma",
    "hepatitis", "tuberculosis", "malaria", "anemia", "sepsis",
    "metastatic carcinoma", "adenocarcinoma", "polyposis", "colitis",
    "crohn disease", "sars-cov-2 infection",
)

DRUGS = (
    "ramucirumab", "bevacizumab", "cetuximab", "panitumumab", "oxaliplatin",
    "irinotecan", "fluoropyrimidine", "fluorouracil", "capecitabine",
    "leucovorin", "regorafenib", "aflibercept", "pembrolizumab",
    "nivolumab", "trastuzumab", "remdesivir", "dexamethasone", "paxlovid",
    "molnupiravir", "aspirin", "metformin", "ibuprofen", "paracetamol",
    "hydroxychloroquine", "azithromycin",
)

VACCINES = (
    "moderna", "pfizer", "biontech", "covaxin", "sputnik v", "sinovac",
    "astrazeneca", "janssen", "novavax", "covishield", "mrna-1273",
    "bnt162b2", "ad26.cov2.s", "nvx-cov2373",
)

TREATMENTS = (
    "chemotherapy", "radiotherapy", "immunotherapy", "surgery",
    "folfox", "folfiri", "xelox", "targeted therapy", "hormone therapy",
    "palliative care", "adjuvant therapy", "neoadjuvant therapy",
    "stem cell transplant", "dialysis", "ventilation", "oxygen therapy",
    "monoclonal antibody therapy", "booster dose",
)

SYMPTOMS = (
    "fever", "cough", "fatigue", "headache", "nausea", "vomiting",
    "diarrhea", "dyspnea", "anosmia", "myalgia", "sore throat",
    "weight loss", "abdominal pain", "rectal bleeding",
)

PERSON_FIRST = (
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "sam",
    "paul", "anna", "maria", "peter", "laura", "kevin", "emma",
)

PERSON_LAST = (
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "clark", "lewis",
)

PLACES = (
    "new york", "los angeles", "chicago", "houston", "phoenix",
    "philadelphia", "san antonio", "san diego", "dallas", "tallahassee",
    "tampa", "miami", "atlanta", "boston", "seattle", "denver", "london",
    "paris", "berlin", "madrid", "rome", "tokyo", "florida", "texas",
    "california", "georgia", "ohio", "virginia", "arizona", "colorado",
)

ORGANIZATIONS = (
    "florida state university", "university of south florida", "harvard",
    "stanford", "mit", "oxford", "cambridge", "mayo clinic", "nih", "cdc",
    "who", "fda", "pfizer inc", "moderna inc", "real madrid", "barcelona",
    "manchester united", "juventus", "bayern munich", "yankees", "dodgers",
    "red sox", "rolling stone", "forbes", "national geographic", "vogue",
    "time magazine",
)

MEASUREMENTS = (
    "overall survival", "progression free survival", "hazard ratio",
    "odds ratio", "response rate", "median age", "body mass index",
    "blood pressure", "heart rate", "tumor size", "dosage", "efficacy",
    "incidence rate", "mortality rate", "case fatality rate",
    "vaccination rate", "crime rate", "population", "median income",
    "unemployment rate", "enrollment", "attendance", "gdp",
)

CRIMES = (
    "murder", "robbery", "burglary", "larceny", "arson", "assault",
    "motor vehicle theft", "rape", "violent crime", "property crime",
    "fraud", "vandalism",
)

MUSIC_GENRES = (
    "rock", "pop", "jazz", "blues", "hip hop", "country", "classical",
    "electronic", "reggae", "folk", "metal", "soul", "punk", "disco",
)

#: Mapping used by the generators to stamp gold entity types, and by type
#: inference to recover them.  Keys are type names from
#: :mod:`repro.text.types`.
GAZETTEERS: dict[str, tuple[str, ...]] = {
    "disease": DISEASES + SYMPTOMS,
    "drug": DRUGS,
    "vaccine": VACCINES,
    "treatment": TREATMENTS,
    "person": tuple(f"{f} {l}" for f, l in zip(PERSON_FIRST, PERSON_LAST))
    + PERSON_FIRST,
    "place": PLACES,
    "organization": ORGANIZATIONS,
    "measurement": MEASUREMENTS + CRIMES + MUSIC_GENRES,
}
