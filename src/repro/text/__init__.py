"""Text substrate: tokenizer, vocabulary, units, semantic types."""

from .gazetteers import GAZETTEERS
from .tokenizer import WordPieceTokenizer, is_number_token, pretokenize
from .types import NUM_TYPES, TYPE_NAMES, TYPE_TO_ID, TypeInference
from .units import (
    CELL_FEATURE_ORDER,
    NUM_CELL_FEATURES,
    UNIT_CATEGORIES,
    canonical_units,
    detect_trailing_unit,
    feature_bits,
    is_known_unit,
    unit_category,
)
from .vocab import CLS, MASK, PAD, SEP, SPECIAL_TOKENS, UNK, VAL, Vocabulary

__all__ = [
    "Vocabulary", "SPECIAL_TOKENS", "PAD", "UNK", "CLS", "SEP", "MASK", "VAL",
    "WordPieceTokenizer", "pretokenize", "is_number_token",
    "TypeInference", "TYPE_NAMES", "TYPE_TO_ID", "NUM_TYPES",
    "UNIT_CATEGORIES", "CELL_FEATURE_ORDER", "NUM_CELL_FEATURES",
    "unit_category", "canonical_units", "detect_trailing_unit",
    "is_known_unit", "feature_bits",
    "GAZETTEERS",
]
