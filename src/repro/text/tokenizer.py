"""WordPiece-style subword tokenizer.

The paper tokenizes cells "using [22]" (BERT's WordPiece) over the
BioBERT vocabulary.  BioBERT's vocabulary is unavailable offline, so we
train an equivalent WordPiece vocabulary directly on our corpora:
characters seed the vocabulary, pairs are merged by the WordPiece score
``freq(ab) / (freq(a) * freq(b))``, and encoding is greedy
longest-match-first with ``##`` continuation pieces.

Numbers are replaced by the special ``[VAL]`` token at encode time, as in
Section 3.1 ("The numbers are tokenized using the special token [VAL]");
their numeric features are carried by the E_num embedding instead.
"""

from __future__ import annotations

import re
from collections import Counter

from .vocab import UNK, VAL, Vocabulary

_WORD_RE = re.compile(r"[a-z0-9]+(?:\.[0-9]+)?|[^\sa-z0-9]", re.IGNORECASE)
_NUMBER_RE = re.compile(r"^[+-]?(\d+\.?\d*|\.\d+)$")


def pretokenize(text: str) -> list[str]:
    """Lowercase and split into words / numbers / punctuation marks."""
    return _WORD_RE.findall(text.lower())


def is_number_token(token: str) -> bool:
    return bool(_NUMBER_RE.match(token))


class WordPieceTokenizer:
    """Greedy longest-match WordPiece encoder over a trained vocabulary."""

    def __init__(self, vocab: Vocabulary, max_word_chars: int = 32):
        self.vocab = vocab
        self.max_word_chars = max_word_chars

    # -- encoding -------------------------------------------------------
    def tokenize(self, text: str, numbers_to_val: bool = True) -> list[str]:
        """Split ``text`` into WordPiece tokens (strings)."""
        pieces: list[str] = []
        for word in pretokenize(text):
            if numbers_to_val and is_number_token(word):
                pieces.append(VAL)
                continue
            pieces.extend(self._wordpiece(word))
        return pieces

    def encode(self, text: str, numbers_to_val: bool = True) -> list[int]:
        """Token ids for ``text``."""
        return [self.vocab.id(piece) for piece in self.tokenize(text, numbers_to_val)]

    def decode(self, ids: list[int]) -> str:
        """Best-effort inverse of :meth:`encode` (joins ## pieces)."""
        words: list[str] = []
        for idx in ids:
            token = self.vocab.token(idx)
            if token.startswith("##") and words:
                words[-1] += token[2:]
            else:
                words.append(token)
        return " ".join(words)

    def _wordpiece(self, word: str) -> list[str]:
        if len(word) > self.max_word_chars:
            return [UNK]
        pieces: list[str] = []
        start = 0
        while start < len(word):
            end = len(word)
            piece = None
            while end > start:
                candidate = word[start:end]
                if start > 0:
                    candidate = "##" + candidate
                if candidate in self.vocab:
                    piece = candidate
                    break
                end -= 1
            if piece is None:
                return [UNK]
            pieces.append(piece)
            start = end
        return pieces

    # -- training ---------------------------------------------------------
    @classmethod
    def train(cls, corpus: list[str], vocab_size: int = 2000,
              min_pair_freq: int = 2) -> "WordPieceTokenizer":
        """Learn a WordPiece vocabulary from raw texts.

        Numbers never enter the vocabulary (they encode as ``[VAL]``).
        """
        word_freqs: Counter[str] = Counter()
        for text in corpus:
            for word in pretokenize(text):
                if not is_number_token(word):
                    word_freqs[word] += 1

        # Seed with single characters (continuation and word-initial).
        splits = {
            word: [word[0]] + ["##" + ch for ch in word[1:]]
            for word in word_freqs
        }
        vocab_tokens: dict[str, None] = {}
        for pieces in splits.values():
            for piece in pieces:
                vocab_tokens.setdefault(piece, None)

        while len(vocab_tokens) < vocab_size:
            pair_freqs: Counter[tuple[str, str]] = Counter()
            piece_freqs: Counter[str] = Counter()
            for word, freq in word_freqs.items():
                pieces = splits[word]
                for piece in pieces:
                    piece_freqs[piece] += freq
                for a, b in zip(pieces, pieces[1:]):
                    pair_freqs[(a, b)] += freq
            if not pair_freqs:
                break
            best_pair, best_score = None, 0.0
            for (a, b), freq in pair_freqs.items():
                if freq < min_pair_freq:
                    continue
                score = freq / (piece_freqs[a] * piece_freqs[b])
                if score > best_score:
                    best_pair, best_score = (a, b), score
            if best_pair is None:
                break
            merged = best_pair[0] + best_pair[1].removeprefix("##")
            vocab_tokens.setdefault(merged, None)
            a, b = best_pair
            for word, pieces in splits.items():
                out: list[str] = []
                i = 0
                while i < len(pieces):
                    if i + 1 < len(pieces) and pieces[i] == a and pieces[i + 1] == b:
                        out.append(merged)
                        i += 2
                    else:
                        out.append(pieces[i])
                        i += 1
                splits[word] = out

        return cls(Vocabulary(sorted(vocab_tokens)))
