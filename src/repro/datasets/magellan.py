"""ER-Magellan-style entity-matching pair datasets (Table 9).

The paper compares TabBiN's classification head against DITTO on the
structured Amazon-Google and Abt-Buy benchmarks [43] plus labeled pairs
from its own corpora.  Those benchmarks are not available offline, so we
generate product catalogs with the same construction: positive pairs are
string-perturbed duplicates of one record (abbreviations, token drops,
case changes, price jitter); negatives pair distinct records, half of
them hard negatives from the same category.

Records are serialized DITTO-style: ``COL <attr> VAL <value> ...``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_SOFTWARE = (
    ("adobe", "photoshop elements", "photo editing"),
    ("adobe", "acrobat professional", "pdf tools"),
    ("microsoft", "office small business", "productivity"),
    ("microsoft", "windows server", "operating systems"),
    ("intuit", "quickbooks premier", "accounting"),
    ("intuit", "turbotax deluxe", "tax software"),
    ("symantec", "norton antivirus", "security"),
    ("mcafee", "internet security suite", "security"),
    ("apple", "final cut express", "video editing"),
    ("corel", "wordperfect office", "productivity"),
    ("sage", "peachtree accounting", "accounting"),
    ("roxio", "easy media creator", "media tools"),
)

_ELECTRONICS = (
    ("sony", "bravia lcd hdtv", "televisions"),
    ("samsung", "plasma hdtv", "televisions"),
    ("panasonic", "viera hdtv", "televisions"),
    ("canon", "powershot digital camera", "cameras"),
    ("nikon", "coolpix digital camera", "cameras"),
    ("bose", "acoustimass speaker system", "audio"),
    ("jbl", "home cinema speakers", "audio"),
    ("garmin", "nuvi gps navigator", "navigation"),
    ("tomtom", "one gps device", "navigation"),
    ("logitech", "harmony remote", "accessories"),
    ("denon", "av receiver", "audio"),
    ("pioneer", "elite receiver", "audio"),
)

_CATALOGS = {"amazon-google": _SOFTWARE, "abt-buy": _ELECTRONICS}


@dataclass(frozen=True)
class EntityPair:
    """One labeled match/mismatch example."""

    left: str
    right: str
    label: int  # 1 = match


def serialize_record(brand: str, name: str, category: str,
                     price: float) -> str:
    """DITTO-style attribute serialization."""
    return (f"COL brand VAL {brand} COL name VAL {name} "
            f"COL category VAL {category} COL price VAL {price:.2f}")


def _perturb(rng: np.random.Generator, brand: str, name: str,
             category: str, price: float) -> tuple[str, str, str, float]:
    """A plausible duplicate of the same real-world product."""
    tokens = name.split()
    roll = rng.random()
    if roll < 0.3 and len(tokens) > 1:
        tokens = tokens[:-1]                       # drop trailing token
    elif roll < 0.5:
        tokens = [t[:4] if len(t) > 4 else t for t in tokens]  # abbreviate
    elif roll < 0.7:
        tokens = tokens + [str(rng.integers(2005, 2011))]      # add edition
    name2 = " ".join(tokens)
    brand2 = brand if rng.random() < 0.7 else brand[:3]
    price2 = round(price * float(rng.uniform(0.92, 1.08)), 2)
    return brand2, name2, category, price2


def generate_em_dataset(name: str, n_pairs: int = 200,
                        seed: int = 0) -> list[EntityPair]:
    """Balanced labeled pairs for one EM benchmark.

    ``n_pairs`` counts positives; an equal number of negatives is added
    (mirroring the paper's 5k/5k, 1.5k/1.5k, 400/400 splits at scale).
    """
    catalog = _CATALOGS.get(name)
    if catalog is None:
        raise KeyError(f"unknown EM dataset {name!r}; options: {sorted(_CATALOGS)}")
    rng = np.random.default_rng(seed)
    pairs: list[EntityPair] = []

    for _ in range(n_pairs):
        brand, pname, category = catalog[int(rng.integers(len(catalog)))]
        price = float(rng.uniform(20, 900))
        left = serialize_record(brand, pname, category, price)
        right = serialize_record(*_perturb(rng, brand, pname, category, price))
        pairs.append(EntityPair(left, right, 1))

    for _ in range(n_pairs):
        i, j = rng.choice(len(catalog), size=2, replace=False)
        b1, n1, c1 = catalog[int(i)]
        if rng.random() < 0.5:   # hard negative: same category if possible
            same = [k for k, item in enumerate(catalog)
                    if item[2] == c1 and k != int(i)]
            if same:
                j = rng.choice(same)
        b2, n2, c2 = catalog[int(j)]
        left = serialize_record(b1, n1, c1, float(rng.uniform(20, 900)))
        right = serialize_record(b2, n2, c2, float(rng.uniform(20, 900)))
        pairs.append(EntityPair(left, right, 0))

    rng.shuffle(pairs)
    return pairs


def entity_pairs_from_corpus(tables, n_pairs: int = 120,
                             seed: int = 0) -> list[EntityPair]:
    """Labeled pairs from a generated corpus's entity catalog.

    Positives pair two gold entities of the same type with perturbed
    context; negatives pair entities of different types — the
    construction used for "our datasets" in Table 9.
    """
    from ..eval.tasks import collect_entities

    entities = collect_entities(tables)
    by_type: dict[str, list[str]] = {}
    for e in entities:
        by_type.setdefault(e.entity_type, []).append(e.text)
    by_type = {t: v for t, v in by_type.items() if len(v) >= 2}
    if len(by_type) < 2:
        raise ValueError("corpus has too few typed entities for EM pairs")
    rng = np.random.default_rng(seed)
    types = sorted(by_type)
    pairs: list[EntityPair] = []
    for _ in range(n_pairs):
        t = types[int(rng.integers(len(types)))]
        a, b = rng.choice(by_type[t], size=2, replace=len(by_type[t]) < 2)
        pairs.append(EntityPair(f"COL entity VAL {a} COL type VAL {t}",
                                f"COL entity VAL {b} COL type VAL {t}", 1))
    for _ in range(n_pairs):
        t1, t2 = rng.choice(types, size=2, replace=False)
        a = str(rng.choice(by_type[t1]))
        b = str(rng.choice(by_type[t2]))
        pairs.append(EntityPair(f"COL entity VAL {a} COL type VAL {t1}",
                                f"COL entity VAL {b} COL type VAL {t2}", 0))
    rng.shuffle(pairs)
    return pairs
