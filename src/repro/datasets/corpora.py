"""The five simulated corpora (Section 2.2), scaled for CPU runs.

Each profile mirrors its corpus's documented structure:

- **Webtables** [46]: English web tables, avg 14.45 rows x 5.2 columns,
  mostly relational, topics incl. magazines, cities, universities,
  soccer clubs, regions, baseball players, music genres; strings and
  numbers with/without units and ranges.
- **CovidKG** (CORD-19 subset): COVID-19/vaccination tables with both
  VMD and HMD; strings, numbers with units, ranges, gaussians, nested
  tables; > 40% non-relational, ~10% nested.
- **CancerKG**: colorectal-cancer publication tables with hierarchical
  VMD and HMD; same value shapes; > 40% non-relational, ~10% nested.
- **SAUS** (2010 Statistical Abstract of the US): avg 52.5 rows x 17.7
  columns, finance / business / crime / agriculture / health topics —
  simulated with the largest shapes here, numeric-heavy.
- **CIUS** (Crime In the US): avg 68.4 rows x 12.7 columns, crime
  statistics, deep numeric tables with yearly VMD.

Table counts are scaled down (the paper uses 20,000-44,523 tables; the
default here is sized for CPU pre-training) — pass ``n_tables`` to grow
a corpus.  All generation is seeded and deterministic.
"""

from __future__ import annotations

from .generator import CorpusGenerator, DatasetProfile
from .schemas import DOMAIN_TOPICS

WEBTABLES = DatasetProfile(
    name="webtables",
    topics=DOMAIN_TOPICS["webtables"],
    n_tables=56,
    rows=(6, 14),
    extra_cols=(3, 5),
    p_vmd=0.05,
    p_hier_hmd=0.10,
    p_hier_vmd=0.0,
    p_nested=0.02,
    header_noise=0.35,
)

COVIDKG = DatasetProfile(
    name="covidkg",
    topics=DOMAIN_TOPICS["covidkg"],
    n_tables=50,
    rows=(4, 12),
    extra_cols=(3, 5),
    p_vmd=0.55,
    p_hier_hmd=0.45,
    p_hier_vmd=0.35,
    p_nested=0.10,
    header_noise=0.30,
)

CANCERKG = DatasetProfile(
    name="cancerkg",
    topics=DOMAIN_TOPICS["cancerkg"],
    n_tables=50,
    rows=(4, 12),
    extra_cols=(3, 5),
    p_vmd=0.55,
    p_hier_hmd=0.50,
    p_hier_vmd=0.40,
    p_nested=0.10,
    header_noise=0.30,
)

SAUS = DatasetProfile(
    name="saus",
    topics=DOMAIN_TOPICS["saus"],
    n_tables=40,
    rows=(10, 18),
    extra_cols=(4, 5),
    p_vmd=0.35,
    p_hier_hmd=0.30,
    p_hier_vmd=0.15,
    p_nested=0.0,
    header_noise=0.25,
)

CIUS = DatasetProfile(
    name="cius",
    topics=DOMAIN_TOPICS["cius"],
    n_tables=36,
    rows=(12, 20),
    extra_cols=(3, 4),
    p_vmd=0.45,
    p_hier_hmd=0.25,
    p_hier_vmd=0.15,
    p_nested=0.0,
    header_noise=0.25,
)

PROFILES: dict[str, DatasetProfile] = {
    p.name: p for p in (WEBTABLES, COVIDKG, CANCERKG, SAUS, CIUS)
}


def load_dataset(name: str, n_tables: int | None = None, seed: int = 0):
    """Generate one of the five corpora by name."""
    profile = PROFILES.get(name)
    if profile is None:
        raise KeyError(f"unknown dataset {name!r}; options: {sorted(PROFILES)}")
    if n_tables is not None:
        profile = profile.scaled(n_tables)
    return CorpusGenerator(profile, seed=seed).generate()
