"""Topic schemas: the vocabulary the synthetic corpora are built from.

Each of the five datasets (Section 2.2) is simulated by a set of *topic
schemas*.  A topic schema fixes the gold topic label (Table Clustering
ground truth), a pool of column concepts (Column Clustering ground
truth), caption templates, and a pool of vertical-metadata labels (the
row dimension of non-relational tables).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..text.gazetteers import (
    CRIMES,
    DISEASES,
    DRUGS,
    MUSIC_GENRES,
    ORGANIZATIONS,
    PERSON_FIRST,
    PERSON_LAST,
    PLACES,
    SYMPTOMS,
    TREATMENTS,
    VACCINES,
)

#: Unit pools by measurement flavour (spellings from the unit lexicon).
_TIME_UNITS = ("months", "days", "weeks", "years")
_WEIGHT_UNITS = ("mg", "kg", "g")
_LENGTH_UNITS = ("cm", "mm", "km")
_CAPACITY_UNITS = ("ml", "l")
_PRESSURE_UNITS = ("mmhg",)


@dataclass(frozen=True)
class Concept:
    """A column concept: the unit of Column Clustering ground truth.

    ``kind`` selects the value generator: ``entity`` draws surface forms
    from a gazetteer (stamping gold entity types used by EC), the numeric
    kinds draw numbers/ranges/gaussians with optional units, ``year``
    draws calendar years, ``text`` draws filler phrases.
    """

    name: str
    kind: str = "number"
    entity_type: str | None = None
    entity_pool: tuple[str, ...] = ()
    units: tuple[str, ...] = ()
    low: float = 0.0
    high: float = 100.0
    decimals: int = 1
    synonyms: tuple[str, ...] = ()

    def header_label(self, rng: np.random.Generator, noise: float) -> str:
        """Surface header text; with probability ``noise`` a synonym."""
        if self.synonyms and rng.random() < noise:
            return str(rng.choice(self.synonyms))
        return self.name

    def generate(self, rng: np.random.Generator) -> tuple[str, str | None]:
        """One cell: ``(text, gold_entity_type)``."""
        if self.kind == "entity":
            pool = self.entity_pool
            return str(rng.choice(pool)), self.entity_type
        if self.kind == "year":
            return str(int(rng.integers(1990, 2024))), None
        if self.kind == "text":
            pool = self.entity_pool or ("n/a", "pending", "confirmed", "unknown")
            return str(rng.choice(pool)), None
        value = self._draw(rng)
        unit = f" {rng.choice(self.units)}" if self.units else ""
        if self.kind == "percent":
            return f"{value} %", None
        if self.kind == "range":
            width = self._draw(rng, scale=0.3)
            hi = round(value + abs(width) + 10 ** -self.decimals, self.decimals)
            return f"{value}-{hi}{unit}", None
        if self.kind == "gaussian":
            std = round(abs(self._draw(rng, scale=0.2)) + 10 ** -self.decimals,
                        self.decimals)
            return f"{value} \N{PLUS-MINUS SIGN} {std}{unit}", None
        return f"{value}{unit}", None

    def _draw(self, rng: np.random.Generator, scale: float = 1.0):
        raw = rng.uniform(self.low, self.high) * scale
        if self.decimals == 0:
            return int(round(raw))
        return round(raw, self.decimals)

    @property
    def is_numeric(self) -> bool:
        return self.kind in ("number", "range", "gaussian", "percent")


@dataclass(frozen=True)
class TopicSchema:
    """Everything needed to generate tables of one topic."""

    topic: str
    concepts: tuple[Concept, ...]
    captions: tuple[str, ...]
    vmd_pool: tuple[str, ...] = ()
    vmd_groups: tuple[str, ...] = ()
    hmd_groups: tuple[str, ...] = ("Overview", "Details", "Outcomes")

    def caption(self, rng: np.random.Generator) -> str:
        template = str(rng.choice(self.captions))
        return template.format(place=rng.choice(PLACES), year=rng.integers(2000, 2024))


def _people() -> tuple[str, ...]:
    return tuple(f"{f} {l}" for f, l in zip(PERSON_FIRST, PERSON_LAST))


# ----------------------------------------------------------------------
# Web tables domain (magazines, cities, universities, soccer, players,
# regions, music genres) — Section 2.2's most frequent Webtables topics.
# ----------------------------------------------------------------------
WEBTABLES_TOPICS = (
    TopicSchema(
        topic="magazines",
        concepts=(
            Concept("magazine", "entity", "organization", ORGANIZATIONS,
                    synonyms=("publication", "title")),
            Concept("circulation", "number", low=10_000, high=2_000_000,
                    decimals=0, synonyms=("copies", "readers")),
            Concept("founded", "year", synonyms=("established",)),
            Concept("price", "number", low=1, high=20, decimals=2,
                    synonyms=("cover price",)),
            Concept("frequency", "text",
                    entity_pool=("weekly", "monthly", "quarterly", "daily")),
        ),
        captions=("List of magazines published in {place}",
                  "Popular magazines and their circulation"),
    ),
    TopicSchema(
        topic="cities",
        concepts=(
            Concept("city", "entity", "place", PLACES, synonyms=("town", "municipality")),
            Concept("population", "number", low=50_000, high=9_000_000, decimals=0,
                    synonyms=("inhabitants", "residents")),
            Concept("area", "number", units=("km",), low=20, high=1200,
                    decimals=1, synonyms=("surface",)),
            Concept("elevation", "number", units=("m",), low=0, high=2400,
                    decimals=0),
            Concept("founded", "year"),
        ),
        captions=("Largest cities of {place}", "Cities by population, {year}"),
    ),
    TopicSchema(
        topic="universities",
        concepts=(
            Concept("university", "entity", "organization", ORGANIZATIONS,
                    synonyms=("institution", "college")),
            Concept("enrollment", "number", low=1_000, high=70_000, decimals=0,
                    synonyms=("students",)),
            Concept("founded", "year", synonyms=("established",)),
            Concept("acceptance rate", "percent", low=4, high=80,
                    synonyms=("admission rate",)),
            Concept("tuition", "number", low=4_000, high=60_000, decimals=0),
        ),
        captions=("Universities in {place}", "University rankings {year}"),
    ),
    TopicSchema(
        topic="soccer clubs",
        concepts=(
            Concept("club", "entity", "organization", ORGANIZATIONS,
                    synonyms=("team",)),
            Concept("titles", "number", low=0, high=40, decimals=0,
                    synonyms=("trophies",)),
            Concept("stadium capacity", "number", low=10_000, high=99_000,
                    decimals=0, synonyms=("capacity",)),
            Concept("founded", "year"),
            Concept("manager", "entity", "person", _people(),
                    synonyms=("head coach", "coach")),
        ),
        captions=("Top soccer clubs of {place}", "League table {year}"),
    ),
    TopicSchema(
        topic="baseball players",
        concepts=(
            Concept("player", "entity", "person", _people(), synonyms=("name",)),
            Concept("batting average", "number", low=0.18, high=0.38, decimals=3),
            Concept("home runs", "number", low=0, high=60, decimals=0,
                    synonyms=("hr total",)),
            Concept("age", "range", low=19, high=40, decimals=0,
                    units=("years",), synonyms=("age range",)),
            Concept("team", "entity", "organization", ORGANIZATIONS),
        ),
        captions=("Baseball player statistics {year}",
                  "Batting leaders of {place}"),
    ),
    TopicSchema(
        topic="regions",
        concepts=(
            Concept("region", "entity", "place", PLACES, synonyms=("area name",)),
            Concept("population", "number", low=100_000, high=40_000_000,
                    decimals=0),
            Concept("gdp", "number", low=1, high=900, decimals=1,
                    synonyms=("gross product",)),
            Concept("unemployment", "percent", low=2, high=18,
                    synonyms=("jobless rate",)),
        ),
        captions=("Regions of {place} compared", "Regional indicators {year}"),
    ),
    TopicSchema(
        topic="music genres",
        concepts=(
            Concept("genre", "entity", "measurement", MUSIC_GENRES,
                    synonyms=("style",)),
            Concept("artists", "number", low=20, high=5_000, decimals=0),
            Concept("origin decade", "year", synonyms=("emerged",)),
            Concept("popularity", "percent", low=1, high=40,
                    synonyms=("share",)),
        ),
        captions=("Music genres by popularity", "Genre statistics {year}"),
    ),
)

# ----------------------------------------------------------------------
# CovidKG domain
# ----------------------------------------------------------------------
COVID_TOPICS = (
    TopicSchema(
        topic="vaccine efficacy",
        concepts=(
            Concept("vaccine", "entity", "vaccine", VACCINES,
                    synonyms=("vaccine name",)),
            Concept("efficacy", "percent", low=40, high=97,
                    synonyms=("effectiveness",)),
            Concept("dose", "number", units=_WEIGHT_UNITS, low=10, high=250,
                    decimals=0, synonyms=("dosage",)),
            Concept("interval", "range", units=("days", "weeks"), low=14,
                    high=60, decimals=0, synonyms=("dosing interval",)),
            Concept("antibody titer", "gaussian", low=100, high=2500,
                    decimals=0, synonyms=("titer",)),
        ),
        captions=("Vaccine efficacy against covid-19",
                  "Efficacy of vaccines in {place} trial {year}"),
        vmd_pool=("18-49 years", "50-64 years", "65+ years",
                  "immunocompromised", "healthcare workers", "pregnant"),
        vmd_groups=("Age Group", "Cohort"),
        hmd_groups=("Trial Arm", "Efficacy End Point", "Safety"),
    ),
    TopicSchema(
        topic="variant surveillance",
        concepts=(
            Concept("variant", "text",
                    entity_pool=("alpha variant", "beta variant", "gamma variant",
                                 "delta variant", "omicron variant"),
                    synonyms=("lineage",)),
            Concept("prevalence", "percent", low=0.5, high=90),
            Concept("transmissibility", "gaussian", low=1, high=9, decimals=1,
                    synonyms=("r number",)),
            Concept("first detected", "year"),
            Concept("cases", "number", low=100, high=900_000, decimals=0),
        ),
        captions=("SARS-CoV-2 variant surveillance, {place}",
                  "Variants of concern {year}"),
        vmd_pool=("wave 1", "wave 2", "wave 3", "winter surge", "summer lull"),
        vmd_groups=("Period",),
        hmd_groups=("Variant", "Epidemiology"),
    ),
    TopicSchema(
        topic="symptom prevalence",
        concepts=(
            Concept("symptom", "entity", "disease", SYMPTOMS,
                    synonyms=("clinical sign",)),
            Concept("prevalence", "percent", low=1, high=85,
                    synonyms=("frequency",)),
            Concept("onset", "range", units=("days",), low=1, high=14,
                    decimals=0, synonyms=("onset window",)),
            Concept("duration", "gaussian", units=("days",), low=2, high=21,
                    decimals=1),
        ),
        captions=("Symptom prevalence among covid-19 patients",
                  "Clinical presentation in {place} cohort"),
        vmd_pool=("outpatient", "hospitalized", "icu", "long covid"),
        vmd_groups=("Severity",),
        hmd_groups=("Symptom", "Course"),
    ),
    TopicSchema(
        topic="hospitalization outcomes",
        concepts=(
            Concept("treatment", "entity", "treatment", TREATMENTS),
            Concept("mortality", "percent", low=1, high=35,
                    synonyms=("death rate",)),
            Concept("length of stay", "gaussian", units=("days",), low=3,
                    high=30, decimals=1, synonyms=("los",)),
            Concept("oxygen saturation", "number", low=80, high=99,
                    decimals=0, synonyms=("spo2",)),
            Concept("blood pressure", "number", units=_PRESSURE_UNITS,
                    low=90, high=180, decimals=0),
        ),
        captions=("Hospitalization outcomes, {place} {year}",
                  "ICU outcomes for covid-19"),
        vmd_pool=("ward", "icu", "step-down", "discharged"),
        vmd_groups=("Unit",),
        hmd_groups=("Treatment", "Outcomes", "Vitals"),
    ),
    TopicSchema(
        topic="vaccination campaign",
        concepts=(
            Concept("region", "entity", "place", PLACES),
            Concept("doses administered", "number", low=10_000,
                    high=30_000_000, decimals=0, synonyms=("doses",)),
            Concept("coverage", "percent", low=10, high=95,
                    synonyms=("vaccination rate",)),
            Concept("booster uptake", "percent", low=5, high=70),
        ),
        captions=("Vaccination campaign progress in {place}",
                  "Vaccine rollout by region {year}"),
        vmd_pool=("q1", "q2", "q3", "q4"),
        vmd_groups=("Quarter",),
        hmd_groups=("Region", "Uptake"),
    ),
)

# ----------------------------------------------------------------------
# CancerKG domain
# ----------------------------------------------------------------------
CANCER_TOPICS = (
    TopicSchema(
        topic="treatment efficacy",
        concepts=(
            Concept("treatment", "entity", "treatment", TREATMENTS,
                    synonyms=("regimen", "therapy")),
            Concept("overall survival", "number", units=_TIME_UNITS, low=5,
                    high=40, decimals=1, synonyms=("os", "median os")),
            Concept("progression free survival", "number", units=_TIME_UNITS,
                    low=2, high=20, decimals=1, synonyms=("pfs",)),
            Concept("response rate", "percent", low=5, high=70,
                    synonyms=("orr", "objective response rate")),
            Concept("hazard ratio", "gaussian", low=0.4, high=1.4, decimals=2,
                    synonyms=("hr",)),
        ),
        captions=("Treatment efficacy in metastatic colorectal cancer",
                  "Efficacy end points, {place} trial {year}"),
        vmd_pool=("previously untreated",
                  "failing under fluoropyrimidine and irinotecan",
                  "second line", "third line", "maintenance"),
        vmd_groups=("Patient Cohort", "Line of Therapy"),
        hmd_groups=("Efficacy End Point", "Other Efficacy", "Safety"),
    ),
    TopicSchema(
        topic="adverse events",
        concepts=(
            Concept("drug", "entity", "drug", DRUGS, synonyms=("agent",)),
            Concept("grade 3 events", "percent", low=1, high=60,
                    synonyms=("grade 3-4",)),
            Concept("discontinuation", "percent", low=1, high=30),
            Concept("dose", "number", units=_WEIGHT_UNITS, low=5, high=500,
                    decimals=0, synonyms=("dosage",)),
            Concept("neutropenia", "percent", low=1, high=45),
        ),
        captions=("Adverse events by treatment arm",
                  "Safety profile, {place} study"),
        vmd_pool=("arm a", "arm b", "control", "experimental"),
        vmd_groups=("Study Arm",),
        hmd_groups=("Drug", "Toxicity"),
    ),
    TopicSchema(
        topic="patient demographics",
        concepts=(
            Concept("cohort", "text",
                    entity_pool=("colon", "rectal", "metastatic", "stage ii",
                                 "stage iii")),
            Concept("median age", "range", units=("years",), low=40, high=80,
                    decimals=0, synonyms=("age",)),
            Concept("male", "percent", low=30, high=70, synonyms=("male sex",)),
            Concept("bmi", "gaussian", low=18, high=35, decimals=1,
                    synonyms=("body mass index",)),
            Concept("enrollment", "number", low=40, high=1200, decimals=0,
                    synonyms=("n", "patients")),
        ),
        captions=("Baseline characteristics of study population",
                  "Patient demographics, {place} {year}"),
        vmd_pool=("treatment arm", "control arm", "overall"),
        vmd_groups=("Arm",),
        hmd_groups=("Characteristic", "Baseline"),
    ),
    TopicSchema(
        topic="biomarker analysis",
        concepts=(
            Concept("disease", "entity", "disease", DISEASES,
                    synonyms=("diagnosis",)),
            Concept("kras mutation", "percent", low=20, high=60,
                    synonyms=("kras",)),
            Concept("msi high", "percent", low=2, high=20, synonyms=("msi-h",)),
            Concept("cea level", "gaussian", low=1, high=60, decimals=1,
                    synonyms=("cea",)),
            Concept("tumor size", "number", units=_LENGTH_UNITS, low=1,
                    high=12, decimals=1),
        ),
        captions=("Biomarker distribution in colorectal cancer",
                  "Molecular profile of {place} cohort"),
        vmd_pool=("primary", "metastatic", "recurrent"),
        vmd_groups=("Disease Stage",),
        hmd_groups=("Biomarker", "Pathology"),
    ),
    TopicSchema(
        topic="screening programs",
        concepts=(
            Concept("program", "entity", "organization", ORGANIZATIONS),
            Concept("participation", "percent", low=20, high=80,
                    synonyms=("uptake",)),
            Concept("detection rate", "percent", low=0.1, high=5, decimals=2),
            Concept("screened", "number", low=1_000, high=900_000,
                    decimals=0, synonyms=("invited",)),
            Concept("interval", "range", units=("years",), low=1, high=5,
                    decimals=0),
        ),
        captions=("Colorectal cancer screening outcomes, {place}",
                  "Screening program results {year}"),
        vmd_pool=("50-59 years", "60-69 years", "70-75 years"),
        vmd_groups=("Age Band",),
        hmd_groups=("Program", "Yield"),
    ),
)

# ----------------------------------------------------------------------
# SAUS domain (Statistical Abstract of the US)
# ----------------------------------------------------------------------
SAUS_TOPICS = (
    TopicSchema(
        topic="finance",
        concepts=(
            Concept("state", "entity", "place", PLACES),
            Concept("median income", "number", low=35_000, high=95_000,
                    decimals=0, synonyms=("household income",)),
            Concept("poverty rate", "percent", low=5, high=25),
            Concept("bank deposits", "number", low=1, high=900, decimals=1),
            Concept("tax revenue", "number", low=1, high=300, decimals=1),
        ),
        captions=("State finances, {year}", "Income and poverty by state"),
        vmd_pool=("northeast", "midwest", "south", "west"),
        vmd_groups=("Region",),
        hmd_groups=("State", "Income", "Revenue"),
    ),
    TopicSchema(
        topic="agriculture",
        concepts=(
            Concept("state", "entity", "place", PLACES),
            Concept("farms", "number", low=1_000, high=250_000, decimals=0),
            Concept("acreage", "number", low=100, high=60_000, decimals=0,
                    synonyms=("farm acres",)),
            Concept("crop value", "number", low=0.1, high=30, decimals=1),
            Concept("yield", "gaussian", low=20, high=220, decimals=0),
        ),
        captions=("Farms and farm acreage by state", "Agriculture summary {year}"),
        vmd_pool=("2000", "2005", "2008", "2009", "2010"),
        vmd_groups=("Year",),
        hmd_groups=("State", "Production"),
    ),
    TopicSchema(
        topic="health care",
        concepts=(
            Concept("state", "entity", "place", PLACES),
            Concept("physicians", "number", low=500, high=90_000, decimals=0),
            Concept("uninsured", "percent", low=3, high=25),
            Concept("hospital beds", "number", low=1_000, high=80_000,
                    decimals=0),
            Concept("life expectancy", "number", units=("years",), low=72,
                    high=82, decimals=1),
        ),
        captions=("Health care resources by state", "Health indicators {year}"),
        vmd_pool=("urban", "rural", "total"),
        vmd_groups=("Area Type",),
        hmd_groups=("State", "Resources", "Outcomes"),
    ),
    TopicSchema(
        topic="education",
        concepts=(
            Concept("state", "entity", "place", PLACES),
            Concept("enrollment", "number", low=50_000, high=6_000_000,
                    decimals=0, synonyms=("students",)),
            Concept("graduation rate", "percent", low=60, high=95),
            Concept("spending per pupil", "number", low=6_000, high=22_000,
                    decimals=0),
        ),
        captions=("Public school statistics by state", "Education summary {year}"),
        vmd_pool=("elementary", "secondary", "total"),
        vmd_groups=("Level",),
        hmd_groups=("State", "Spending"),
    ),
    TopicSchema(
        topic="business",
        concepts=(
            Concept("industry", "text",
                    entity_pool=("manufacturing", "retail trade", "construction",
                                 "information", "finance and insurance",
                                 "transportation")),
            Concept("establishments", "number", low=5_000, high=700_000,
                    decimals=0, synonyms=("firms",)),
            Concept("employees", "number", low=50_000, high=18_000_000,
                    decimals=0, synonyms=("employment",)),
            Concept("payroll", "number", low=1, high=900, decimals=1),
        ),
        captions=("Business establishments by industry", "Industry summary {year}"),
        vmd_pool=("small", "medium", "large"),
        vmd_groups=("Firm Size",),
        hmd_groups=("Industry", "Employment"),
    ),
)

# ----------------------------------------------------------------------
# CIUS domain (Crime In the US)
# ----------------------------------------------------------------------
CIUS_TOPICS = (
    TopicSchema(
        topic="violent crime",
        concepts=(
            Concept("offense", "entity", "measurement", CRIMES,
                    synonyms=("crime type",)),
            Concept("incidents", "number", low=100, high=90_000, decimals=0,
                    synonyms=("offenses",)),
            Concept("rate per 100k", "number", low=1, high=900, decimals=1,
                    synonyms=("crime rate",)),
            Concept("cleared", "percent", low=10, high=70,
                    synonyms=("clearance rate",)),
        ),
        captions=("Violent crime by offense, {place} {year}",
                  "Crime in the United States: violent offenses"),
        vmd_pool=("2006", "2007", "2008", "2009", "2010"),
        vmd_groups=("Year",),
        hmd_groups=("Offense", "Counts", "Rates"),
    ),
    TopicSchema(
        topic="property crime",
        concepts=(
            Concept("offense", "entity", "measurement", CRIMES),
            Concept("incidents", "number", low=1_000, high=400_000, decimals=0),
            Concept("loss value", "number", low=0.1, high=90, decimals=1,
                    synonyms=("property loss",)),
            Concept("rate per 100k", "number", low=50, high=3_500, decimals=1),
        ),
        captions=("Property crime statistics, {place}",
                  "Property offenses by type {year}"),
        vmd_pool=("metropolitan", "cities outside metro", "nonmetropolitan"),
        vmd_groups=("Area",),
        hmd_groups=("Offense", "Losses"),
    ),
    TopicSchema(
        topic="arrests",
        concepts=(
            Concept("state", "entity", "place", PLACES),
            Concept("arrests", "number", low=1_000, high=900_000, decimals=0),
            Concept("juvenile share", "percent", low=2, high=25),
            Concept("officers", "number", low=500, high=60_000, decimals=0,
                    synonyms=("sworn officers",)),
        ),
        captions=("Arrests by state, {year}", "Law enforcement arrests summary"),
        vmd_pool=("violent", "property", "drug", "other"),
        vmd_groups=("Offense Class",),
        hmd_groups=("State", "Personnel"),
    ),
    TopicSchema(
        topic="law enforcement employees",
        concepts=(
            Concept("city", "entity", "place", PLACES),
            Concept("officers", "number", low=50, high=36_000, decimals=0),
            Concept("civilians", "number", low=10, high=12_000, decimals=0),
            Concept("per 1000 residents", "number", low=1, high=5, decimals=1),
        ),
        captions=("Full-time law enforcement employees, {place}",
                  "Police staffing {year}"),
        vmd_pool=("total", "male", "female"),
        vmd_groups=("Breakdown",),
        hmd_groups=("City", "Staffing"),
    ),
)


DOMAIN_TOPICS: dict[str, tuple[TopicSchema, ...]] = {
    "webtables": WEBTABLES_TOPICS,
    "covidkg": COVID_TOPICS,
    "cancerkg": CANCER_TOPICS,
    "saus": SAUS_TOPICS,
    "cius": CIUS_TOPICS,
}
