"""Synthetic corpora standing in for the paper's five datasets."""

from .corpora import CANCERKG, CIUS, COVIDKG, PROFILES, SAUS, WEBTABLES, load_dataset
from .generator import (
    CorpusGenerator,
    CorpusStats,
    DatasetProfile,
    corpus_stats,
)
from .magellan import (
    EntityPair,
    entity_pairs_from_corpus,
    generate_em_dataset,
    serialize_record,
)
from .schemas import DOMAIN_TOPICS, Concept, TopicSchema

__all__ = [
    "Concept", "TopicSchema", "DOMAIN_TOPICS",
    "DatasetProfile", "CorpusGenerator", "CorpusStats", "corpus_stats",
    "PROFILES", "WEBTABLES", "COVIDKG", "CANCERKG", "SAUS", "CIUS",
    "load_dataset",
    "EntityPair", "generate_em_dataset", "entity_pairs_from_corpus",
    "serialize_record",
]
