"""The corpus generator: seeded synthetic tables with gold labels.

Replaces the paper's five corpora (which are not redistributable/
downloadable offline) with structurally equivalent synthetic ones.  Each
:class:`DatasetProfile` controls the documented structural statistics of
one corpus — table shapes, the fraction of non-relational tables, VMD /
hierarchical-metadata / nesting rates, and value shapes (units, ranges,
gaussians).  Ground-truth topic / column-concept / entity labels come
from the topic schemas, making MAP/MRR computable without annotators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..tables.table import Table
from .schemas import Concept, TopicSchema


@dataclass(frozen=True)
class DatasetProfile:
    """Structural statistics of one simulated corpus."""

    name: str
    topics: tuple[TopicSchema, ...]
    n_tables: int = 60
    rows: tuple[int, int] = (4, 14)          # data rows (min, max)
    extra_cols: tuple[int, int] = (3, 5)      # concepts per table (min, max)
    p_vmd: float = 0.0                        # tables with vertical metadata
    p_hier_hmd: float = 0.0                   # two-level horizontal metadata
    p_hier_vmd: float = 0.0                   # two-level vertical metadata
    p_nested: float = 0.0                     # tables containing nested cells
    header_noise: float = 0.3                 # synonym headers (schema noise)
    caption_in_topic: bool = True

    def scaled(self, n_tables: int) -> "DatasetProfile":
        from dataclasses import replace

        return replace(self, n_tables=n_tables)


@dataclass
class CorpusStats:
    """Aggregate structural statistics of a generated corpus."""

    n_tables: int = 0
    n_columns: int = 0
    n_rows: int = 0
    n_non_relational: int = 0
    n_nested: int = 0
    n_with_vmd: int = 0
    n_hierarchical: int = 0
    entity_counts: dict[str, int] = field(default_factory=dict)

    @property
    def avg_rows(self) -> float:
        return self.n_rows / self.n_tables if self.n_tables else 0.0

    @property
    def avg_cols(self) -> float:
        return self.n_columns / self.n_tables if self.n_tables else 0.0

    @property
    def frac_non_relational(self) -> float:
        return self.n_non_relational / self.n_tables if self.n_tables else 0.0

    @property
    def frac_nested(self) -> float:
        return self.n_nested / self.n_tables if self.n_tables else 0.0


class CorpusGenerator:
    """Generate a corpus of tables from a profile, deterministically."""

    def __init__(self, profile: DatasetProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed

    def generate(self) -> list[Table]:
        rng = np.random.default_rng(self.seed)
        profile = self.profile
        tables: list[Table] = []
        for i in range(profile.n_tables):
            schema = profile.topics[i % len(profile.topics)]
            tables.append(self._one_table(rng, schema))
        rng.shuffle(tables)
        return tables

    # ------------------------------------------------------------------
    def _one_table(self, rng: np.random.Generator,
                   schema: TopicSchema) -> Table:
        profile = self.profile
        n_rows = int(rng.integers(profile.rows[0], profile.rows[1] + 1))
        n_cols = int(rng.integers(profile.extra_cols[0],
                                  min(profile.extra_cols[1], len(schema.concepts)) + 1))
        concept_ids = sorted(
            rng.choice(len(schema.concepts), size=n_cols, replace=False).tolist()
        )
        concepts = [schema.concepts[i] for i in concept_ids]

        data: list[list] = []
        entities: list[list[str | None]] = []
        for _ in range(n_rows):
            row, entity_row = [], []
            for concept in concepts:
                text, entity = concept.generate(rng)
                row.append(text)
                entity_row.append(entity)
            data.append(row)
            entities.append(entity_row)

        header_rows = self._hmd(rng, schema, concepts)
        header_cols = self._vmd(rng, schema, n_rows)
        if rng.random() < profile.p_nested:
            self._nest_cells(rng, schema, data, entities)

        return Table(
            caption=schema.caption(rng),
            header_rows=header_rows,
            data=data,
            header_cols=header_cols,
            topic=schema.topic,
            column_concepts=[c.name for c in concepts],
            entity_types=entities,
            source=profile.name,
        )

    def _hmd(self, rng: np.random.Generator, schema: TopicSchema,
             concepts: list[Concept]) -> list[list[str | None]]:
        labels = [c.header_label(rng, self.profile.header_noise) for c in concepts]
        if rng.random() >= self.profile.p_hier_hmd or len(concepts) < 2:
            return [labels]
        # Two-level HMD: split the columns into contiguous parent groups.
        n_groups = int(rng.integers(1, min(3, len(concepts)) + 1))
        cuts = sorted(rng.choice(range(1, len(concepts)), size=n_groups - 1,
                                 replace=False).tolist()) if n_groups > 1 else []
        bounds = [0] + cuts + [len(concepts)]
        parent: list[str | None] = [None] * len(concepts)
        group_names = list(schema.hmd_groups)
        rng.shuffle(group_names)
        for g, start in enumerate(bounds[:-1]):
            parent[start] = group_names[g % len(group_names)]
        return [parent, labels]

    def _vmd(self, rng: np.random.Generator, schema: TopicSchema,
             n_rows: int) -> list[list[str | None]] | None:
        profile = self.profile
        if not schema.vmd_pool or rng.random() >= profile.p_vmd:
            return None
        pool = list(schema.vmd_pool)
        labels = [pool[i % len(pool)] for i in range(n_rows)]
        if rng.random() >= profile.p_hier_vmd or not schema.vmd_groups:
            return [labels]
        # Two-level VMD: a parent label spanning all rows (e.g. "Patient
        # Cohort" over the cohort names, as in Figure 1).
        parent: list[str | None] = [None] * n_rows
        parent[0] = str(rng.choice(list(schema.vmd_groups)))
        return [parent, labels]

    def _nest_cells(self, rng: np.random.Generator, schema: TopicSchema,
                    data: list[list], entities: list[list]) -> None:
        """Replace 1-2 cells with small nested tables with their own HMD."""
        n_rows, n_cols = len(data), len(data[0])
        numeric = [c for c in schema.concepts if c.is_numeric][:3]
        if not numeric:
            return
        for _ in range(int(rng.integers(1, 3))):
            i = int(rng.integers(n_rows))
            j = int(rng.integers(n_cols))
            headers = [c.name for c in numeric]
            values = [c.generate(rng)[0] for c in numeric]
            data[i][j] = Table(
                caption=f"{schema.topic} detail",
                header_rows=[headers],
                data=[values],
                topic=schema.topic,
            )
            entities[i][j] = None


def corpus_stats(tables: list[Table]) -> CorpusStats:
    """Structural summary used by Table 7 and the dataset docs."""
    stats = CorpusStats()
    for table in tables:
        stats.n_tables += 1
        stats.n_columns += table.n_cols
        stats.n_rows += table.n_rows
        if not table.is_relational:
            stats.n_non_relational += 1
        if table.has_nesting:
            stats.n_nested += 1
        if table.has_vmd:
            stats.n_with_vmd += 1
        if table.has_hierarchical_metadata:
            stats.n_hierarchical += 1
        for cell in table.all_cells():
            if cell.entity_type:
                stats.entity_counts[cell.entity_type] = (
                    stats.entity_counts.get(cell.entity_type, 0) + 1
                )
    return stats
