"""Command-line interface for the TabBiN reproduction.

Subcommands::

    python -m repro.cli stats    <dataset>                 corpus statistics
    python -m repro.cli train    <dataset> --out DIR       pre-train TabBiN
    python -m repro.cli evaluate <dataset> [--model DIR]   run CC/TC/EC
    python -m repro.cli encode   <dataset> --table N       show Figure-3 style
                                                           token encoding
    python -m repro.cli index build <dataset> --out DIR    batch-encode the
                                                           corpus into table +
                                                           column indexes
                                                           (--shards N emits
                                                           the sharded layout)
    python -m repro.cli index query <dataset> --index DIR  top-k neighbours of
                                                           a table (or one of
                                                           its columns);
                                                           --batch FILE runs
                                                           many queries from a
                                                           JSONL/npz file,
                                                           --jobs N fans shard
                                                           work over N threads
    python -m repro.cli index rm      <index> KEY...       tombstone entries
    python -m repro.cli index compact <index>              reclaim tombstones
    python -m repro.cli index merge   --out OUT A B...     merge saved indexes
                                                           (dedupes by
                                                           fingerprint)
    python -m repro.cli index quantize <index>             retrofit an int8
                                                           sidecar in place
                                                           (serve --quantized
                                                           then shortlists in
                                                           int8 and reranks
                                                           exactly)
    python -m repro.cli catalog init <dir>                 start an empty
                                                           catalog.json
    python -m repro.cli catalog add  <dir> --name N        register a saved
                              --path P [--default]         index under a name
                                                           (kind + checkpoint
                                                           recorded from the
                                                           layout itself)
    python -m repro.cli catalog list <dir>                 show every entry
                                                           with its live spec
    python -m repro.cli serve <index-or-catalog>           HTTP retrieval
                                                           server: POST /query
                                                           (optional "index"
                                                           name routes within
                                                           a catalog),
                                                           GET /indexes,
                                                           GET /healthz,
                                                           GET /stats;
                                                           micro-batched,
                                                           memory-mapped and
                                                           lazily opened by
                                                           default (--max-open
                                                           caps residency),
                                                           graceful drain on
                                                           SIGINT/SIGTERM
    python -m repro.cli serve-shard <layout> --port N      one cluster shard
                                                           server (the
                                                           per-shard half of
                                                           scatter-gather)
    python -m repro.cli serve --cluster topology.json      coordinator over a
                                                           fleet of shard
                                                           servers — same
                                                           endpoints and
                                                           rankings as local
                                                           serve

Saved indexes are opened through :func:`repro.index.open_index`, so
every lifecycle command accepts either layout — a single ``.npz`` file
or a sharded directory (``MANIFEST.json`` + ``shard-XXXX.npz``) —
transparently; ``merge`` keeps the first input's layout.

Datasets are the five generated corpora (webtables, covidkg, cancerkg,
saus, cius); all runs are seeded and CPU-sized.
"""

from __future__ import annotations

import argparse
import sys

from .core import TabBiNConfig, TabBiNEmbedder
from .datasets import PROFILES, corpus_stats, load_dataset
from .eval import (
    ResultsTable,
    collect_entities,
    column_clustering,
    entity_clustering,
    table_clustering,
)


#: Count-like flags share one minimum-value rule; each entry is
#: ``(minimum, message)`` — the messages are word-for-word what the
#: historical per-command copies printed (tests pin them) — so no
#: subcommand's wording can drift from the others.  Most flags floor at
#: 1; ``--margin`` legitimately allows 0 (no extra shortlist slack).
_COUNT_FLAG_MESSAGES = {
    "workers": (1, "--workers must be positive"),
    "jobs": (1, "--jobs must be positive"),
    "shards": (1, "--shards must be at least 1"),
    "k": (1, "-k/--k must be at least 1"),
    "chunk": (1, "--chunk must be at least 1"),
    "max_batch": (1, "--max-batch must be at least 1"),
    "max_open": (1, "--max-open must be at least 1"),
    "max_backlog": (1, "--max-backlog must be at least 1"),
    "overfetch": (1, "--overfetch must be at least 1"),
    "margin": (0, "--margin must be at least 0"),
}


def _validate_counts(args: argparse.Namespace, *names: str) -> int:
    """Shared validation for the count-like flags (``--jobs``,
    ``--workers``, ``-k``, ...): each must meet its per-flag minimum
    when given (``None`` means the flag was omitted and is fine).
    Prints one stderr line per offending flag and returns 2; returns 0
    when all pass.  This used to be copy-pasted at three call sites,
    which is exactly how ``serve --workers`` could have drifted from
    ``index build --workers`` — every exit-2 path now runs through here
    and is covered by one parametrized test
    (tests/test_cli_validation.py)."""
    code = 0
    for name in names:
        value = getattr(args, name, None)
        minimum, message = _COUNT_FLAG_MESSAGES[name]
        if value is not None and value < minimum:
            print(message, file=sys.stderr)
            code = 2
    return code


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dataset", choices=sorted(PROFILES),
                        help="which generated corpus to use")
    parser.add_argument("--n-tables", type=int, default=24,
                        help="corpus size (default 24)")
    parser.add_argument("--seed", type=int, default=0)


def cmd_stats(args: argparse.Namespace) -> int:
    tables = load_dataset(args.dataset, n_tables=args.n_tables, seed=args.seed)
    stats = corpus_stats(tables)
    out = ResultsTable(f"Corpus statistics: {args.dataset}", columns=["value"])
    out.add("tables", "value", stats.n_tables)
    out.add("avg rows", "value", f"{stats.avg_rows:.1f}")
    out.add("avg cols", "value", f"{stats.avg_cols:.1f}")
    out.add("non-relational", "value", f"{stats.frac_non_relational:.0%}")
    out.add("with VMD", "value", stats.n_with_vmd)
    out.add("hierarchical metadata", "value", stats.n_hierarchical)
    out.add("nested", "value", stats.n_nested)
    for entity_type, count in sorted(stats.entity_counts.items()):
        out.add(f"entities: {entity_type}", "value", count)
    out.show()
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    tables = load_dataset(args.dataset, n_tables=args.n_tables, seed=args.seed)
    print(f"Pre-training TabBiN on {len(tables)} {args.dataset} tables "
          f"({args.steps} steps per segment model) ...")
    embedder, stats = TabBiNEmbedder.build(
        tables, config=TabBiNConfig.small(), steps=args.steps,
        vocab_size=args.vocab_size, seed=args.seed,
    )
    for segment, s in stats.items():
        print(f"  {segment:7s} loss {s.losses[0]:.3f} -> {s.final_loss:.3f} "
              f"({s.steps} steps)")
    if args.out:
        embedder.save(args.out)
        print(f"Saved checkpoint to {args.out}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    tables = load_dataset(args.dataset, n_tables=args.n_tables, seed=args.seed)
    embedder = _load_or_train(args, tables)
    out = ResultsTable(f"TabBiN on {args.dataset} (MAP/MRR@{args.k})",
                       columns=["result", "queries"])
    cc = column_clustering(tables, embedder.column_embedding,
                           k=args.k, max_queries=args.max_queries)
    out.add("Column Clustering", "result", str(cc))
    out.add("Column Clustering", "queries", cc.n_queries)
    tc = table_clustering(tables, embedder.table_embedding, k=args.k)
    out.add("Table Clustering", "result", str(tc))
    out.add("Table Clustering", "queries", tc.n_queries)
    entities = collect_entities(tables, max_per_type=25)
    if len(entities) >= 2:
        ec = entity_clustering(entities, embedder.entity_embedding,
                               k=args.k, max_queries=args.max_queries)
        out.add("Entity Clustering", "result", str(ec))
        out.add("Entity Clustering", "queries", ec.n_queries)
    out.show()
    return 0


def cmd_encode(args: argparse.Namespace) -> int:
    from .core import TabBiNSerializer, corpus_texts
    from .text import TYPE_NAMES, TypeInference, WordPieceTokenizer

    tables = load_dataset(args.dataset, n_tables=args.n_tables, seed=args.seed)
    if not 0 <= args.table < len(tables):
        print(f"--table must be in [0, {len(tables)})", file=sys.stderr)
        return 2
    table = tables[args.table]
    tokenizer = WordPieceTokenizer.train(corpus_texts(tables),
                                         vocab_size=args.vocab_size)
    config = TabBiNConfig.small().with_vocab(len(tokenizer.vocab))
    serializer = TabBiNSerializer(tokenizer, TypeInference(), config)
    seq = serializer.serialize(table, args.segment)[0]
    print(f"{table}\ncaption: {table.caption}\n")
    header = f"{'pos':>3}  {'token':16} {'num':12} {'cpos':>4} " \
             f"{'coords (vr,vc,hr,hc,nr,nc)':28} {'type':12} feat"
    print(header)
    for pos in range(min(len(seq), args.limit)):
        token = tokenizer.vocab.token(int(seq.token_ids[pos]))
        num = ",".join(str(int(x)) for x in seq.numeric[pos])
        coords = ",".join(str(int(x)) for x in seq.coords[pos])
        bits = "".join(str(int(b)) for b in seq.features[pos])
        print(f"{pos:>3}  {token:16} {num:12} {int(seq.cell_pos[pos]):>4} "
              f"{coords:28} {TYPE_NAMES[int(seq.type_ids[pos])]:12} {bits}")
    return 0


def _load_or_train(args: argparse.Namespace, tables) -> TabBiNEmbedder:
    if args.model:
        print(f"Loading checkpoint from {args.model} ...")
        return TabBiNEmbedder.load(args.model, TabBiNConfig.small())
    print(f"No checkpoint given; pre-training {args.steps} steps ...")
    embedder, _ = TabBiNEmbedder.build(
        tables, config=TabBiNConfig.small(), steps=args.steps,
        vocab_size=args.vocab_size, seed=args.seed,
    )
    return embedder


def cmd_index_build(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .index import ColumnIndex, TableIndex, save_index

    # Validate before the (expensive) train/load step.
    if _validate_counts(args, "workers", "shards", "jobs"):
        return 2
    if args.jobs is not None and args.shards is None:
        print("--jobs fans per-shard builds, so it requires --shards",
              file=sys.stderr)
        return 2
    tables = load_dataset(args.dataset, n_tables=args.n_tables, seed=args.seed)
    if not tables:
        print("cannot build an index over an empty corpus "
              "(--n-tables must be positive)", file=sys.stderr)
        return 2
    embedder = _load_or_train(args, tables)
    out = Path(args.out)
    embedder.save(out / "model")
    mode = f"{args.workers} workers" if args.workers and args.workers > 1 \
        else "serial"
    print(f"Batch-encoding {len(tables)} tables "
          f"(batch size {args.batch_size}, {mode}) ...")
    corpus_id = {"dataset": args.dataset, "n_tables": args.n_tables,
                 "seed": args.seed}
    if args.shards is not None:
        table_index = TableIndex.build_sharded(
            embedder, tables, shards=args.shards, variant=args.variant,
            seed=args.seed, batch_size=args.batch_size, workers=args.workers,
            build_workers=args.jobs)
        column_index = ColumnIndex.build_sharded(
            embedder, tables, shards=args.shards, seed=args.seed,
            batch_size=args.batch_size, workers=args.workers,
            build_workers=args.jobs)
        table_path, column_path = out / "tables", out / "columns"
    else:
        table_index = TableIndex.build(embedder, tables, variant=args.variant,
                                       seed=args.seed,
                                       batch_size=args.batch_size,
                                       workers=args.workers)
        column_index = ColumnIndex.build(embedder, tables, seed=args.seed,
                                         batch_size=args.batch_size,
                                         workers=args.workers)
        table_path, column_path = out / "tables.npz", out / "columns.npz"
    table_index.corpus = dict(corpus_id)
    column_index.corpus = dict(corpus_id)
    if args.quantize:
        # Attach the int8 sidecar before saving; save() writes the
        # quantized members whenever the sidecar is present.
        table_index.quantize()
        column_index.quantize()
    for name in ("tables", "columns"):
        # The suffixless logical path: the sharded dir lives there, the
        # single-file layout appends .npz.
        _remove_stale_layout(out / name, sharded=args.shards is not None)
    save_index(table_index, table_path)
    save_index(column_index, column_path)
    stats = embedder.store.stats
    summary = ResultsTable(f"Index built: {args.dataset}", columns=["value"])
    summary.add("tables indexed", "value", len(table_index))
    summary.add("columns indexed", "value", len(column_index))
    if args.shards is not None:
        summary.add("shards", "value", args.shards)
        summary.add("shard sizes (tables)", "value",
                    "/".join(str(n) for n in table_index.shard_sizes()))
    if args.quantize:
        summary.add("quantized", "value", "int8 sidecar (exact rerank)")
    summary.add("encoder batches", "value", stats.batches)
    summary.add("sequences encoded", "value", stats.sequences_encoded)
    summary.show()
    layout = "sharded" if args.shards is not None else "single-file"
    print(f"Saved model + {layout} indexes to {out}")
    return 0


def _load_query_batch(path):
    """Read a ``(Q, dim)`` query matrix (plus optional per-query exclude
    keys) from ``--batch FILE``: an ``.npz`` with a ``queries`` array,
    or JSONL where each line is a bare vector array or an object
    ``{"vector": [...], "exclude": "key"}``."""
    import json
    from pathlib import Path

    import numpy as np

    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"no query batch file at {path}")
    if path.suffix == ".npz":
        with np.load(path) as archive:
            if "queries" in archive.files:
                queries = archive["queries"]
            elif len(archive.files) == 1:
                queries = archive[archive.files[0]]
            else:
                raise ValueError(f"{path} holds arrays {archive.files}; "
                                 f"expected one named 'queries'")
            queries = np.asarray(queries, float)
        if queries.ndim != 2 or not len(queries):
            raise ValueError(f"{path}: queries must be a non-empty 2-D "
                             f"matrix, got shape {queries.shape}")
        return queries, None
    vectors: list[list[float]] = []
    excludes: list[str | None] = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}:{lineno}: not valid JSON: {error}")
        vector = record.get("vector") if isinstance(record, dict) else record
        if (not isinstance(vector, list) or not vector
                or not all(isinstance(x, (int, float))
                           and not isinstance(x, bool) for x in vector)):
            raise ValueError(f"{path}:{lineno}: each line must be a "
                             f"non-empty numeric vector (or an object with "
                             f"a 'vector' field)")
        if vectors and len(vector) != len(vectors[0]):
            raise ValueError(f"{path}:{lineno}: vector has {len(vector)} "
                             f"dims, earlier queries have {len(vectors[0])}")
        vectors.append(vector)
        excludes.append(record.get("exclude")
                        if isinstance(record, dict) else None)
    if not vectors:
        raise ValueError(f"{path} holds no queries")
    return np.asarray(vectors, float), excludes


def _run_batch_query(args) -> int:
    """``index query --batch``: many raw query vectors, ranked results
    per query as JSON lines (machine-consumable).  The corpus arguments
    are ignored — batch vectors already live in the embedding space, so
    neither the dataset nor the model checkpoint is loaded.

    Output *streams*: queries run through ``query_many`` in chunks of
    ``--chunk`` and each chunk's JSON lines are flushed as soon as it
    completes, so a consumer piping a huge batch sees results
    incrementally instead of waiting for the whole file.  Chunking
    cannot change rankings — every query's result (including its
    brute-force fallback decision) depends only on its own row."""
    import json
    from pathlib import Path

    from .index import open_index

    if args.column is not None:
        print("--batch and --column are mutually exclusive; pick the index "
              "with --kind instead", file=sys.stderr)
        return 2
    try:
        queries, excludes = _load_query_batch(args.batch)
    except (FileNotFoundError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    index_dir = Path(args.index)
    try:
        index = open_index(index_dir / f"{args.kind}s")
    except FileNotFoundError:
        print(f"no index at {index_dir} (run `index build ... --out "
              f"{index_dir}` first)", file=sys.stderr)
        return 2
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if index.kind != args.kind:
        print(f"{index_dir} holds a {index.kind!r} index, expected "
              f"{args.kind!r}", file=sys.stderr)
        return 2
    if queries.shape[1] != index.dim:
        print(f"query batch has dim {queries.shape[1]}, index expects "
              f"{index.dim}", file=sys.stderr)
        return 2
    try:
        for start in range(0, len(queries), args.chunk):
            chunk_excludes = (None if excludes is None
                              else excludes[start:start + args.chunk])
            results = index.query_many(queries[start:start + args.chunk],
                                       k=args.k, excludes=chunk_excludes,
                                       jobs=args.jobs)
            for q, hits in enumerate(results, start):
                print(json.dumps({"query": q,
                                  "hits": [{"key": hit.key,
                                            "score": hit.score}
                                           for hit in hits]}), flush=True)
    except BrokenPipeError:
        # The consumer (`head`, a closed socket) stopped reading: stop
        # producing and exit cleanly, Unix-style.  Redirect stdout to
        # devnull so the interpreter's exit-time flush doesn't raise a
        # second BrokenPipeError after we've handled this one.
        import contextlib
        import os

        with contextlib.suppress(Exception):
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def cmd_index_query(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .index import open_index

    if _validate_counts(args, "k", "jobs", "chunk"):
        return 2
    if args.batch is not None:
        return _run_batch_query(args)
    tables = load_dataset(args.dataset, n_tables=args.n_tables, seed=args.seed)
    if not 0 <= args.table < len(tables):
        print(f"--table must be in [0, {len(tables)})", file=sys.stderr)
        return 2
    table = tables[args.table]
    if args.column is not None and not 0 <= args.column < table.n_cols:
        print(f"--column must be in [0, {table.n_cols})", file=sys.stderr)
        return 2
    index_dir = Path(args.index)
    wanted = "column" if args.column is not None else "table"
    try:
        embedder = TabBiNEmbedder.load(index_dir / "model", TabBiNConfig.small())
        # open_index sniffs the layout, so `tables` resolves to either
        # the sharded `tables/` directory or the single `tables.npz`.
        index = open_index(index_dir / f"{wanted}s")
    except FileNotFoundError:
        print(f"no index at {index_dir} (run `index build ... --out "
              f"{index_dir}` first)", file=sys.stderr)
        return 2
    except ValueError as error:
        # e.g. a file/manifest from a newer format version — same
        # stderr + exit-2 contract as the lifecycle commands.
        print(str(error), file=sys.stderr)
        return 2
    if index.kind != wanted:
        print(f"{index_dir} holds a {index.kind!r} index, expected "
              f"{wanted!r}", file=sys.stderr)
        return 2
    built_from = index.corpus
    asked = {"dataset": args.dataset, "n_tables": args.n_tables,
             "seed": args.seed}
    if built_from and built_from != asked:
        # Generated corpora are not prefix-stable, so a different
        # dataset/n-tables/seed names different tables entirely.
        print(f"index was built from {built_from}, not {asked}; rerun with "
              f"matching corpus arguments (or rebuild)", file=sys.stderr)
        return 2
    if args.column is not None:
        hits = index.query_column(embedder, table, args.column, k=args.k,
                                  jobs=args.jobs)
        title = (f"Columns similar to {table.caption!r} "
                 f"[{table.column_label(args.column)}]")
        label = lambda hit: f"{hit.meta.get('caption')} [{hit.meta.get('label')}]"
    else:
        hits = index.query_table(embedder, table, k=args.k, jobs=args.jobs)
        title = f"Tables similar to {table.caption!r}"
        label = lambda hit: str(hit.meta.get("caption"))
    out = ResultsTable(title, columns=["score"])
    for hit in hits:
        out.add(label(hit), "score", f"{hit.score:.3f}")
    out.show()
    return 0


def _remove_stale_layout(path, sharded: bool) -> None:
    """Remove the *other* layout's artifact at an output path before
    saving: a leftover manifest directory would out-sniff a fresh
    ``.npz`` in ``open_index`` (silently serving stale results), and a
    leftover file blocks creating the shard directory.  Only artifacts
    this CLI writes are touched — a directory without a manifest is
    left alone (the save will fail loudly instead)."""
    import shutil
    from pathlib import Path

    path = Path(path)
    if sharded:
        if path.is_file():
            path.unlink()
        sibling = path.with_name(path.name + ".npz")
        if sibling.is_file():
            sibling.unlink()
    elif (path / "MANIFEST.json").is_file():
        shutil.rmtree(path)


def _open_index_or_report(path: str):
    """Open one saved index (either layout) for a lifecycle command,
    mapping the usual failure modes to a printed error + ``None``.  All
    sniffing, version checks and error wording live in
    :func:`repro.index.open_index`; this only adapts exceptions to the
    CLI's stderr + exit-code contract."""
    from .index import open_index

    try:
        return open_index(path)
    except (FileNotFoundError, ValueError) as error:
        print(str(error), file=sys.stderr)
    return None


def cmd_index_rm(args: argparse.Namespace) -> int:
    index = _open_index_or_report(args.path)
    if index is None:
        return 2
    keys = list(dict.fromkeys(args.keys))    # drop repeated CLI keys
    missing = [key for key in keys if key not in index]
    if missing:
        print(f"key(s) not in index: {', '.join(missing)}", file=sys.stderr)
        return 2
    for key in keys:
        index.remove(key)
    if args.compact:
        index.compact()
    index.save(args.path)
    print(f"Removed {len(keys)} of {len(index) + len(keys)} entries from "
          f"{args.path} ({len(index)} live, {index.n_tombstones} tombstoned)")
    return 0


def cmd_index_compact(args: argparse.Namespace) -> int:
    index = _open_index_or_report(args.path)
    if index is None:
        return 2
    dropped = index.compact()
    index.save(args.path)
    print(f"Compacted {args.path}: reclaimed {dropped} tombstoned slots, "
          f"{len(index)} live entries")
    return 0


def cmd_index_quantize(args: argparse.Namespace) -> int:
    """``index quantize``: retrofit an int8 sidecar onto a saved index.

    Opens the layout *eagerly* (never mmapped — the save below
    overwrites the very file a map would be reading from), rebuilds the
    per-vector int8 sidecar from the fp vectors, and saves in place.
    Idempotent: re-running on an already-quantized layout refreshes the
    sidecar from the current vectors."""
    from .index import open_index

    try:
        index = open_index(args.path, mmap=False)
    except (FileNotFoundError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    already = index.quantized
    count = index.quantize()
    index.save(args.path)
    verb = "Refreshed" if already else "Quantized"
    print(f"{verb} {args.path}: int8 sidecar over {count} vectors "
          f"({len(index)} live entries); serve with --quantized or open "
          f"with open_index(..., quantized=True)")
    return 0


def cmd_index_merge(args: argparse.Namespace) -> int:
    if len(args.paths) < 2:
        print("index merge needs at least two input indexes",
              file=sys.stderr)
        return 2
    merged = _open_index_or_report(args.paths[0])
    if merged is None:
        return 2
    total_added = 0
    for path in args.paths[1:]:
        other = _open_index_or_report(path)
        if other is None:
            return 2
        try:
            total_added += merged.merge(other)
        except ValueError as error:
            print(f"cannot merge {path}: {error}", file=sys.stderr)
            return 2
    from .index import ShardedIndex

    # Re-merging to the same --out with a different first-input layout
    # must replace the old artifact, not coexist with (and lose to) it.
    _remove_stale_layout(args.out, sharded=isinstance(merged, ShardedIndex))
    merged.save(args.out)
    print(f"Merged {len(args.paths)} indexes into {args.out}: "
          f"{len(merged)} entries ({total_added} added beyond the first "
          f"index; duplicates fingerprint-deduped)")
    return 0


def cmd_catalog_init(args: argparse.Namespace) -> int:
    """``catalog init``: start an empty ``catalog.json`` in a directory."""
    from pathlib import Path

    from .catalog import CATALOG_NAME, Catalog

    directory = Path(args.dir)
    manifest = directory / CATALOG_NAME
    if manifest.exists():
        print(f"{manifest} already exists; use `catalog add` to register "
              f"indexes in it", file=sys.stderr)
        return 2
    written = Catalog(root=directory).save()
    print(f"Initialised empty catalog at {written}; register indexes with "
          f"`catalog add {args.dir} --name NAME --path PATH`")
    return 0


def cmd_catalog_add(args: argparse.Namespace) -> int:
    """``catalog add``: register one saved index under a name.

    The entry's ``kind`` and ``model_id`` are read from the layout
    itself (:func:`~repro.index.read_index_spec` — manifest/payload
    only, no vector data), so the manifest can never disagree with the
    index it points at the moment it is written."""
    from .catalog import Catalog, CatalogEntry
    from .index import read_index_spec

    try:
        catalog = Catalog.load(args.dir)
    except FileNotFoundError:
        print(f"no catalog at {args.dir} (run `catalog init {args.dir}` "
              f"first)", file=sys.stderr)
        return 2
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    entry = CatalogEntry(name=args.name, path=args.path, kind="vector")
    try:
        spec, format_version = read_index_spec(catalog.resolve_path(entry))
    except FileNotFoundError as error:
        print(f"cannot add {args.name!r}: {error} (paths resolve against "
              f"the catalog directory unless absolute)", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"cannot add {args.name!r}: {error}", file=sys.stderr)
        return 2
    entry.kind = spec.kind
    entry.model_id = spec.model_id
    if args.replace and args.name in catalog:
        generation = catalog.replace(entry)
        verb = f"Replaced (generation {generation})"
    else:
        try:
            catalog.add(entry)
        except ValueError as error:
            if args.name in catalog:
                print(f"{error} (use --replace to swap it in place and "
                      f"bump its generation)", file=sys.stderr)
            else:
                print(str(error), file=sys.stderr)
            return 2
        verb = "Added"
    if args.default:
        catalog.set_default(args.name)
    catalog.save()
    marker = " (default)" if catalog.default_name == args.name else ""
    print(f"{verb} {args.name!r} -> {args.path} "
          f"({spec.describe()} format=v{format_version}) "
          f"[{len(catalog)} entries]{marker}")
    return 0


def cmd_catalog_list(args: argparse.Namespace) -> int:
    """``catalog list``: every entry with its live on-disk spec.

    An entry whose layout no longer opens is *listed*, marked
    unreadable — a stale catalog should be visible, not a crash."""
    from .catalog import Catalog
    from .index import read_index_spec

    try:
        catalog = Catalog.load(args.dir)
    except FileNotFoundError:
        print(f"no catalog at {args.dir} (run `catalog init {args.dir}` "
              f"first)", file=sys.stderr)
        return 2
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(f"{args.dir}: {len(catalog)} "
          f"{'entry' if len(catalog) == 1 else 'entries'}")
    for entry in catalog:
        marker = "*" if entry.name == catalog.default_name else " "
        try:
            spec, format_version = read_index_spec(
                catalog.resolve_path(entry))
        except (FileNotFoundError, ValueError) as error:
            print(f"{marker} {entry.name:<16} UNREADABLE ({error}) "
                  f"path={entry.path}")
            continue
        print(f"{marker} {entry.name:<16} {spec.describe()} "
              f"format=v{format_version} path={entry.path}")
    return 0


def cmd_serve_shard(args: argparse.Namespace) -> int:
    """``serve-shard``: run one cluster shard server.

    Serves the per-shard half of the scatter-gather contract
    (``POST /partial_query`` / ``POST /brute_query`` / ``GET
    /healthz``) over one saved layout — a single ``.npz`` or a sharded
    directory whose shards are co-located on this box.  A coordinator
    (``serve --cluster``) fans query ticks across a fleet of these.
    Serves until SIGINT/SIGTERM, then drains in-flight requests and
    exits 0.
    """
    import asyncio
    import signal

    from .cluster import ShardServer
    from .index import open_index

    try:
        index = open_index(args.path, mmap=not args.no_mmap)
    except (FileNotFoundError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2

    async def _serve() -> int:
        server = ShardServer(index, host=args.host, port=args.port,
                             log_path=args.log_file)
        await server.start()
        # The harness parses host:port out of this line — keep the URL
        # as the banner's final colon-bearing token.
        print(f"Serving shard layout ({len(index)} entries, "
              f"{len(server.shards)} local shard(s), "
              f"{'mmap' if not args.no_mmap else 'eager'}) on "
              f"http://{args.host}:{server.port} — POST /partial_query, "
              f"POST /brute_query, GET /healthz", flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-posix
                pass
        try:
            await stop.wait()
        finally:
            print("Draining in-flight requests ...", flush=True)
            await server.shutdown()
            print(f"Served {server.requests_total} requests "
                  f"({server.queries_total} queries)")
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    return 0


def _serve_prefork(args: argparse.Namespace, cache_size: int) -> int:
    """``serve --workers N``: a pre-fork supervisor plus N worker
    processes on one shared port.

    The parent validates the target *cheaply* (manifest/spec reads
    only — no vector data, no thread pools, nothing unsafe to fork
    over), binds the listen address once so ``--port 0`` resolves to a
    single shared port, then forks.  Each worker re-opens the target
    itself — memory-mapped unless ``--no-mmap``, so all workers map the
    same shard files and the kernel page cache keeps **one** resident
    copy of the vectors — and runs the ordinary
    :class:`~repro.serve.server.RetrievalServer` with its own caches
    and dispatchers.  SIGTERM/SIGINT drain every worker gracefully; a
    crashed worker is restarted with capped backoff; ``GET /stats``
    answers with per-worker sections plus a fleet aggregate.
    """
    import asyncio
    import os
    import signal

    from .catalog import Catalog
    from .index import read_index_spec
    from .serve import LOG_ENV, RetrievalServer
    from .serve.prefork import REUSEPORT_AVAILABLE, PreforkSupervisor

    is_catalog = Catalog.handles(args.path)
    if is_catalog:
        try:
            catalog = Catalog.load(args.path)
        except (FileNotFoundError, ValueError) as error:
            print(str(error), file=sys.stderr)
            return 2
        if not len(catalog):
            print(f"{args.path} is an empty catalog; register indexes "
                  f"with `catalog add` before serving", file=sys.stderr)
            return 2
        described = (f"catalog of {len(catalog)} indexes "
                     f"(default {catalog.default_name!r})")
    else:
        try:
            spec, _version = read_index_spec(args.path)
        except (FileNotFoundError, ValueError) as error:
            print(str(error), file=sys.stderr)
            return 2
        described = f"{spec.kind} index"

    log_base = args.log_file or os.environ.get(LOG_ENV) or None

    def worker_main(worker_id: int, sock) -> int:
        # Runs in the forked child: the target, the server, and every
        # cache/dispatcher are built HERE, post-fork, so workers share
        # nothing but the listen port and the mmapped file pages.
        from .index import open_index

        try:
            if is_catalog:
                target = Catalog.load(args.path)
            else:
                target = open_index(args.path, mmap=not args.no_mmap)
        except (FileNotFoundError, ValueError) as error:
            # Exit code 2 is the supervisor's fatal-config signal: a
            # target that won't open can never open on restart either,
            # so the fleet shuts down instead of crash-looping.
            print(f"worker {worker_id}: {error}", file=sys.stderr)
            return 2
        log_path = (f"{log_base}.worker{worker_id}" if log_base else None)

        async def _run() -> int:
            try:
                server = RetrievalServer(
                    target, host=args.host, sock=sock,
                    max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
                    jobs=args.jobs, mmap=not args.no_mmap,
                    max_open=args.max_open, cache_size=cache_size,
                    cache_ttl=args.cache_ttl, max_backlog=args.max_backlog,
                    worker_id=worker_id, stats_dir=supervisor.stats_dir,
                    log_path=log_path, quantized=args.quantized,
                    overfetch=args.overfetch, margin=args.margin)
                await server.start()
            except (FileNotFoundError, ValueError) as error:
                # Exit code 2 is the supervisor's fatal-config signal:
                # it shuts the fleet down instead of crash-looping.
                print(f"worker {worker_id}: {error}", file=sys.stderr)
                return 2
            loop = asyncio.get_running_loop()
            stop = asyncio.Event()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, stop.set)
                except NotImplementedError:  # pragma: no cover - non-posix
                    pass
            await stop.wait()
            await server.shutdown()
            return 0

        return asyncio.run(_run())

    supervisor = PreforkSupervisor(worker_main, args.workers,
                                   host=args.host, port=args.port)
    try:
        supervisor.start()
    except OSError as error:
        print(f"cannot bind {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 2
    mode = ("SO_REUSEPORT" if REUSEPORT_AVAILABLE
            else "shared inherited socket")
    print(f"Serving {described} with {args.workers} pre-fork workers "
          f"({mode}, {'mmap' if not args.no_mmap else 'eager'} pages "
          f"shared via page cache) on "
          f"http://{args.host}:{supervisor.port} — POST /query, "
          f"GET /healthz, GET /stats (per-worker + aggregate)",
          flush=True)
    code = supervisor.run()
    print(f"All {args.workers} workers drained "
          f"({supervisor.restarts_total} restart(s))", flush=True)
    return code


def cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: run the async retrieval server.

    ``path`` may be one saved index (single ``.npz`` or sharded
    directory) — opened once, memory-mapped unless ``--no-mmap`` — or a
    catalog directory, whose entries open lazily as queries route to
    them (``--max-open`` caps how many stay resident).  Alternatively
    ``--cluster topology.json`` serves a *distributed* index: a
    coordinator over the listed shard servers, same endpoints, same
    rankings.  Serves until SIGINT/SIGTERM, which triggers a graceful
    drain: in-flight requests complete, every open dispatcher flushes,
    then the process exits 0.
    """
    import asyncio
    import signal

    from .catalog import Catalog
    from .index import open_index
    from .serve import RetrievalServer

    if (args.path is None) == (args.cluster is None):
        print("serve takes exactly one target: a saved index / catalog "
              "path, or --cluster topology.json", file=sys.stderr)
        return 2
    if _validate_counts(args, "workers", "jobs", "max_batch", "max_open",
                        "max_backlog", "overfetch", "margin"):
        return 2
    if args.cluster is not None and args.quantized:
        print("--quantized applies to locally opened layouts; a cluster "
              "coordinator's shard servers quantize on their own side",
              file=sys.stderr)
        return 2
    if (args.overfetch is not None or args.margin is not None) \
            and not args.quantized:
        print("--overfetch/--margin tune the quantized shortlist and "
              "require --quantized", file=sys.stderr)
        return 2
    if args.max_wait_ms < 0:
        print("--max-wait-ms must be >= 0", file=sys.stderr)
        return 2
    if args.cache_size < 0:
        print("--cache-size must be >= 0 (0 disables the cache)",
              file=sys.stderr)
        return 2
    if args.cache_ttl is not None and args.cache_ttl <= 0:
        print("--cache-ttl must be a positive number of seconds",
              file=sys.stderr)
        return 2
    cache_size = 0 if args.no_cache else args.cache_size
    if args.workers > 1:
        if args.cluster is not None:
            print("--workers pre-forks local serving and cannot combine "
                  "with --cluster; run one coordinator process per port "
                  "instead", file=sys.stderr)
            return 2
        return _serve_prefork(args, cache_size)
    catalog = None
    remote = None
    if args.cluster is not None:
        from .cluster import ClusterError, RemoteShardedIndex, Topology

        try:
            topology = Topology.load(args.cluster)
            target = remote = RemoteShardedIndex.connect(topology)
        except (FileNotFoundError, ValueError, ClusterError) as error:
            print(str(error), file=sys.stderr)
            return 2
    elif Catalog.handles(args.path):
        try:
            catalog = Catalog.load(args.path)
        except (FileNotFoundError, ValueError) as error:
            print(str(error), file=sys.stderr)
            return 2
        if not len(catalog):
            print(f"{args.path} is an empty catalog; register indexes "
                  f"with `catalog add` before serving", file=sys.stderr)
            return 2
        target = catalog
    else:
        try:
            target = open_index(args.path, mmap=not args.no_mmap)
        except (FileNotFoundError, ValueError) as error:
            print(str(error), file=sys.stderr)
            return 2

    async def _serve() -> int:
        try:
            server = RetrievalServer(target, host=args.host, port=args.port,
                                     max_batch=args.max_batch,
                                     max_wait_ms=args.max_wait_ms,
                                     jobs=args.jobs, mmap=not args.no_mmap,
                                     max_open=args.max_open,
                                     cache_size=cache_size,
                                     cache_ttl=args.cache_ttl,
                                     max_backlog=args.max_backlog,
                                     log_path=args.log_file,
                                     quantized=args.quantized,
                                     overfetch=args.overfetch,
                                     margin=args.margin)
            await server.start()
        except (FileNotFoundError, ValueError) as error:
            # The catalog's default entry failed to open (missing or
            # stale layout), or --quantized named a layout with no int8
            # sidecar: refuse to start rather than 500 later.
            print(str(error), file=sys.stderr)
            return 2
        if remote is not None:
            print(f"Serving distributed index ({len(remote)} entries, "
                  f"{remote.n_shards} shard(s) across {remote.n_servers} "
                  f"server(s) per {args.cluster}) on "
                  f"http://{args.host}:{server.port} — POST /query, "
                  f"GET /healthz, GET /stats", flush=True)
        elif catalog is not None:
            names = ", ".join(entry.name for entry in catalog)
            cap = "all resident" if args.max_open is None \
                else f"max {args.max_open} open"
            print(f"Serving catalog of {len(catalog)} indexes ({names}; "
                  f"default {catalog.default_name!r}, "
                  f"{'mmap' if not args.no_mmap else 'eager'}, {cap}) on "
                  f"http://{args.host}:{server.port} — POST /query "
                  f"(optional \"index\" route), GET /indexes, "
                  f"GET /healthz, GET /stats", flush=True)
        else:
            mode = "mmap" if not args.no_mmap else "eager"
            if args.quantized:
                mode += ", int8 shortlist + exact rerank"
            print(f"Serving {target.kind} index ({len(target)} entries, "
                  f"{mode}) on "
                  f"http://{args.host}:{server.port} — POST /query, "
                  f"GET /healthz, GET /stats", flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-posix
                pass
        try:
            await stop.wait()
        finally:
            print("Draining in-flight requests ...", flush=True)
            await server.shutdown()
            print(f"Served {server.stats.requests_total} requests "
                  f"({server.stats.queries_total} queries)")
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    finally:
        if remote is not None:
            remote.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="TabBiN reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="corpus statistics")
    _add_common(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_train = sub.add_parser("train", help="pre-train TabBiN")
    _add_common(p_train)
    p_train.add_argument("--steps", type=int, default=80)
    p_train.add_argument("--vocab-size", type=int, default=700)
    p_train.add_argument("--out", default=None, help="checkpoint directory")
    p_train.set_defaults(func=cmd_train)

    p_eval = sub.add_parser("evaluate", help="run CC/TC/EC")
    _add_common(p_eval)
    p_eval.add_argument("--steps", type=int, default=80)
    p_eval.add_argument("--vocab-size", type=int, default=700)
    p_eval.add_argument("--model", default=None, help="checkpoint directory")
    p_eval.add_argument("--k", type=int, default=20)
    p_eval.add_argument("--max-queries", type=int, default=40)
    p_eval.set_defaults(func=cmd_evaluate)

    p_encode = sub.add_parser("encode", help="show token encoding")
    _add_common(p_encode)
    p_encode.add_argument("--table", type=int, default=0)
    p_encode.add_argument("--segment", default="row",
                          choices=("row", "column", "hmd", "vmd"))
    p_encode.add_argument("--limit", type=int, default=40)
    p_encode.add_argument("--vocab-size", type=int, default=500)
    p_encode.set_defaults(func=cmd_encode)

    p_index = sub.add_parser("index", help="corpus indexing")
    index_sub = p_index.add_subparsers(dest="index_command", required=True)

    p_build = index_sub.add_parser("build", help="batch-encode a corpus into "
                                                 "table + column indexes")
    _add_common(p_build)
    p_build.add_argument("--out", required=True, help="index directory")
    p_build.add_argument("--model", default=None, help="checkpoint directory")
    p_build.add_argument("--steps", type=int, default=80)
    p_build.add_argument("--vocab-size", type=int, default=700)
    p_build.add_argument("--variant", default="tblcomp1",
                         choices=("row", "tblcomp1"),
                         help="table embedding composition")
    p_build.add_argument("--batch-size", type=int, default=32,
                         help="sequences per encoder forward")
    p_build.add_argument("--workers", type=int, default=None,
                         help="scatter encoder batches across N processes "
                              "(results identical to serial; default serial)")
    p_build.add_argument("--shards", type=int, default=None,
                         help="emit a sharded directory layout with N shards "
                              "(MANIFEST.json + shard-XXXX.npz) instead of "
                              "one .npz per index")
    p_build.add_argument("--jobs", type=int, default=None,
                         help="fan the per-shard builds across N processes "
                              "(requires --shards; results identical to "
                              "serial)")
    p_build.add_argument("--quantize", action="store_true",
                         help="also write a per-vector int8 sidecar "
                              "alongside the fp vectors; `serve "
                              "--quantized` then scores candidates in "
                              "int8 and reranks the shortlist exactly "
                              "(rankings identical)")
    p_build.set_defaults(func=cmd_index_build)

    p_query = index_sub.add_parser("query", help="top-k neighbours from a "
                                                 "built index")
    _add_common(p_query)
    p_query.add_argument("--index", required=True, help="index directory "
                                                        "(from `index build`)")
    p_query.add_argument("--table", type=int, default=0,
                         help="query table position in the corpus")
    p_query.add_argument("--column", type=int, default=None,
                         help="query this column instead of the whole table")
    p_query.add_argument("--k", type=int, default=5)
    p_query.add_argument("--batch", default=None, metavar="FILE",
                         help="run many queries from FILE (.npz with a "
                              "'queries' matrix, or JSONL vectors) and print "
                              "ranked results per query as JSON lines; the "
                              "corpus arguments are ignored")
    p_query.add_argument("--kind", default="table",
                         choices=("table", "column"),
                         help="which index --batch queries target "
                              "(default: table)")
    p_query.add_argument("--jobs", type=int, default=None,
                         help="fan per-shard query work across N threads "
                              "(sharded layouts; results identical to "
                              "serial)")
    p_query.add_argument("--chunk", type=int, default=64,
                         help="with --batch, run queries through "
                              "query_many this many at a time, streaming "
                              "each chunk's JSON lines as it completes "
                              "(default 64; rankings are unaffected)")
    p_query.set_defaults(func=cmd_index_query)

    p_rm = index_sub.add_parser("rm", help="tombstone entries of a saved "
                                           "index by key")
    p_rm.add_argument("path", help="saved index (.npz file or sharded dir)")
    p_rm.add_argument("keys", nargs="+", metavar="KEY",
                      help="fingerprint keys to remove")
    p_rm.add_argument("--compact", action="store_true",
                      help="reclaim the tombstoned slots before saving")
    p_rm.set_defaults(func=cmd_index_rm)

    p_compact = index_sub.add_parser("compact", help="rebuild a saved index "
                                                     "without its tombstones")
    p_compact.add_argument("path", help="saved index (.npz file or sharded "
                                        "dir)")
    p_compact.set_defaults(func=cmd_index_compact)

    p_quantize = index_sub.add_parser(
        "quantize", help="retrofit an int8 sidecar onto a saved index "
                         "(in place; idempotent refresh if already "
                         "quantized)")
    p_quantize.add_argument("path", help="saved index (.npz file or "
                                         "sharded dir)")
    p_quantize.set_defaults(func=cmd_index_quantize)

    p_merge = index_sub.add_parser("merge", help="merge saved indexes "
                                                 "(fingerprint-deduped)")
    p_merge.add_argument("paths", nargs="+", metavar="PATH",
                         help="two or more saved indexes (.npz files or "
                              "sharded dirs, mixable)")
    p_merge.add_argument("--out", required=True,
                         help="output path (written in the first input's "
                              "layout)")
    p_merge.set_defaults(func=cmd_index_merge)

    p_catalog = sub.add_parser("catalog", help="manage a catalog of named "
                                               "indexes for multi-index "
                                               "serving")
    catalog_sub = p_catalog.add_subparsers(dest="catalog_command",
                                           required=True)

    p_cinit = catalog_sub.add_parser("init", help="start an empty "
                                                  "catalog.json")
    p_cinit.add_argument("dir", help="catalog directory (created if needed)")
    p_cinit.set_defaults(func=cmd_catalog_init)

    p_cadd = catalog_sub.add_parser("add", help="register a saved index "
                                                "under a name")
    p_cadd.add_argument("dir", help="catalog directory (from `catalog init`)")
    p_cadd.add_argument("--name", required=True,
                        help="name queries route to ({\"index\": NAME})")
    p_cadd.add_argument("--path", required=True,
                        help="saved index (.npz file or sharded dir); "
                             "relative paths resolve against the catalog "
                             "directory, keeping it relocatable")
    p_cadd.add_argument("--default", action="store_true",
                        help="make this entry the default route (requests "
                             "without an \"index\" field)")
    p_cadd.add_argument("--replace", action="store_true",
                        help="allow swapping an existing entry in place, "
                             "bumping its manifest generation so cached "
                             "results against the old layout are detectably "
                             "stale")
    p_cadd.set_defaults(func=cmd_catalog_add)

    p_clist = catalog_sub.add_parser("list", help="show every entry with "
                                                  "its live on-disk spec")
    p_clist.add_argument("dir", help="catalog directory")
    p_clist.set_defaults(func=cmd_catalog_list)

    p_shard = sub.add_parser("serve-shard", help="serve one cluster "
                                                 "shard's partial-query "
                                                 "surface over HTTP")
    p_shard.add_argument("path", help="saved layout this box holds: a "
                                      "single .npz shard or a sharded "
                                      "directory of co-located shards")
    p_shard.add_argument("--host", default="127.0.0.1")
    p_shard.add_argument("--port", type=int, default=8100,
                         help="listen port (0 picks an ephemeral port; "
                              "default 8100)")
    p_shard.add_argument("--no-mmap", action="store_true",
                         help="read vector matrices eagerly instead of "
                              "memory-mapping them")
    p_shard.add_argument("--log-file", default=None,
                         help="append an access/drain log to this file "
                              "(default: $REPRO_SERVE_LOG if set)")
    p_shard.set_defaults(func=cmd_serve_shard)

    p_serve = sub.add_parser("serve", help="serve a saved index, a "
                                           "catalog of them, or a cluster "
                                           "of shard servers over HTTP "
                                           "(micro-batched, memory-mapped)")
    p_serve.add_argument("path", nargs="?", default=None,
                         help="saved index (.npz file or sharded "
                              "dir), e.g. out/tables, or a catalog "
                              "directory holding catalog.json "
                              "(omit with --cluster)")
    p_serve.add_argument("--cluster", default=None, metavar="TOPOLOGY",
                         help="serve a distributed index instead of a "
                              "local path: topology.json listing shard "
                              "servers ({\"shards\": [{\"host\": ..., "
                              "\"port\": ...}, ...]})")
    p_serve.add_argument("--max-backlog", type=int, default=None,
                         help="bound on queries pending in a micro-batch "
                              "queue; overflow is answered 429 + "
                              "Retry-After (default: unbounded)")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="pre-fork this many worker processes "
                              "sharing the listen port (SO_REUSEPORT "
                              "where the platform has it, a shared "
                              "inherited socket elsewhere) and — via "
                              "mmap — the same resident vector pages; "
                              "crashed workers restart with capped "
                              "backoff; 1 (default) serves single-"
                              "process with no supervisor")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="listen port (0 picks an ephemeral port; "
                              "default 8080)")
    p_serve.add_argument("--max-batch", type=int, default=32,
                         help="flush a micro-batch once this many queries "
                              "are pending (default 32)")
    p_serve.add_argument("--max-wait-ms", type=float, default=2.0,
                         help="flush a micro-batch this long after its "
                              "first query arrives (default 2.0)")
    p_serve.add_argument("--jobs", type=int, default=None,
                         help="fan per-shard work of each micro-batch over "
                              "N threads (sharded layouts)")
    p_serve.add_argument("--max-open", type=int, default=None,
                         help="cap on concurrently open catalog entries "
                              "(LRU-evicted beyond it; default unbounded; "
                              "ignored for a bare index path)")
    p_serve.add_argument("--no-mmap", action="store_true",
                         help="read vector matrices eagerly instead of "
                              "memory-mapping them")
    p_serve.add_argument("--cache-size", type=int, default=1024,
                         help="per-index result-cache bound: max entries "
                              "per tier (default 1024; 0 disables caching)")
    p_serve.add_argument("--cache-ttl", type=float, default=None,
                         help="expire cache entries after this many "
                              "seconds (default: no expiry)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="serve every query uncached (same as "
                              "--cache-size 0)")
    p_serve.add_argument("--quantized", action="store_true",
                         help="score candidates through the layout's int8 "
                              "sidecar and rerank the shortlist exactly "
                              "(rankings identical to fp; requires a "
                              "layout built with `index build --quantize` "
                              "or retrofitted with `index quantize`)")
    p_serve.add_argument("--overfetch", type=int, default=None,
                         help="with --quantized: shortlist "
                              "max(k*overfetch, k+margin) candidates for "
                              "exact rerank (default 4)")
    p_serve.add_argument("--margin", type=int, default=None,
                         help="with --quantized: additive shortlist slack "
                              "(default 32; 0 allowed)")
    p_serve.add_argument("--log-file", default=None,
                         help="append an access/drain log to this file "
                              "(default: $REPRO_SERVE_LOG if set)")
    p_serve.set_defaults(func=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
