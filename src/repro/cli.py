"""Command-line interface for the TabBiN reproduction.

Subcommands::

    python -m repro.cli stats    <dataset>                 corpus statistics
    python -m repro.cli train    <dataset> --out DIR       pre-train TabBiN
    python -m repro.cli evaluate <dataset> [--model DIR]   run CC/TC/EC
    python -m repro.cli encode   <dataset> --table N       show Figure-3 style
                                                           token encoding

Datasets are the five generated corpora (webtables, covidkg, cancerkg,
saus, cius); all runs are seeded and CPU-sized.
"""

from __future__ import annotations

import argparse
import sys

from .core import TabBiNConfig, TabBiNEmbedder
from .datasets import PROFILES, corpus_stats, load_dataset
from .eval import (
    ResultsTable,
    collect_entities,
    column_clustering,
    entity_clustering,
    table_clustering,
)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dataset", choices=sorted(PROFILES),
                        help="which generated corpus to use")
    parser.add_argument("--n-tables", type=int, default=24,
                        help="corpus size (default 24)")
    parser.add_argument("--seed", type=int, default=0)


def cmd_stats(args: argparse.Namespace) -> int:
    tables = load_dataset(args.dataset, n_tables=args.n_tables, seed=args.seed)
    stats = corpus_stats(tables)
    out = ResultsTable(f"Corpus statistics: {args.dataset}", columns=["value"])
    out.add("tables", "value", stats.n_tables)
    out.add("avg rows", "value", f"{stats.avg_rows:.1f}")
    out.add("avg cols", "value", f"{stats.avg_cols:.1f}")
    out.add("non-relational", "value", f"{stats.frac_non_relational:.0%}")
    out.add("with VMD", "value", stats.n_with_vmd)
    out.add("hierarchical metadata", "value", stats.n_hierarchical)
    out.add("nested", "value", stats.n_nested)
    for entity_type, count in sorted(stats.entity_counts.items()):
        out.add(f"entities: {entity_type}", "value", count)
    out.show()
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    tables = load_dataset(args.dataset, n_tables=args.n_tables, seed=args.seed)
    print(f"Pre-training TabBiN on {len(tables)} {args.dataset} tables "
          f"({args.steps} steps per segment model) ...")
    embedder, stats = TabBiNEmbedder.build(
        tables, config=TabBiNConfig.small(), steps=args.steps,
        vocab_size=args.vocab_size, seed=args.seed,
    )
    for segment, s in stats.items():
        print(f"  {segment:7s} loss {s.losses[0]:.3f} -> {s.final_loss:.3f} "
              f"({s.steps} steps)")
    if args.out:
        embedder.save(args.out)
        print(f"Saved checkpoint to {args.out}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    tables = load_dataset(args.dataset, n_tables=args.n_tables, seed=args.seed)
    if args.model:
        print(f"Loading checkpoint from {args.model} ...")
        embedder = TabBiNEmbedder.load(args.model, TabBiNConfig.small())
    else:
        print(f"No checkpoint given; pre-training {args.steps} steps ...")
        embedder, _ = TabBiNEmbedder.build(
            tables, config=TabBiNConfig.small(), steps=args.steps,
            vocab_size=args.vocab_size, seed=args.seed,
        )
    out = ResultsTable(f"TabBiN on {args.dataset} (MAP/MRR@{args.k})",
                       columns=["result", "queries"])
    cc = column_clustering(tables, embedder.column_embedding,
                           k=args.k, max_queries=args.max_queries)
    out.add("Column Clustering", "result", str(cc))
    out.add("Column Clustering", "queries", cc.n_queries)
    tc = table_clustering(tables, embedder.table_embedding, k=args.k)
    out.add("Table Clustering", "result", str(tc))
    out.add("Table Clustering", "queries", tc.n_queries)
    entities = collect_entities(tables, max_per_type=25)
    if len(entities) >= 2:
        ec = entity_clustering(entities, embedder.entity_embedding,
                               k=args.k, max_queries=args.max_queries)
        out.add("Entity Clustering", "result", str(ec))
        out.add("Entity Clustering", "queries", ec.n_queries)
    out.show()
    return 0


def cmd_encode(args: argparse.Namespace) -> int:
    from .core import TabBiNSerializer, corpus_texts
    from .text import TYPE_NAMES, TypeInference, WordPieceTokenizer

    tables = load_dataset(args.dataset, n_tables=args.n_tables, seed=args.seed)
    if not 0 <= args.table < len(tables):
        print(f"--table must be in [0, {len(tables)})", file=sys.stderr)
        return 2
    table = tables[args.table]
    tokenizer = WordPieceTokenizer.train(corpus_texts(tables),
                                         vocab_size=args.vocab_size)
    config = TabBiNConfig.small().with_vocab(len(tokenizer.vocab))
    serializer = TabBiNSerializer(tokenizer, TypeInference(), config)
    seq = serializer.serialize(table, args.segment)[0]
    print(f"{table}\ncaption: {table.caption}\n")
    header = f"{'pos':>3}  {'token':16} {'num':12} {'cpos':>4} " \
             f"{'coords (vr,vc,hr,hc,nr,nc)':28} {'type':12} feat"
    print(header)
    for pos in range(min(len(seq), args.limit)):
        token = tokenizer.vocab.token(int(seq.token_ids[pos]))
        num = ",".join(str(int(x)) for x in seq.numeric[pos])
        coords = ",".join(str(int(x)) for x in seq.coords[pos])
        bits = "".join(str(int(b)) for b in seq.features[pos])
        print(f"{pos:>3}  {token:16} {num:12} {int(seq.cell_pos[pos]):>4} "
              f"{coords:28} {TYPE_NAMES[int(seq.type_ids[pos])]:12} {bits}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="TabBiN reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="corpus statistics")
    _add_common(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_train = sub.add_parser("train", help="pre-train TabBiN")
    _add_common(p_train)
    p_train.add_argument("--steps", type=int, default=80)
    p_train.add_argument("--vocab-size", type=int, default=700)
    p_train.add_argument("--out", default=None, help="checkpoint directory")
    p_train.set_defaults(func=cmd_train)

    p_eval = sub.add_parser("evaluate", help="run CC/TC/EC")
    _add_common(p_eval)
    p_eval.add_argument("--steps", type=int, default=80)
    p_eval.add_argument("--vocab-size", type=int, default=700)
    p_eval.add_argument("--model", default=None, help="checkpoint directory")
    p_eval.add_argument("--k", type=int, default=20)
    p_eval.add_argument("--max-queries", type=int, default=40)
    p_eval.set_defaults(func=cmd_evaluate)

    p_encode = sub.add_parser("encode", help="show token encoding")
    _add_common(p_encode)
    p_encode.add_argument("--table", type=int, default=0)
    p_encode.add_argument("--segment", default="row",
                          choices=("row", "column", "hmd", "vmd"))
    p_encode.add_argument("--limit", type=int, default=40)
    p_encode.add_argument("--vocab-size", type=int, default=500)
    p_encode.set_defaults(func=cmd_encode)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
