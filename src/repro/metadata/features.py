"""Featurization of table lines (rows/columns) for metadata labeling.

The metadata classifiers (Section 2.3, citing [40]) decide whether a
line of a raw grid is metadata or data.  Each cell becomes a small
feature vector capturing the signals that separate header labels from
values: numeric shape, units, length, capitalization, vocabulary hits.
"""

from __future__ import annotations

import numpy as np

from ..tables.table import Table
from ..tables.values import NumberValue, RangeValue, GaussianValue, parse_value
from ..text.tokenizer import pretokenize
from ..text.units import detect_trailing_unit

#: Per-cell feature dimensionality.
NUM_CELL_FEATURES = 8


def cell_features(text: str, position: float) -> np.ndarray:
    """Feature vector for one cell of a line.

    ``position`` is the cell's relative index within the line in [0, 1].
    """
    stripped = text.strip()
    value = parse_value(stripped)
    tokens = pretokenize(stripped)
    is_numeric = isinstance(value, (NumberValue, RangeValue, GaussianValue))
    digits = sum(c.isdigit() for c in stripped)
    _unit, unit_cat = detect_trailing_unit(stripped)
    return np.array([
        1.0 if is_numeric else 0.0,
        digits / max(len(stripped), 1),
        min(len(tokens), 8) / 8.0,
        min(len(stripped), 40) / 40.0,
        1.0 if unit_cat is not None else 0.0,
        1.0 if stripped and stripped[0].isupper() else 0.0,
        1.0 if not stripped else 0.0,
        position,
    ])


def line_features(cells: list[str]) -> np.ndarray:
    """Feature sequence for a line, shape ``(len(cells), F)``."""
    n = max(len(cells), 1)
    return np.stack([
        cell_features(text, i / n) for i, text in enumerate(cells)
    ]) if cells else np.zeros((0, NUM_CELL_FEATURES))


def labeled_lines_from_table(table: Table) -> list[tuple[np.ndarray, int, str]]:
    """(features, label, orientation) training items from one table.

    Header-row levels are positive horizontal lines; data rows negative.
    VMD levels are positive vertical lines; data columns negative.
    """
    items: list[tuple[np.ndarray, int, str]] = []
    for level in table.hmd_tree.levels:
        texts = [slot if slot is not None else "" for slot in level]
        items.append((line_features(texts), 1, "row"))
    for i in range(table.n_rows):
        items.append((line_features([c.text for c in table.row(i)]), 0, "row"))
    for level in table.vmd_tree.levels:
        texts = [slot if slot is not None else "" for slot in level]
        items.append((line_features(texts), 1, "col"))
    for j in range(table.n_cols):
        items.append((line_features([c.text for c in table.column(j)]), 0, "col"))
    return items


def training_set_from_tables(tables: list[Table]
                             ) -> tuple[list[np.ndarray], list[int]]:
    """Flatten a corpus into (line feature sequences, labels)."""
    lines: list[np.ndarray] = []
    labels: list[int] = []
    for table in tables:
        for features, label, _orientation in labeled_lines_from_table(table):
            if len(features):
                lines.append(features)
                labels.append(label)
    return lines, labels
