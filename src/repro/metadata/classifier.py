"""Binary metadata classifiers: bi-GRU and CNN architectures.

Section 2.3: "We designed and trained our own binary metadata
classifiers based on Deep-learning bi-GRU and CNN architectures
specifically for highly accurate labeling of multi-layer metadata — both
horizontal and vertical."  A classifier consumes one line (row or
column) of a raw grid as a sequence of per-cell feature vectors and
outputs P(metadata).
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    Adam,
    BiGRU,
    Conv1d,
    GlobalMaxPool1d,
    Linear,
    Module,
    Tensor,
    binary_cross_entropy_with_logits,
)
from .features import NUM_CELL_FEATURES, line_features


class BiGRUClassifier(Module):
    """bi-GRU over the cell sequence, mean-pooled, linear logit."""

    def __init__(self, feature_dim: int = NUM_CELL_FEATURES, hidden: int = 16,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.gru = BiGRU(feature_dim, hidden, rng=rng)
        self.head = Linear(2 * hidden, 1, rng=rng)

    def forward(self, lines: Tensor) -> Tensor:
        """Logits for a padded batch ``(B, seq, F)``; shape ``(B,)``."""
        pooled = self.gru.pooled(lines)
        return self.head(pooled).reshape(-1)


class CNNClassifier(Module):
    """1-D convolution over the cell sequence, max-pooled, linear logit."""

    def __init__(self, feature_dim: int = NUM_CELL_FEATURES, hidden: int = 16,
                 kernel_size: int = 3, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.conv = Conv1d(feature_dim, hidden, kernel_size, rng=rng)
        self.pool = GlobalMaxPool1d()
        self.head = Linear(hidden, 1, rng=rng)

    def forward(self, lines: Tensor) -> Tensor:
        pooled = self.pool(self.conv(lines).relu())
        return self.head(pooled).reshape(-1)


class MetadataClassifier:
    """Training/inference wrapper around either architecture."""

    def __init__(self, architecture: str = "bigru", hidden: int = 16,
                 seed: int = 0):
        rng = np.random.default_rng(seed)
        if architecture == "bigru":
            self.model: Module = BiGRUClassifier(hidden=hidden, rng=rng)
        elif architecture == "cnn":
            self.model = CNNClassifier(hidden=hidden, rng=rng)
        else:
            raise ValueError("architecture must be 'bigru' or 'cnn'")
        self.architecture = architecture
        self.seed = seed

    # ------------------------------------------------------------------
    @staticmethod
    def _pad(lines: list[np.ndarray]) -> np.ndarray:
        n = max(len(l) for l in lines)
        batch = np.zeros((len(lines), n, NUM_CELL_FEATURES))
        for i, line in enumerate(lines):
            batch[i, : len(line)] = line
        return batch

    def fit(self, lines: list[np.ndarray], labels: list[int],
            epochs: int = 30, batch_size: int = 16,
            lr: float = 1e-2) -> list[float]:
        if len(lines) != len(labels) or not lines:
            raise ValueError("lines and labels must align and be non-empty")
        rng = np.random.default_rng(self.seed)
        optimizer = Adam(self.model.parameters(), lr=lr)
        order = np.arange(len(lines))
        losses: list[float] = []
        self.model.train()
        for _ in range(epochs):
            rng.shuffle(order)
            for start in range(0, len(order), batch_size):
                chunk = order[start:start + batch_size]
                batch = Tensor(self._pad([lines[i] for i in chunk]))
                target = np.array([labels[i] for i in chunk], dtype=float)
                logits = self.model(batch)
                loss = binary_cross_entropy_with_logits(logits, target)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                losses.append(float(loss.data))
        self.model.eval()
        return losses

    def predict_proba(self, lines: list[np.ndarray]) -> np.ndarray:
        was_training = self.model.training
        self.model.eval()
        try:
            logits = self.model(Tensor(self._pad(lines)))
        finally:
            self.model.train(was_training)
        return 1.0 / (1.0 + np.exp(-logits.data))

    def predict(self, lines: list[np.ndarray],
                threshold: float = 0.5) -> list[int]:
        return [int(p >= threshold) for p in self.predict_proba(lines)]

    def accuracy(self, lines: list[np.ndarray], labels: list[int]) -> float:
        predictions = self.predict(lines)
        return float(np.mean([p == l for p, l in zip(predictions, labels)]))

    # ------------------------------------------------------------------
    def label_grid(self, grid: list[list[str]],
                   max_header_rows: int = 3,
                   max_header_cols: int = 2) -> tuple[int, int]:
        """Predict (n_header_rows, n_header_cols) for a raw grid.

        Scans leading rows/columns until the classifier stops predicting
        metadata — the labeling step that precedes parsing when corpora
        arrive with "unlabeled or noisy metadata".
        """
        n_header_rows = 0
        for row in grid[:max_header_rows]:
            if self.predict([line_features(row)])[0]:
                n_header_rows += 1
            else:
                break
        n_header_cols = 0
        width = len(grid[0]) if grid else 0
        for j in range(min(max_header_cols, width)):
            column = [row[j] for row in grid[n_header_rows:]]
            if column and self.predict([line_features(column)])[0]:
                n_header_cols += 1
            else:
                break
        if n_header_rows == 0:
            n_header_rows = 1  # a table always has at least one header row
        return n_header_rows, n_header_cols
