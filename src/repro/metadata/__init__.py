"""Metadata labeling: bi-GRU/CNN classifiers and heuristic fallback."""

from .classifier import BiGRUClassifier, CNNClassifier, MetadataClassifier
from .features import (
    NUM_CELL_FEATURES,
    cell_features,
    labeled_lines_from_table,
    line_features,
    training_set_from_tables,
)
from .heuristics import is_metadata_line, label_grid_heuristic

__all__ = [
    "MetadataClassifier", "BiGRUClassifier", "CNNClassifier",
    "cell_features", "line_features", "labeled_lines_from_table",
    "training_set_from_tables", "NUM_CELL_FEATURES",
    "is_metadata_line", "label_grid_heuristic",
]
