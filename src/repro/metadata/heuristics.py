"""Rule-based metadata labeling fallback.

The paper notes one "can also use other existing techniques for labeling
metadata [50, 63]"; this heuristic labeler plays that role and doubles
as a sanity baseline for the learned classifiers.
"""

from __future__ import annotations

from ..tables.values import GaussianValue, NumberValue, RangeValue, parse_value


def is_metadata_line(cells: list[str], numeric_threshold: float = 0.3,
                     distinct_threshold: float = 0.6) -> bool:
    """Heuristic: metadata lines are mostly non-numeric and distinct.

    Header labels are names, not measurements: few numeric cells, few
    repeated values, and non-empty text.
    """
    filled = [c.strip() for c in cells if c and c.strip()]
    if not filled:
        return False
    numeric = sum(
        isinstance(parse_value(c), (NumberValue, RangeValue, GaussianValue))
        for c in filled
    )
    if numeric / len(filled) > numeric_threshold:
        return False
    distinct = len({c.lower() for c in filled}) / len(filled)
    return distinct >= distinct_threshold


def label_grid_heuristic(grid: list[list[str]], max_header_rows: int = 3,
                         max_header_cols: int = 2) -> tuple[int, int]:
    """(n_header_rows, n_header_cols) by scanning with the rule above."""
    n_header_rows = 0
    for row in grid[:max_header_rows]:
        if is_metadata_line(row):
            n_header_rows += 1
        else:
            break
    n_header_rows = max(n_header_rows, 1)
    n_header_cols = 0
    width = len(grid[0]) if grid else 0
    for j in range(min(max_header_cols, width)):
        column = [row[j] for row in grid[n_header_rows:]]
        if column and is_metadata_line(column):
            n_header_cols += 1
        else:
            break
    return n_header_rows, n_header_cols
