"""TabBiN core: the paper's primary contribution.

Public surface:

- :class:`TabBiNConfig` — hyperparameters incl. the paper's full-scale
  preset and the four ablation switches.
- :class:`TabBiNSerializer` / :class:`EncodedSequence` — table → token
  sequences with the six per-token feature streams.
- :func:`build_visibility` — the metadata-aware attention mask.
- :class:`TabBiNEmbedding` — the six-component embedding layer.
- :class:`TabBiNModel` — embedding layer + masked transformer encoder.
- :class:`TabBiNPretrainer` — MLM + Cell-level-Cloze pre-training.
- :class:`TabBiNEmbedder` — end-user API over the four segment models.
- composite embeddings for numbers / ranges / gaussians (Figure 4).
"""

from .composite import (
    gaussian_composite,
    numeric_composite,
    range_composite,
    value_composite,
)
from .config import SEGMENTS, TabBiNConfig
from .embedder import TabBiNEmbedder, corpus_texts
from .embedding_layer import TabBiNEmbedding
from .model import MLMHead, TabBiNModel
from .numeric_features import NULL_FEATURES, numeric_features
from .pretrain import PretrainStats, TabBiNPretrainer
from .serialize import CellRef, EncodedSequence, TabBiNSerializer
from .visibility import build_visibility, full_visibility, visibility_for

__all__ = [
    "TabBiNConfig", "SEGMENTS",
    "TabBiNSerializer", "EncodedSequence", "CellRef",
    "build_visibility", "full_visibility", "visibility_for",
    "TabBiNEmbedding", "TabBiNModel", "MLMHead",
    "TabBiNPretrainer", "PretrainStats",
    "TabBiNEmbedder", "corpus_texts",
    "numeric_features", "NULL_FEATURES",
    "numeric_composite", "range_composite", "gaussian_composite",
    "value_composite",
]
