"""High-level TabBiN API: build, pre-train, and query embeddings.

A :class:`TabBiNEmbedder` owns the tokenizer, type inference, and the
four pre-trained segment models (rows, columns, HMD, VMD — Section 3.3),
plus an optional caption encoder (the fine-tuned BioBERT of Figure 5a).
It produces the composite embeddings the paper evaluates:

- ``column_embedding``  — TabBiN-colcomp: attribute embedding from the
  HMD model ⊕ mean data-cell embedding from the column model (Fig. 5b).
- ``table_embedding``   — TabBiN-tblcomp1/2: row-model data mean ⊕ HMD
  mean ⊕ VMD mean (⊕ caption embedding for tblcomp2) (Fig. 5a).
- ``entity_embedding``  — column-model encoding of an entity string
  (Section 4.3 uses the TabBiN-column model for EC).
"""

from __future__ import annotations

import numpy as np

from ..tables.table import Table
from ..text.tokenizer import WordPieceTokenizer
from ..text.types import TypeInference
from .config import SEGMENTS, TabBiNConfig
from .model import TabBiNModel
from .pretrain import PretrainStats, TabBiNPretrainer
from .serialize import TabBiNSerializer
from ..nn import load_checkpoint, save_checkpoint


def corpus_texts(corpus: list[Table]) -> list[str]:
    """All strings in a corpus (cells, metadata, captions) for tokenizer
    training."""
    texts: list[str] = []
    for table in corpus:
        texts.append(table.caption)
        texts.extend(l.label for l in table.hmd_labels())
        texts.extend(l.label for l in table.vmd_labels())
        for cell in table.all_cells():
            if cell.has_nested_table:
                texts.extend(corpus_texts([cell.nested_table]))
            else:
                texts.append(cell.text)
    return texts


class TabBiNEmbedder:
    """Pre-trained TabBiN models behind one embedding interface."""

    def __init__(self, tokenizer: WordPieceTokenizer,
                 type_inference: TypeInference,
                 config: TabBiNConfig,
                 models: dict[str, TabBiNModel],
                 caption_encoder=None, store=None):
        missing = set(SEGMENTS) - set(models)
        if missing:
            raise ValueError(f"missing segment models: {sorted(missing)}")
        self.tokenizer = tokenizer
        self.types = type_inference
        self.config = config
        self.models = models
        self.caption_encoder = caption_encoder
        self.serializer = TabBiNSerializer(tokenizer, type_inference, config)
        if store is None:
            from ..index.store import EmbeddingStore

            store = EmbeddingStore(self.serializer, self.models)
        self.store = store

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, corpus: list[Table], config: TabBiNConfig | None = None,
              steps: int = 150, vocab_size: int = 1500, seed: int = 0,
              type_inference: TypeInference | None = None,
              caption_encoder=None) -> tuple["TabBiNEmbedder", dict[str, PretrainStats]]:
        """Train a tokenizer and pre-train the four segment models.

        ``steps`` is per segment model (the paper uses 50,000 at
        H = 768; the default here is sized for CPU runs — the loop and
        objectives are identical).
        """
        config = config or TabBiNConfig.small()
        tokenizer = WordPieceTokenizer.train(corpus_texts(corpus), vocab_size=vocab_size)
        config = config.with_vocab(len(tokenizer.vocab))
        types = type_inference or TypeInference()
        serializer = TabBiNSerializer(tokenizer, types, config)

        rng = np.random.default_rng(seed)
        models: dict[str, TabBiNModel] = {}
        stats: dict[str, PretrainStats] = {}
        for segment in SEGMENTS:
            sequences = []
            for table in corpus:
                sequences.extend(serializer.serialize(table, segment))
            model = TabBiNModel(config, pad_id=tokenizer.vocab.pad_id,
                                rng=np.random.default_rng(rng.integers(1 << 31)))
            if sequences and steps > 0:
                trainer = TabBiNPretrainer(model, tokenizer.vocab, config,
                                           seed=int(rng.integers(1 << 31)))
                stats[segment] = trainer.train(sequences, steps=steps)
            else:
                stats[segment] = PretrainStats()
            model.eval()
            models[segment] = model
        embedder = cls(tokenizer, types, config, models,
                       caption_encoder=caption_encoder)
        return embedder, stats

    # ------------------------------------------------------------------
    # Pooled segment vectors (cached per table *content*, not identity —
    # an id(table) key could alias a GC'd table's reused id)
    # ------------------------------------------------------------------
    def _pooled(self, table: Table, segment: str) -> list[tuple]:
        """(CellRef, vector) pairs for a table under one segment model."""
        return self.store.pooled(table, segment)

    def precompute(self, corpus: list[Table],
                   batch_size: int | None = None,
                   workers: int | None = None) -> int:
        """Batch-encode a whole corpus through all four segment models.

        Sequences are grouped across tables into fixed-size padded
        batches (see :class:`~repro.index.store.EmbeddingStore`), which
        is substantially faster than the per-table lazy path when
        embedding many tables.  ``workers=N`` scatters those batches
        across a process pool with results identical to the serial path.
        Returns the number of newly encoded (table, segment) entries.
        """
        return self.store.encode_corpus(corpus, batch_size=batch_size,
                                        workers=workers)

    def clear_cache(self) -> None:
        self.store.clear()

    def fingerprint(self) -> str:
        """Content hash of everything that determines this embedder's
        vector space: vocabulary, config, and all segment-model weights.

        Two embedders with equal fingerprints produce identical
        embeddings for any table, so indexes stamped with it (see
        :attr:`~repro.index.index.VectorIndex.model_id`) can refuse to
        merge vectors from a different checkpoint.

        Computed once and memoized: embedders are inference-frozen after
        ``build``/``load`` (at paper scale, hashing every weight per
        ``TableIndex.build`` *and* ``ColumnIndex.build`` would be two
        full redundant passes over the parameters).
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        import hashlib

        digest = hashlib.blake2b(digest_size=16)
        digest.update("\x00".join(self.tokenizer.vocab).encode("utf-8"))
        digest.update(repr(self.config).encode("utf-8"))
        for segment in sorted(self.models):
            digest.update(segment.encode("utf-8"))
            state = self.models[segment].state_dict()
            for name in sorted(state):
                digest.update(name.encode("utf-8"))
                digest.update(np.ascontiguousarray(state[name]).tobytes())
        self._fingerprint = digest.hexdigest()
        return self._fingerprint

    @property
    def hidden(self) -> int:
        return self.config.hidden

    # ------------------------------------------------------------------
    # Embeddings
    # ------------------------------------------------------------------
    def column_data_embedding(self, table: Table, j: int) -> np.ndarray:
        """Mean data-cell vector of column ``j`` (TabBiN-column model)."""
        vectors = [v for ref, v in self._pooled(table, "column")
                   if ref.kind == "data" and ref.col == j]
        return _mean(vectors, self.hidden)

    def attribute_embedding(self, table: Table, j: int) -> np.ndarray:
        """Vector of column ``j``'s deepest HMD label (TabBiN-HMD model)."""
        candidates = [
            (ref, v) for ref, v in self._pooled(table, "hmd")
            if ref.span[0] <= j < ref.span[1]
        ]
        if not candidates:
            return np.zeros(self.hidden)
        deepest = max(ref.row for ref, _ in candidates)
        vectors = [v for ref, v in candidates if ref.row == deepest]
        return _mean(vectors, self.hidden)

    def column_embedding(self, table: Table, j: int,
                         composite: bool = True) -> np.ndarray:
        """TabBiN-colcomp (Figure 5b): E_cj ⊕ mean(E_d) — or just the
        data part with ``composite=False`` (the Table 10 baseline)."""
        data = self.column_data_embedding(table, j)
        if not composite:
            return data
        return np.concatenate([self.attribute_embedding(table, j), data])

    def segment_mean(self, table: Table, segment: str) -> np.ndarray:
        """Mean vector over all refs of a segment (rows/HMD/VMD)."""
        vectors = [v for _ref, v in self._pooled(table, segment)]
        return _mean(vectors, self.hidden)

    def caption_embedding(self, caption: str) -> np.ndarray:
        """Caption vector from the fine-tuned text encoder when present,
        else from the TabBiN row model."""
        if self.caption_encoder is not None:
            return self.caption_encoder.embed_text(caption)
        return self.entity_embedding(caption, segment="row")

    def table_embedding(self, table: Table,
                        variant: str = "tblcomp2") -> np.ndarray:
        """Composite table vector (Figure 5a, Section 4.5).

        Variants: ``row`` (data mean only), ``tblcomp1`` (row ⊕ HMD ⊕
        VMD), ``tblcomp2`` (tblcomp1 ⊕ caption embedding).
        """
        row = self.segment_mean(table, "row")
        if variant == "row":
            return row
        hmd = self.segment_mean(table, "hmd")
        vmd = self.segment_mean(table, "vmd")
        parts = [row, hmd, vmd]
        if variant == "tblcomp1":
            return np.concatenate(parts)
        if variant == "tblcomp2":
            parts.append(self.caption_embedding(table.caption))
            return np.concatenate(parts)
        raise ValueError(f"unknown table embedding variant: {variant!r}")

    def entity_embedding(self, text: str, segment: str = "column") -> np.ndarray:
        """Vector for a standalone entity string (Section 4.3)."""
        sequence = self.serializer.serialize_text(text, segment=segment)
        pooled = self.models[segment].encode_pooled([sequence])[0]
        if not pooled:
            return np.zeros(self.hidden)
        return next(iter(pooled.values()))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory) -> None:
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.tokenizer.vocab.save(directory / "vocab.json")
        for segment, model in self.models.items():
            save_checkpoint(model, directory / f"{segment}.npz",
                            meta={"segment": segment,
                                  "hidden": self.config.hidden})

    @classmethod
    def load(cls, directory, config: TabBiNConfig,
             type_inference: TypeInference | None = None) -> "TabBiNEmbedder":
        from pathlib import Path

        from ..text.vocab import Vocabulary

        directory = Path(directory)
        vocab = Vocabulary.load(directory / "vocab.json")
        tokenizer = WordPieceTokenizer(vocab)
        config = config.with_vocab(len(vocab))
        models: dict[str, TabBiNModel] = {}
        for segment in SEGMENTS:
            model = TabBiNModel(config, pad_id=vocab.pad_id)
            load_checkpoint(model, directory / f"{segment}.npz")
            model.eval()
            models[segment] = model
        return cls(tokenizer, type_inference or TypeInference(), config, models)


def _mean(vectors: list[np.ndarray], dim: int) -> np.ndarray:
    if not vectors:
        return np.zeros(dim)
    return np.mean(vectors, axis=0)
