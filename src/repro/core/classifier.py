"""TabBiN's entity-classification head for the DITTO comparison.

Section 4 ("DITTO"): "we added a linear layer followed by softmax layer
on top of our TabBiN transformer layers, and an ensemble, so TabBiN can
also perform binary classification."  Pair features come from the frozen
TabBiN column model — ``[a, b, |a-b|, a*b]`` of the two entity
embeddings — and an ensemble of independently initialized heads votes by
averaged softmax.
"""

from __future__ import annotations

import numpy as np

from ..datasets.magellan import EntityPair
from ..eval.metrics import f1_score
from ..nn import Adam, Linear, Module, Tensor, cross_entropy
from .embedder import TabBiNEmbedder


class _PairHead(Module):
    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.linear = Linear(dim, 2, rng=rng)

    def forward(self, features: Tensor) -> Tensor:
        return self.linear(features)


class TabBiNMatcher:
    """Binary entity-match classifier over frozen TabBiN embeddings."""

    def __init__(self, embedder: TabBiNEmbedder, ensemble: int = 3,
                 seed: int = 0):
        if ensemble < 1:
            raise ValueError("ensemble size must be >= 1")
        self.embedder = embedder
        self.ensemble = ensemble
        self.seed = seed
        self._heads: list[_PairHead] = []
        self._feature_cache: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _embed(self, text: str) -> np.ndarray:
        hit = self._feature_cache.get(text)
        if hit is None:
            hit = self.embedder.entity_embedding(text)
            self._feature_cache[text] = hit
        return hit

    def pair_features(self, pair: EntityPair) -> np.ndarray:
        a, b = self._embed(pair.left), self._embed(pair.right)
        return np.concatenate([a, b, np.abs(a - b), a * b])

    def _feature_matrix(self, pairs: list[EntityPair]) -> np.ndarray:
        return np.stack([self.pair_features(p) for p in pairs])

    # ------------------------------------------------------------------
    def fit(self, pairs: list[EntityPair], epochs: int = 60,
            lr: float = 5e-3) -> list[float]:
        features = self._feature_matrix(pairs)
        labels = np.array([p.label for p in pairs], dtype=np.int64)
        dim = features.shape[1]
        self._heads = []
        losses: list[float] = []
        for member in range(self.ensemble):
            rng = np.random.default_rng(self.seed + member)
            head = _PairHead(dim, rng)
            optimizer = Adam(head.parameters(), lr=lr)
            x = Tensor(features)
            for _ in range(epochs):
                logits = head(x)
                loss = cross_entropy(logits, labels)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                losses.append(float(loss.data))
            self._heads.append(head)
        return losses

    def predict_proba(self, pairs: list[EntityPair]) -> np.ndarray:
        if not self._heads:
            raise RuntimeError("fit() must be called before predict")
        features = Tensor(self._feature_matrix(pairs))
        votes = [head(features).softmax(axis=-1).data for head in self._heads]
        return np.mean(votes, axis=0)

    def predict(self, pairs: list[EntityPair]) -> list[int]:
        return [int(i) for i in self.predict_proba(pairs).argmax(axis=-1)]

    def evaluate_f1(self, pairs: list[EntityPair]) -> float:
        return f1_score(self.predict(pairs), [p.label for p in pairs])
