"""The visibility matrix (Section 3.2).

``M`` is a binary ``n x n`` matrix used as an attention mask: ``M_ij = 1``
iff token *j* is structurally related to token *i* — they share a row, or
share a column, or one is a metadata ancestor of the other (overlapping
tree spans).  ``[CLS]`` tokens carry a wildcard span so they are visible
to (and see) everything, giving every token a sink and keeping the
softmax well-defined.

The same construction is applied separately to data, HMD, and VMD
sequences, "hence treating these semantically different context types
separately, unlike other SOTA solutions".
"""

from __future__ import annotations

import numpy as np

from .serialize import EncodedSequence


def build_visibility(sequence: EncodedSequence) -> np.ndarray:
    """Visibility matrix for one encoded sequence.

    Token *i* sees token *j* when their visibility groups match (same
    reading-direction line: row for row-major data, column for
    column-major, level for metadata) or their spans overlap (same cross
    line, or metadata ancestor/descendant).
    """
    groups = sequence.group_ids
    spans = sequence.spans
    same_group = (groups[:, None] == groups[None, :]) & (groups[:, None] >= 0)
    overlap = (spans[:, None, 0] < spans[None, :, 1]) & (spans[None, :, 0] < spans[:, None, 1])
    wildcard = groups == -1
    visible = same_group | overlap | wildcard[:, None] | wildcard[None, :]
    np.fill_diagonal(visible, True)
    return visible.astype(np.uint8)


def full_visibility(n: int) -> np.ndarray:
    """All-ones mask: the standard transformer attention (TabBiN_1)."""
    return np.ones((n, n), dtype=np.uint8)


def visibility_for(sequence: EncodedSequence, use_visibility: bool) -> np.ndarray:
    """Mask honouring the TabBiN_1 ablation switch."""
    if use_visibility:
        return build_visibility(sequence)
    return full_visibility(len(sequence))
