"""Table serialization into TabBiN input sequences (Sections 3.1, 3.3).

A table is partitioned into three segments — data, HMD, VMD — and each
segment is serialized separately ("We separate the model pre-training for
data and metadata, so their context is treated separately").  Data is
read row-by-row for the *row* model and column-by-column for the *column*
model.  Every row/column starts with ``[CLS]`` and cells are separated by
``[SEP]``; sequences are chunked to at most ``max_seq_len`` tokens and
cells trimmed to at most ``max_cell_tokens`` (I = 64).

Each token carries six parallel feature streams that feed the embedding
layer: token id, numeric features (magnitude/precision/first/last), the
in-cell position, the six bi-dimensional coordinate indexes, the inferred
semantic type, and the 8-bit unit/nesting cell features.  Tokens also
carry *visibility groups* (a group id plus a span) from which
:mod:`repro.core.visibility` builds the attention mask.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..tables.cell import Cell
from ..tables.table import MetadataLabel, Table
from ..text.tokenizer import WordPieceTokenizer
from ..text.types import TypeInference
from ..text.units import feature_bits
from .config import SEGMENTS, TabBiNConfig
from .numeric_features import NULL_FEATURES, numeric_features

#: Span value that overlaps everything (used for [CLS] tokens).
_WILDCARD_SPAN = (0, 1 << 30)


@dataclass(frozen=True)
class CellRef:
    """Identity of the table fragment a token group came from.

    ``kind`` is ``data`` / ``hmd`` / ``vmd``; for data cells ``row``/
    ``col`` are grid coordinates and ``span`` is ``(col, col+1)``; for
    metadata labels ``row`` is the level (1-based), ``col`` the label's
    position within its level, and ``span`` the leaf range it covers.
    """

    kind: str
    row: int
    col: int
    span: tuple[int, int]
    text: str


@dataclass
class EncodedSequence:
    """One model input: parallel token-feature arrays plus cell mapping."""

    segment: str
    token_ids: np.ndarray          # (n,)   int
    numeric: np.ndarray            # (n, 4) int
    cell_pos: np.ndarray           # (n,)   int
    coords: np.ndarray             # (n, 6) int
    type_ids: np.ndarray           # (n,)   int
    features: np.ndarray           # (n, 8) float
    cell_index: np.ndarray         # (n,)   int, -1 for [CLS]/[SEP]
    group_ids: np.ndarray          # (n,)   int visibility group (-1 wildcard)
    spans: np.ndarray              # (n, 2) int visibility spans
    cell_refs: list[CellRef] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.token_ids)

    def tokens_of_cell(self, cell_idx: int) -> np.ndarray:
        """Positions of the tokens belonging to ``cell_refs[cell_idx]``."""
        return np.nonzero(self.cell_index == cell_idx)[0]


@dataclass
class _TokenSpec:
    token_id: int
    numeric: tuple[int, int, int, int] = NULL_FEATURES
    cell_pos: int = 0
    coords: tuple[int, int, int, int, int, int] = (0, 0, 0, 0, 0, 0)
    type_id: int = 0
    features: tuple[int, ...] = (0,) * 8
    cell_index: int = -1
    group_id: int = -1
    span: tuple[int, int] = _WILDCARD_SPAN
    ref_text: str = ""


class TabBiNSerializer:
    """Turn tables into :class:`EncodedSequence` batches for one segment."""

    def __init__(self, tokenizer: WordPieceTokenizer,
                 type_inference: TypeInference,
                 config: TabBiNConfig):
        self.tokenizer = tokenizer
        self.types = type_inference
        self.config = config
        self._type_cache: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def serialize(self, table: Table, segment: str) -> list[EncodedSequence]:
        """Sequences of ``table`` for one of the four model segments."""
        if segment not in SEGMENTS:
            raise ValueError(f"segment must be one of {SEGMENTS}, got {segment!r}")
        if segment == "row":
            units = [self._data_unit(table.row(i), orient="row") for i in range(table.n_rows)]
        elif segment == "column":
            units = [self._data_unit(table.column(j), orient="column") for j in range(table.n_cols)]
        elif segment == "hmd":
            units = self._metadata_units(table.hmd_labels(), "hmd")
        else:
            units = self._metadata_units(table.vmd_labels(), "vmd")
        units = [u for u in units if u]
        return self._chunk(units, segment)

    def serialize_text(self, text: str, segment: str = "column") -> EncodedSequence:
        """A standalone phrase (entity string, caption) as one sequence.

        Used for Entity Clustering, where catalog entries are embedded
        with the TabBiN-column model (Section 4.3).
        """
        cell = Cell(text=text)
        specs = [self._cls_spec()]
        specs.extend(self._cell_specs(cell, cell_index=0, group_id=0, span=(0, 1)))
        specs = specs[: self.config.max_seq_len]
        refs = [CellRef("data", 0, 0, (0, 1), text)]
        return self._assemble(specs, refs, segment)

    # ------------------------------------------------------------------
    # Units (one row / column / metadata level group, each led by [CLS])
    # ------------------------------------------------------------------
    def _data_unit(self, cells: list[Cell], orient: str) -> list[_TokenSpec]:
        specs: list[_TokenSpec] = [self._cls_spec()]
        for cell in cells:
            group, span = self._data_visibility(cell, orient)
            body = self._cell_specs(cell, cell_index=-2, group_id=group, span=span)
            if not body:
                continue
            specs.extend(body)
            specs.append(self._sep_spec(group, span))
        return specs if len(specs) > 1 else []

    @staticmethod
    def _data_visibility(cell: Cell, orient: str) -> tuple[int, tuple[int, int]]:
        """Group = the reading-direction line; span = the cross line.

        Tokens are visible to each other when they share a row or a
        column (Section 3.2): group ids capture one axis, spans the
        other, and the mask builder ORs the two conditions.
        """
        row, col = cell.coords.row, cell.coords.col
        if orient == "row":
            return row, (col, col + 1)
        return col + (1 << 20), (row, row + 1)

    def _metadata_units(self, labels: list[MetadataLabel],
                        kind: str) -> list[list[_TokenSpec]]:
        """One unit per metadata level; labels carry their tree spans.

        Metadata tokens of the same level see each other (they are the
        same "row" of the header region) and ancestors/descendants see
        each other through overlapping spans — the hierarchical
        neighborhood the paper wants metadata to aggregate.
        """
        by_level: dict[int, list[MetadataLabel]] = {}
        for label in labels:
            by_level.setdefault(label.level, []).append(label)
        units: list[list[_TokenSpec]] = []
        for level in sorted(by_level):
            specs: list[_TokenSpec] = [self._cls_spec()]
            for label in sorted(by_level[level], key=lambda l: l.span):
                cell = Cell(text=label.label, coords=label.coords())
                body = self._cell_specs(cell, cell_index=-2, group_id=level,
                                        span=label.span)
                if not body:
                    continue
                specs.extend(body)
                specs.append(self._sep_spec(level, label.span))
            if len(specs) > 1:
                units.append(specs)
        return units

    # ------------------------------------------------------------------
    # Cell expansion
    # ------------------------------------------------------------------
    def _cell_specs(self, cell: Cell, cell_index: int, group_id: int,
                    span: tuple[int, int]) -> list[_TokenSpec]:
        if cell.has_nested_table:
            return self._nested_specs(cell, group_id, span)
        pieces = self.tokenizer.tokenize(cell.text)
        if not pieces:
            return []
        numbers = deque(cell.numbers())
        type_id = self._type_of(cell.text)
        feats = tuple(cell.cell_features())
        coords = cell.coords.embedding_indexes(self.config.max_position)
        specs: list[_TokenSpec] = []
        for pos, piece in enumerate(pieces[: self.config.max_cell_tokens]):
            token_id = self.tokenizer.vocab.id(piece)
            num = NULL_FEATURES
            if token_id == self.tokenizer.vocab.val_id and numbers:
                num = numeric_features(numbers.popleft())
            specs.append(_TokenSpec(
                token_id=token_id, numeric=num,
                cell_pos=min(pos, self.config.max_cell_tokens - 1),
                coords=coords, type_id=type_id, features=feats,
                cell_index=cell_index, group_id=group_id, span=span,
                ref_text=cell.text,
            ))
        return specs

    def _nested_specs(self, cell: Cell, group_id: int,
                      span: tuple[int, int]) -> list[_TokenSpec]:
        """Inline a nested table within its enclosing cell.

        Nested tokens keep the outer cell's bi-dimensional coordinates
        and visibility, and add the nested (row, col) coordinate starting
        at index 1, as the "Out-position" paragraph describes.
        """
        nested: Table = cell.nested_table
        outer = cell.coords
        depth = nested.hmd_tree.depth
        specs: list[_TokenSpec] = []

        def emit(inner: Cell, nr: int, nc: int):
            shifted = Cell(
                text=inner.text, value=inner.value,
                coords=outer.__class__(
                    horizontal=outer.horizontal, vertical=outer.vertical,
                    row=outer.row, col=outer.col, nested=(nr, nc),
                ),
                entity_type=inner.entity_type,
            )
            body = self._cell_specs(shifted, cell_index=-2,
                                    group_id=group_id, span=span)
            for spec in body:
                # Every token inside a nested cell carries the nested bit
                # ("The last bit indicates the presence of a nested table
                # in the cell").
                feats = list(spec.features)
                feats[-1] = 1
                spec.features = tuple(feats)
            specs.extend(body)

        for label in nested.hmd_labels():
            emit(Cell(text=label.label), label.level, label.span[0] + 1)
        for i in range(nested.n_rows):
            for j in range(nested.n_cols):
                emit(nested.data[i][j], depth + i + 1, j + 1)
        return specs[: self.config.max_cell_tokens]

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def _chunk(self, units: list[list[_TokenSpec]],
               segment: str) -> list[EncodedSequence]:
        sequences: list[EncodedSequence] = []
        current: list[_TokenSpec] = []
        for unit in units:
            for piece in self._split_unit(unit):
                if current and len(current) + len(piece) > self.config.max_seq_len:
                    sequences.append(self._finish(current, segment))
                    current = []
                current.extend(piece)
        if current:
            sequences.append(self._finish(current, segment))
        return sequences

    def _split_unit(self, unit: list[_TokenSpec]) -> list[list[_TokenSpec]]:
        """Split a unit longer than ``max_seq_len`` into continuation
        pieces, preferring cell ([SEP]) boundaries; every piece starts
        with its own [CLS] so no cell content is dropped."""
        max_len = self.config.max_seq_len
        if len(unit) <= max_len:
            return [unit]
        pieces: list[list[_TokenSpec]] = []
        current: list[_TokenSpec] = [unit[0]]  # the unit's [CLS]
        for spec in unit[1:]:
            if len(current) >= max_len:
                pieces.append(current)
                current = [self._cls_spec()]
            current.append(spec)
            at_cell_boundary = spec.cell_index == -1  # a [SEP]
            if at_cell_boundary and len(current) >= max_len * 3 // 4:
                pieces.append(current)
                current = [self._cls_spec()]
        if len(current) > 1:
            pieces.append(current)
        return pieces

    def _finish(self, specs: list[_TokenSpec], segment: str) -> EncodedSequence:
        """Re-key cell groups and build the final arrays.

        ``_cell_specs`` marks cell-body tokens with ``cell_index = -2``;
        here consecutive runs that share (group, span, type, coords) are
        given stable indexes and a :class:`CellRef` each.
        """
        refs: list[CellRef] = []
        keyed: dict[tuple, int] = {}
        resolved: list[_TokenSpec] = []
        for spec in specs:
            if spec.cell_index == -2:
                key = (spec.group_id, spec.span, spec.coords)
                if key not in keyed:
                    keyed[key] = len(refs)
                    refs.append(self._ref_for(spec, segment))
                spec = _TokenSpec(**{**spec.__dict__, "cell_index": keyed[key]})
            resolved.append(spec)
        return self._assemble(resolved, refs, segment)

    @staticmethod
    def _ref_for(spec: _TokenSpec, segment: str) -> CellRef:
        vr, vc, hr, hc, _nr, _nc = spec.coords
        if segment == "hmd":
            # vr carries level-1, hr the label's position within the level.
            return CellRef("hmd", row=vr + 1, col=hr, span=spec.span,
                           text=spec.ref_text)
        if segment == "vmd":
            # hc carries level-1, vc the label's position within the level.
            return CellRef("vmd", row=hc + 1, col=vc, span=spec.span,
                           text=spec.ref_text)
        return CellRef("data", row=vr, col=hc, span=spec.span,
                       text=spec.ref_text)

    def _assemble(self, specs: list[_TokenSpec], refs: list[CellRef],
                  segment: str) -> EncodedSequence:
        n = len(specs)
        return EncodedSequence(
            segment=segment,
            token_ids=np.array([s.token_id for s in specs], dtype=np.int64),
            numeric=np.array([s.numeric for s in specs], dtype=np.int64).reshape(n, 4),
            cell_pos=np.array([s.cell_pos for s in specs], dtype=np.int64),
            coords=np.array([s.coords for s in specs], dtype=np.int64).reshape(n, 6),
            type_ids=np.array([s.type_id for s in specs], dtype=np.int64),
            features=np.array([s.features for s in specs], dtype=float).reshape(n, 8),
            cell_index=np.array([s.cell_index for s in specs], dtype=np.int64),
            group_ids=np.array([s.group_id for s in specs], dtype=np.int64),
            spans=np.array([s.span for s in specs], dtype=np.int64).reshape(n, 2),
            cell_refs=refs,
        )

    # ------------------------------------------------------------------
    # Structural tokens
    # ------------------------------------------------------------------
    def _cls_spec(self) -> _TokenSpec:
        return _TokenSpec(token_id=self.tokenizer.vocab.cls_id,
                          group_id=-1, span=_WILDCARD_SPAN)

    def _sep_spec(self, group_id: int, span: tuple[int, int]) -> _TokenSpec:
        return _TokenSpec(token_id=self.tokenizer.vocab.sep_id,
                          group_id=group_id, span=span)

    def _type_of(self, text: str) -> int:
        cached = self._type_cache.get(text)
        if cached is None:
            cached = self.types.infer_id(text)
            self._type_cache[text] = cached
        return cached
