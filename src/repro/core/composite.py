"""Composite embeddings for values with units and ranges (Section 3.4).

Figure 4(a): a numerical attribute's composite embedding concatenates the
embeddings of the attribute name, the value, and the unit — "OS" =
"20.3" ⊕ "months" keeps the meaning of the number together with its
unit.  Figure 4(b): a range concatenates attribute ⊕ unit ⊕ range start
⊕ range end ("Age", "year", "20", "30").
"""

from __future__ import annotations

import numpy as np

from ..tables.values import GaussianValue, NumberValue, RangeValue
from .embedder import TabBiNEmbedder


def numeric_composite(embedder: TabBiNEmbedder, attribute: str,
                      value: float, unit: str | None) -> np.ndarray:
    """CE for a numerical attribute (Figure 4a): attr ⊕ value ⊕ unit."""
    return np.concatenate([
        embedder.entity_embedding(attribute),
        embedder.entity_embedding(_number_text(value)),
        embedder.entity_embedding(unit or ""),
    ])


def range_composite(embedder: TabBiNEmbedder, attribute: str,
                    start: float, end: float, unit: str | None) -> np.ndarray:
    """CE for a range attribute (Figure 4b): attr ⊕ unit ⊕ start ⊕ end."""
    return np.concatenate([
        embedder.entity_embedding(attribute),
        embedder.entity_embedding(unit or ""),
        embedder.entity_embedding(_number_text(start)),
        embedder.entity_embedding(_number_text(end)),
    ])


def gaussian_composite(embedder: TabBiNEmbedder, attribute: str,
                       mean: float, std: float, unit: str | None) -> np.ndarray:
    """CE for a gaussian cell: attr ⊕ unit ⊕ mean ⊕ std.

    The paper treats gaussians "according to their semantics"; this
    mirrors the range structure with (mean, std) in place of (start,
    end).
    """
    return np.concatenate([
        embedder.entity_embedding(attribute),
        embedder.entity_embedding(unit or ""),
        embedder.entity_embedding(_number_text(mean)),
        embedder.entity_embedding(_number_text(std)),
    ])


def value_composite(embedder: TabBiNEmbedder, attribute: str,
                    value) -> np.ndarray:
    """Dispatch on the parsed value shape; always 4 blocks wide so CEs of
    different shapes remain comparable by cosine similarity."""
    if isinstance(value, RangeValue):
        return range_composite(embedder, attribute, value.start, value.end,
                               value.unit)
    if isinstance(value, GaussianValue):
        return gaussian_composite(embedder, attribute, value.mean, value.std,
                                  value.unit)
    if isinstance(value, NumberValue):
        ce = numeric_composite(embedder, attribute, value.value, value.unit)
        return np.concatenate([ce, np.zeros(embedder.hidden)])
    text = getattr(value, "text", str(value))
    return np.concatenate([
        embedder.entity_embedding(attribute),
        embedder.entity_embedding(text),
        np.zeros(2 * embedder.hidden),
    ])


def _number_text(x: float) -> str:
    if float(x).is_integer():
        return str(int(x))
    return f"{x:.10g}"
