"""TabBiN model configuration, including the paper's hyperparameters.

Section 3 fixes: BERT_BASE-aligned encoder (H = 768), max sequence length
256 tokens, at most I = 64 tokens per cell, at most G = 256 tuples per
table, numeric feature cardinalities M = P = F = L = 10, T = 14 semantic
types, F = 8 cell-feature bits, 50,000 pre-training steps with batch size
12 and learning rate 2e-5.

The reproduction keeps all of those knobs and adds the four ablation
switches of Section 4.6 (TabBiN_1..4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: The four TabBiN variants (Section 3.3: "We trained 4 models - 2 for
#: data - tuples, columns; 2 for metadata - horizontal, vertical").
SEGMENTS = ("row", "column", "hmd", "vmd")


@dataclass(frozen=True)
class TabBiNConfig:
    """Hyperparameters for one TabBiN encoder."""

    # -- encoder geometry -------------------------------------------------
    hidden: int = 48          # H; must be divisible by 12 (E_num /4, E_tpos /6)
    num_layers: int = 2
    num_heads: int = 4
    intermediate: int = 192
    dropout: float = 0.1

    # -- sequence / table limits (paper values kept as defaults) -----------
    max_seq_len: int = 256    # "table sequences with no more than 256 tokens"
    max_cell_tokens: int = 64  # I = 64
    max_position: int = 256   # G = 256

    # -- embedding layer cardinalities -------------------------------------
    numeric_bins: int = 11    # M = P = F = L = 10 plus a null bucket at 0
    num_types: int = 14       # T = 14
    num_cell_features: int = 8  # F = 8 (7 unit categories + nested bit)

    # -- pre-training -------------------------------------------------------
    mlm_probability: float = 0.15
    clc_probability: float = 0.10
    learning_rate: float = 2e-5
    batch_size: int = 12
    train_steps: int = 50_000

    # -- ablation switches (Section 4.6) -------------------------------------
    use_visibility: bool = True      # TabBiN_1 removes the visibility matrix
    use_type: bool = True            # TabBiN_2 removes type inference
    use_units_nesting: bool = True   # TabBiN_3 removes E_fmt
    use_coords: bool = True          # TabBiN_4 removes bi-dimensional coords

    vocab_size: int = 0  # filled in when the tokenizer is trained

    def __post_init__(self):
        if self.hidden % 12 != 0:
            raise ValueError(
                f"hidden ({self.hidden}) must be divisible by 12: E_num "
                "concatenates 4 sub-embeddings and E_tpos concatenates 6"
            )
        if self.hidden % self.num_heads != 0:
            raise ValueError("hidden must be divisible by num_heads")

    def with_vocab(self, vocab_size: int) -> "TabBiNConfig":
        return replace(self, vocab_size=vocab_size)

    def ablate(self, component: str) -> "TabBiNConfig":
        """Return a config with one component removed.

        ``component`` is one of ``visibility`` (TabBiN_1), ``type``
        (TabBiN_2), ``units_nesting`` (TabBiN_3), ``coords`` (TabBiN_4).
        """
        flags = {
            "visibility": "use_visibility",
            "type": "use_type",
            "units_nesting": "use_units_nesting",
            "coords": "use_coords",
        }
        if component not in flags:
            raise ValueError(f"unknown ablation: {component!r}")
        return replace(self, **{flags[component]: False})

    # -- presets ---------------------------------------------------------------
    @classmethod
    def paper(cls) -> "TabBiNConfig":
        """The full-scale configuration reported in the paper."""
        return cls(hidden=768, num_layers=12, num_heads=12, intermediate=3072,
                   train_steps=50_000, batch_size=12, learning_rate=2e-5)

    @classmethod
    def small(cls, **overrides) -> "TabBiNConfig":
        """CPU-friendly configuration used by the benchmark harness."""
        return replace(cls(hidden=48, num_layers=2, num_heads=4,
                           intermediate=192, dropout=0.1,
                           max_seq_len=128), **overrides)

    @classmethod
    def tiny(cls, **overrides) -> "TabBiNConfig":
        """Minimal configuration for unit tests."""
        return replace(cls(hidden=24, num_layers=1, num_heads=2,
                           intermediate=48, dropout=0.0,
                           max_seq_len=64, max_cell_tokens=16,
                           max_position=64), **overrides)
