"""Self-supervised pre-training: Masked Language Model + Cell-level Cloze.

Section 3.3: "We use the Masked Language modeling and Cell-level cloze as
our training objectives".  MLM masks 15% of the (non-structural) tokens
with the BERT 80/10/10 recipe; CLC masks *whole cells* — every token of a
sampled cell is replaced by ``[MASK]`` and must be recovered, forcing the
model to reconstruct cell content purely from its structural 2-D context
(coordinates, neighboring rows/columns, metadata).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn import Adam, IGNORE_INDEX, LinearWarmupSchedule, accuracy, clip_grad_norm, cross_entropy
from ..text.vocab import Vocabulary
from .config import TabBiNConfig
from .embedding_layer import TabBiNEmbedding
from .model import TabBiNModel
from .serialize import EncodedSequence


@dataclass
class PretrainStats:
    """Loss/accuracy trace of one pre-training run."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    steps: int = 0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def improved(self) -> bool:
        """Whether the smoothed loss went down over the run."""
        if len(self.losses) < 4:
            return False
        k = max(len(self.losses) // 4, 1)
        head = float(np.mean(self.losses[:k]))
        tail = float(np.mean(self.losses[-k:]))
        return tail < head


class TabBiNPretrainer:
    """Drives MLM + CLC pre-training of one TabBiN segment model."""

    def __init__(self, model: TabBiNModel, vocab: Vocabulary,
                 config: TabBiNConfig | None = None,
                 seed: int = 0):
        self.model = model
        self.vocab = vocab
        self.config = config or model.config
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Masking
    # ------------------------------------------------------------------
    def mask_batch(self, sequences: list[EncodedSequence]
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Apply MLM + CLC masking to a padded batch.

        Returns ``(masked_token_ids, labels)``, both ``(B, n)``; labels
        are ``IGNORE_INDEX`` except at positions the model must recover.
        """
        arrays = TabBiNEmbedding.batch_arrays(sequences, self.vocab.pad_id)
        token_ids = arrays[0].copy()
        valid = arrays[6]
        labels = np.full_like(token_ids, IGNORE_INDEX)
        special = self.vocab.special_ids() - {self.vocab.val_id}

        for b, seq in enumerate(sequences):
            n = len(seq)
            eligible = np.array(
                [i for i in range(n) if int(seq.token_ids[i]) not in special],
                dtype=np.int64,
            )
            if eligible.size == 0:
                continue

            # --- Cell-level Cloze: mask whole cells --------------------
            n_cells = len(seq.cell_refs)
            clc_positions: set[int] = set()
            if n_cells > 1:
                chosen = np.nonzero(
                    self.rng.random(n_cells) < self.config.clc_probability
                )[0]
                for cell_idx in chosen:
                    for pos in seq.tokens_of_cell(int(cell_idx)):
                        clc_positions.add(int(pos))
            for pos in clc_positions:
                labels[b, pos] = token_ids[b, pos]
                token_ids[b, pos] = self.vocab.mask_id

            # --- MLM over the remaining eligible tokens ----------------
            remaining = np.array(
                [i for i in eligible if i not in clc_positions], dtype=np.int64
            )
            if remaining.size == 0:
                continue
            picked = remaining[
                self.rng.random(remaining.size) < self.config.mlm_probability
            ]
            if picked.size == 0:
                picked = remaining[self.rng.integers(remaining.size, size=1)]
            for pos in picked:
                labels[b, pos] = token_ids[b, pos]
                roll = self.rng.random()
                if roll < 0.8:
                    token_ids[b, pos] = self.vocab.mask_id
                elif roll < 0.9:
                    token_ids[b, pos] = int(self.rng.integers(len(self.vocab)))
                # else: keep the original token.
        labels[~valid] = IGNORE_INDEX
        return token_ids, labels

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def train(self, sequences: list[EncodedSequence], steps: int,
              batch_size: int | None = None, lr: float | None = None,
              warmup_fraction: float = 0.1,
              max_grad_norm: float = 1.0) -> PretrainStats:
        """Run ``steps`` optimizer updates over randomly sampled batches."""
        if not sequences:
            raise ValueError("no training sequences")
        batch_size = batch_size or self.config.batch_size
        lr = lr if lr is not None else self.config.learning_rate
        optimizer = Adam(self.model.parameters(), lr=lr)
        schedule = LinearWarmupSchedule(
            optimizer, warmup_steps=max(1, int(steps * warmup_fraction)),
            total_steps=steps,
        )
        stats = PretrainStats()
        self.model.train()
        for _ in range(steps):
            idx = self.rng.integers(len(sequences), size=min(batch_size, len(sequences)))
            batch = [sequences[i] for i in idx]
            masked, labels = self.mask_batch(batch)
            if (labels == IGNORE_INDEX).all():
                continue
            hidden, _valid = self.model(batch, token_ids_override=masked)
            logits = self.model.mlm_logits(hidden)
            flat_logits = logits.reshape(-1, self.config.vocab_size)
            flat_labels = labels.reshape(-1)
            loss = cross_entropy(flat_logits, flat_labels)
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(self.model.parameters(), max_grad_norm)
            optimizer.step()
            schedule.step()
            stats.losses.append(float(loss.data))
            stats.accuracies.append(accuracy(flat_logits, flat_labels))
            stats.steps += 1
        self.model.eval()
        return stats
