"""The TabBiN encoder: embedding layer + metadata-aware masked attention.

One :class:`TabBiNModel` instance corresponds to one of the paper's four
pre-trained variants (data rows, data columns, HMD, VMD) — the variant is
determined by which segment's sequences it is fed, not by its
architecture (Section 3.3).
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    LayerNorm,
    Linear,
    Module,
    Tensor,
    TransformerEncoder,
)
from .config import TabBiNConfig
from .embedding_layer import TabBiNEmbedding
from .serialize import EncodedSequence
from .visibility import visibility_for


class MLMHead(Module):
    """BERT-style masked-token prediction head."""

    def __init__(self, hidden: int, vocab_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.transform = Linear(hidden, hidden, rng=rng)
        self.norm = LayerNorm(hidden)
        self.decoder = Linear(hidden, vocab_size, rng=rng)

    def forward(self, hidden_states: Tensor) -> Tensor:
        return self.decoder(self.norm(self.transform(hidden_states).gelu()))


class TabBiNModel(Module):
    """Encoder producing contextual token vectors for one segment."""

    def __init__(self, config: TabBiNConfig, pad_id: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.config = config
        self.pad_id = pad_id
        self.embedding = TabBiNEmbedding(config, rng=rng)
        self.encoder = TransformerEncoder(
            num_layers=config.num_layers, hidden=config.hidden,
            num_heads=config.num_heads, intermediate=config.intermediate,
            dropout=config.dropout, rng=rng,
        )
        self.mlm_head = MLMHead(config.hidden, config.vocab_size, rng=rng)

    # ------------------------------------------------------------------
    def forward(self, sequences: list[EncodedSequence],
                token_ids_override: np.ndarray | None = None) -> tuple[Tensor, np.ndarray]:
        """Encode a batch of sequences.

        Returns ``(hidden_states, valid)``: hidden states of shape
        ``(B, n, H)`` and a boolean mask marking real (non-pad) tokens.
        ``token_ids_override`` substitutes the token-id stream (used by
        MLM/CLC pre-training after masking) while keeping every other
        feature stream intact.
        """
        arrays = TabBiNEmbedding.batch_arrays(sequences, self.pad_id)
        token_ids, numeric, cell_pos, coords, type_ids, features, valid = arrays
        if token_ids_override is not None:
            if token_ids_override.shape != token_ids.shape:
                raise ValueError("token_ids_override shape mismatch")
            token_ids = token_ids_override
        embedded = self.embedding(token_ids, numeric, cell_pos, coords,
                                  type_ids, features)
        mask = self._batch_mask(sequences, valid)
        hidden = self.encoder(embedded, mask)
        return hidden, valid

    def mlm_logits(self, hidden: Tensor) -> Tensor:
        return self.mlm_head(hidden)

    # ------------------------------------------------------------------
    def _batch_mask(self, sequences: list[EncodedSequence],
                    valid: np.ndarray) -> np.ndarray:
        """Stack per-sequence visibility matrices into a padded batch.

        Pad tokens attend only to themselves and nothing attends to them,
        so they contribute nothing to real positions.
        """
        B, n = valid.shape
        mask = np.zeros((B, n, n), dtype=np.uint8)
        for b, seq in enumerate(sequences):
            k = len(seq)
            mask[b, :k, :k] = visibility_for(seq, self.config.use_visibility)
            if k < n:
                idx = np.arange(k, n)
                mask[b, idx, idx] = 1
        return mask

    # ------------------------------------------------------------------
    def encode_pooled(self, sequences: list[EncodedSequence]) -> list[dict]:
        """Run the encoder and mean-pool token vectors per cell ref.

        Returns, per sequence, a dict mapping the sequence's
        ``cell_refs`` index to its pooled vector (numpy, shape ``(H,)``).
        Used at inference time to derive cell / column / metadata / table
        embeddings.  One call is one forward padded to the longest
        sequence — corpus-scale callers should chunk through
        :class:`~repro.index.store.EmbeddingStore`, which batches by
        length so padding (and the ``(B, n, n)`` masks) stay small.
        """
        was_training = self.training
        self.eval()
        try:
            hidden, _valid = self.forward(sequences)
        finally:
            self.train(was_training)
        states = hidden.data
        out: list[dict] = []
        for b, seq in enumerate(sequences):
            pooled: dict[int, np.ndarray] = {}
            for idx in range(len(seq.cell_refs)):
                positions = seq.tokens_of_cell(idx)
                if positions.size:
                    pooled[idx] = states[b, positions].mean(axis=0)
            out.append(pooled)
        return out
