"""The six-component TabBiN embedding layer (Section 3.1, Figure 3).

The final embedding of a token is the sum of six components (eq. 8):

``E = E_tok + E_num + E_cpos + E_tpos + E_type + E_fmt``

- ``E_tok``  token semantics: a standard vocabulary lookup (eq. 2).
- ``E_num``  numeric properties: magnitude / precision / first digit /
  last digit, each with its own ``(H/4)``-wide table, concatenated
  (eq. 3).
- ``E_cpos`` in-cell position, up to I = 64 tokens per cell (eq. 4).
- ``E_tpos`` in-table position: six sub-embeddings for the vertical,
  horizontal, and nested coordinate (row, col) pairs, each ``(H/6)``
  wide, concatenated (eq. 5).
- ``E_fmt``  cell features: affine map of the 8-bit unit/nesting vector
  (eq. 6).
- ``E_type`` inferred semantic type, T = 14 (eq. 7).

The TabBiN_2/3/4 ablations of Section 4.6 are implemented here by
zeroing the corresponding component.
"""

from __future__ import annotations

import numpy as np

from ..nn import Dropout, Embedding, LayerNorm, Linear, Module
from ..nn.tensor import Tensor, concatenate
from .config import TabBiNConfig
from .serialize import EncodedSequence


class TabBiNEmbedding(Module):
    """Embed a batch of encoded sequences into ``(B, n, H)`` vectors."""

    def __init__(self, config: TabBiNConfig, rng: np.random.Generator | None = None):
        super().__init__()
        if config.vocab_size <= 0:
            raise ValueError("config.vocab_size must be set before building the model")
        rng = rng or np.random.default_rng(0)
        H = config.hidden
        self.config = config

        self.tok = Embedding(config.vocab_size, H, rng=rng)
        quarter = H // 4
        self.num_mag = Embedding(config.numeric_bins, quarter, rng=rng)
        self.num_pre = Embedding(config.numeric_bins, quarter, rng=rng)
        self.num_fst = Embedding(config.numeric_bins, quarter, rng=rng)
        self.num_lst = Embedding(config.numeric_bins, quarter, rng=rng)
        self.cpos = Embedding(config.max_cell_tokens, H, rng=rng)
        sixth = H // 6
        G = config.max_position
        self.tpos_vr = Embedding(G, sixth, rng=rng)
        self.tpos_vc = Embedding(G, sixth, rng=rng)
        self.tpos_hr = Embedding(G, sixth, rng=rng)
        self.tpos_hc = Embedding(G, sixth, rng=rng)
        self.tpos_nr = Embedding(G, sixth, rng=rng)
        self.tpos_nc = Embedding(G, sixth, rng=rng)
        self.fmt = Linear(config.num_cell_features, H, rng=rng)
        self.type = Embedding(config.num_types, H, rng=rng)

        self.norm = LayerNorm(H)
        self.dropout = Dropout(config.dropout, rng=rng)

    def forward(self, token_ids: np.ndarray, numeric: np.ndarray,
                cell_pos: np.ndarray, coords: np.ndarray,
                type_ids: np.ndarray, features: np.ndarray) -> Tensor:
        """Sum the six components for a padded batch.

        Shapes: ``token_ids/cell_pos/type_ids (B, n)``, ``numeric
        (B, n, 4)``, ``coords (B, n, 6)``, ``features (B, n, 8)``.
        """
        cfg = self.config
        e_tok = self.tok(token_ids)
        e_num = concatenate([
            self.num_mag(numeric[..., 0]),
            self.num_pre(numeric[..., 1]),
            self.num_fst(numeric[..., 2]),
            self.num_lst(numeric[..., 3]),
        ], axis=-1)
        e_cpos = self.cpos(np.minimum(cell_pos, cfg.max_cell_tokens - 1))
        total = e_tok + e_num + e_cpos

        if cfg.use_coords:
            e_tpos = concatenate([
                self.tpos_vr(coords[..., 0]), self.tpos_vc(coords[..., 1]),
                self.tpos_hr(coords[..., 2]), self.tpos_hc(coords[..., 3]),
                self.tpos_nr(coords[..., 4]), self.tpos_nc(coords[..., 5]),
            ], axis=-1)
            total = total + e_tpos
        if cfg.use_type:
            total = total + self.type(type_ids)
        if cfg.use_units_nesting:
            total = total + self.fmt(Tensor(features))

        return self.dropout(self.norm(total))

    @staticmethod
    def batch_arrays(sequences: list[EncodedSequence], pad_id: int):
        """Pad sequences to a common length; returns feature arrays plus
        a boolean validity mask of shape ``(B, n)``."""
        if not sequences:
            raise ValueError("empty batch")
        n = max(len(s) for s in sequences)
        B = len(sequences)
        token_ids = np.full((B, n), pad_id, dtype=np.int64)
        numeric = np.zeros((B, n, 4), dtype=np.int64)
        cell_pos = np.zeros((B, n), dtype=np.int64)
        coords = np.zeros((B, n, 6), dtype=np.int64)
        type_ids = np.zeros((B, n), dtype=np.int64)
        features = np.zeros((B, n, 8), dtype=float)
        valid = np.zeros((B, n), dtype=bool)
        for b, seq in enumerate(sequences):
            k = len(seq)
            token_ids[b, :k] = seq.token_ids
            numeric[b, :k] = seq.numeric
            cell_pos[b, :k] = seq.cell_pos
            coords[b, :k] = seq.coords
            type_ids[b, :k] = seq.type_ids
            features[b, :k] = seq.features
            valid[b, :k] = True
        return token_ids, numeric, cell_pos, coords, type_ids, features, valid
