"""Discrete numeric features for the E_num embedding (Section 3.1).

A number is encoded by four discrete features: magnitude, precision,
first digit and last digit, each in [0, 10].  The paper's worked example
fixes the convention: "number 20.3 ... is encoded as (x_mag, x_pre,
x_fst, x_lst) -> (2, 2, 2, 3)", i.e.

- magnitude  = count of integer digits           (20.3 -> 2)
- precision  = count of fractional digits + 1    (20.3 -> 2; integers -> 1)
- first      = leading digit                     (20.3 -> 2)
- last       = trailing digit                    (20.3 -> 3)

Non-numeric tokens use the all-zero feature vector.  A trailing digit of
0 shares the 0 bucket of the last-digit sub-embedding with non-numbers;
this matches the paper's [0, L] value ranges and is harmless because the
other three sub-embeddings still separate numbers from text.
"""

from __future__ import annotations

import math

#: Feature vector used for non-numeric tokens.
NULL_FEATURES = (0, 0, 0, 0)

_MAX = 10


def _clamp(x: int, lo: int = 0) -> int:
    return max(lo, min(int(x), _MAX))


def numeric_features(value: float) -> tuple[int, int, int, int]:
    """The (magnitude, precision, first digit, last digit) of ``value``.

    Digits come from the shortest decimal rendering (up to six decimal
    places); the sign is ignored.
    """
    if not math.isfinite(value):
        return NULL_FEATURES
    text = f"{abs(value):.6f}".rstrip("0").rstrip(".")
    if not text:
        text = "0"
    if "." in text:
        int_part, frac_part = text.split(".")
    else:
        int_part, frac_part = text, ""
    significant = (int_part + frac_part).lstrip("0") or "0"
    magnitude = _clamp(len(int_part.lstrip("0")) or 1, lo=1)
    precision = _clamp(len(frac_part) + 1, lo=1)
    first = _clamp(int(significant[0]))
    last = _clamp(int(significant[-1]))
    return (magnitude, precision, first, last)
