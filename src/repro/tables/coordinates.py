"""Bi-dimensional hierarchical coordinates (Section 2.3, Figure 1).

Every cell gets two coordinate vectors — one per coordinate tree
(horizontal/HMD and vertical/VMD) — plus a nested coordinate for cells
inside nested tables.  For a relational table the coordinates reduce to
regular Cartesian coordinates, exactly as the paper notes; for cells
without nesting the nested coordinate is the default ``(0, 0)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BiCoordinates:
    """Coordinates of one cell.

    Attributes
    ----------
    horizontal:
        Path positions through the horizontal (HMD) coordinate tree —
        the ``<2,7>`` part of Figure 1's ``(<2,7>;<1,3>)``.
    vertical:
        Path positions through the vertical (VMD) coordinate tree.
    row, col:
        Cartesian grid position of the cell in the data region
        (0-based).  These feed the x_vr/x_vc/x_hr/x_hc embeddings.
    nested:
        ``(row, col)`` inside the enclosing nested table, 1-based as in
        the paper ("starting with index 1"); ``(0, 0)`` when the cell is
        not inside a nested table.
    """

    horizontal: tuple[int, ...] = ()
    vertical: tuple[int, ...] = ()
    row: int = 0
    col: int = 0
    nested: tuple[int, int] = (0, 0)

    @property
    def is_nested(self) -> bool:
        return self.nested != (0, 0)

    def render(self) -> str:
        """Figure-1 style rendering, e.g. ``(<2,7>;<1,3>)``."""
        h = ",".join(str(i) for i in self.horizontal) or str(self.col)
        v = ",".join(str(i) for i in self.vertical) or str(self.row)
        text = f"(<{h}>;<{v}>)"
        if self.is_nested:
            text += f"@{self.nested}"
        return text

    def embedding_indexes(self, clamp: int) -> tuple[int, int, int, int, int, int]:
        """The six position ids (x_vr, x_vc, x_hr, x_hc, x_nr, x_nc).

        Section 3.1 "Out-position": one-hot row/column indexes for the
        vertical, horizontal and nested coordinates, clamped to the
        maximum table size ``G``.
        """
        def clip(x: int) -> int:
            return min(max(int(x), 0), clamp - 1)

        v_row, v_col = self.row, (self.vertical[-1] if self.vertical else 0)
        h_row, h_col = (self.horizontal[-1] if self.horizontal else 0), self.col
        n_row, n_col = self.nested
        return tuple(clip(x) for x in (v_row, v_col, h_row, h_col, n_row, n_col))


@dataclass(frozen=True)
class CoordinateContext:
    """Coordinate trees of the enclosing table, used to derive
    :class:`BiCoordinates` for each cell; kept immutable so cells can
    share it."""

    hmd_coordinate: tuple[tuple[int, ...], ...] = field(default=())
    vmd_coordinate: tuple[tuple[int, ...], ...] = field(default=())

    def for_cell(self, row: int, col: int,
                 nested: tuple[int, int] = (0, 0)) -> BiCoordinates:
        horizontal = self.hmd_coordinate[col] if col < len(self.hmd_coordinate) else ()
        vertical = self.vmd_coordinate[row] if row < len(self.vmd_coordinate) else ()
        return BiCoordinates(
            horizontal=horizontal, vertical=vertical,
            row=row, col=col, nested=nested,
        )
