"""Corpus persistence: save/load lists of tables as JSON lines."""

from __future__ import annotations

import json
from pathlib import Path

from .table import Table


def save_corpus(tables: list[Table], path: str | Path) -> Path:
    """Write one table per line as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for table in tables:
            fh.write(json.dumps(table.to_dict()) + "\n")
    return path


def load_corpus(path: str | Path) -> list[Table]:
    """Read a JSON-lines corpus written by :func:`save_corpus`."""
    tables: list[Table] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                tables.append(Table.from_dict(json.loads(line)))
    return tables
