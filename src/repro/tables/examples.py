"""The paper's running examples, reconstructed as live objects.

- :func:`figure1_table` — the colorectal-cancer efficacy table of
  Figure 1, with two-level HMD, two-level VMD, and nested tables whose
  cells have their own metadata.
- :func:`table1_nested` — "Table 1: Sample non-1NF Table with Nesting",
  whose encoding Figure 3 walks through (the "OS 20.3 months" nested
  column used by Figure 4a).
- :func:`table2_relational` — "Table 2: A sample Relational Table"
  (Name/Age/Job with Sam the Engineer) used to motivate the visibility
  matrix.

These feed the unit tests, the quickstart example, and the figure
benchmarks.
"""

from __future__ import annotations

from .table import Table


def nested_efficacy_table() -> Table:
    """A small nested table with its own HMD (lives inside Figure 1 cells)."""
    return Table(
        caption="efficacy detail",
        header_rows=[["OS", "PFS", "HR"]],
        data=[["20.3 months", "5.6 months", "0.84"]],
        topic="colorectal cancer treatment",
    )


def figure1_table() -> Table:
    """Figure 1: treatment efficacy for colorectal cancer.

    Horizontal metadata is hierarchical (Efficacy End Point → {ORR, OS,
    Other Efficacy}); vertical metadata is hierarchical (Patient Cohort →
    {Previously Untreated, Failing under Fluoropyrimidine and
    Irinotecan}); the Other Efficacy column holds nested tables.
    """
    return Table(
        caption="Ramucirumab treatment efficacy in metastatic colorectal cancer",
        header_rows=[
            ["Efficacy End Point", None, None],
            ["ORR", "OS", "Other Efficacy"],
        ],
        header_cols=[
            ["Patient Cohort", None],
            ["Previously Untreated",
             "Failing under Fluoropyrimidine and Irinotecan"],
        ],
        data=[
            ["12.3 %", "20.3 months", nested_efficacy_table()],
            ["9.8 %", "13.3 months", nested_efficacy_table()],
        ],
        topic="colorectal cancer treatment",
        column_concepts=["objective response rate", "overall survival",
                         "other efficacy"],
    )


def table1_nested() -> Table:
    """Table 1 of the paper: sample non-1NF table with nesting."""
    return Table(
        caption="Treatment outcomes from colon cancer study",
        header_rows=[["Treatment", "Cohort Size", "Efficacy"]],
        data=[
            ["ramucirumab", "118", nested_efficacy_table()],
            ["chemotherapy", "236", "15.1 months"],
        ],
        header_cols=[["colon", "rectal"]],
        topic="colorectal cancer treatment",
        column_concepts=["treatment", "cohort size", "efficacy"],
        entity_types=[["drug", None, None], ["treatment", None, None]],
    )


def table2_relational() -> Table:
    """Table 2 of the paper: a plain relational table."""
    return Table(
        caption="Employees",
        header_rows=[["Name", "Age", "Job"]],
        data=[
            ["Sam", "28", "Engineer"],
            ["Alice", "34", "Lawyer"],
            ["Bob", "41", "Scientist"],
        ],
        topic="employees",
        column_concepts=["person name", "age", "occupation"],
        entity_types=[["person", None, None]] * 3,
    )
