"""The cell: raw text, parsed value, coordinates, and gold labels."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..text.units import feature_bits
from .coordinates import BiCoordinates
from .values import (
    CellValue,
    GaussianValue,
    NestedTableValue,
    NumberValue,
    RangeValue,
    TextValue,
    parse_value,
)


@dataclass
class Cell:
    """One data cell of a table.

    Attributes
    ----------
    text:
        Raw surface form (what a reader sees).
    value:
        Parsed :class:`~repro.tables.values.CellValue`.
    coords:
        Bi-dimensional coordinates within the enclosing table.
    entity_type:
        Optional gold semantic label stamped by the synthetic generators
        (used as evaluation ground truth, standing in for the paper's
        human annotators).
    """

    text: str
    value: CellValue = None  # type: ignore[assignment]
    coords: BiCoordinates = field(default_factory=BiCoordinates)
    entity_type: str | None = None

    def __post_init__(self):
        if self.value is None:
            self.value = parse_value(self.text)

    # -- shape predicates --------------------------------------------------
    @property
    def is_numeric(self) -> bool:
        return isinstance(self.value, (NumberValue, RangeValue, GaussianValue))

    @property
    def is_range(self) -> bool:
        return isinstance(self.value, RangeValue)

    @property
    def is_gaussian(self) -> bool:
        return isinstance(self.value, GaussianValue)

    @property
    def is_text(self) -> bool:
        return isinstance(self.value, TextValue)

    @property
    def has_nested_table(self) -> bool:
        return isinstance(self.value, NestedTableValue)

    @property
    def nested_table(self) -> Any | None:
        if isinstance(self.value, NestedTableValue):
            return self.value.table
        return None

    @property
    def unit(self) -> str | None:
        return getattr(self.value, "unit", None)

    @property
    def unit_category(self) -> str | None:
        return getattr(self.value, "category", None)

    def cell_features(self) -> list[int]:
        """The paper's 8-bit unit/nesting feature vector for this cell."""
        return feature_bits(self.unit_category, self.has_nested_table)

    def numbers(self) -> list[float]:
        """All numeric scalars carried by the value (for E_num features)."""
        value = self.value
        if isinstance(value, NumberValue):
            return [value.value]
        if isinstance(value, RangeValue):
            return [value.start, value.end]
        if isinstance(value, GaussianValue):
            return [value.mean, value.std]
        return []
