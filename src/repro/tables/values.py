"""Typed cell values: text, numbers with units, ranges, gaussians, nesting.

The paper's BiN tables contain "strings, numbers with and without units,
ranges, Gaussians, and nested tables" (Section 2.2).  Cell parsing here
recognizes each shape; the TabBiN embedding layer then encodes numeric
features (E_num), unit bits (E_fmt) and nested coordinates (E_tpos) from
the parsed value.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from ..text.units import unit_category

_NUMBER = r"[+-]?(?:\d+\.?\d*|\.\d+)"
_UNIT = r"[%a-zA-Z\N{DEGREE SIGN}][\w%\N{DEGREE SIGN}]*(?:\s+[a-zA-Z]+)?"

_NUMBER_RE = re.compile(rf"^\s*(?P<num>{_NUMBER})\s*(?P<unit>{_UNIT})?\s*$")
_RANGE_RE = re.compile(
    rf"^\s*(?P<start>{_NUMBER})\s*(?:-|–|—|to)\s*(?P<end>{_NUMBER})"
    rf"\s*(?P<unit>{_UNIT})?\s*$",
    re.IGNORECASE,
)
_GAUSSIAN_RE = re.compile(
    rf"^\s*(?P<mean>{_NUMBER})\s*(?:±|\+/-)\s*(?P<std>{_NUMBER})"
    rf"\s*(?P<unit>{_UNIT})?\s*$"
)


@dataclass(frozen=True)
class CellValue:
    """Base class for parsed cell payloads."""

    def render(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class TextValue(CellValue):
    """A plain string cell."""

    text: str

    def render(self) -> str:
        return self.text


@dataclass(frozen=True)
class NumberValue(CellValue):
    """A numeric cell, optionally annotated with a unit.

    ``unit`` is the surface spelling (e.g. ``"months"``); ``category`` is
    one of the paper's seven unit categories or ``None``.
    """

    value: float
    unit: str | None = None
    category: str | None = None

    def render(self) -> str:
        text = _format_number(self.value)
        return f"{text} {self.unit}" if self.unit else text


@dataclass(frozen=True)
class RangeValue(CellValue):
    """A numeric range ``start–end`` with an optional shared unit.

    The paper treats ranges "according to their semantics, not blindly as
    a sequence of numbers" — the composite embedding concatenates
    attribute, unit, range start and range end (Figure 4b).
    """

    start: float
    end: float
    unit: str | None = None
    category: str | None = None

    def render(self) -> str:
        text = f"{_format_number(self.start)}-{_format_number(self.end)}"
        return f"{text} {self.unit}" if self.unit else text

    @property
    def width(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class GaussianValue(CellValue):
    """A ``mean ± std`` cell, common in medical result tables."""

    mean: float
    std: float
    unit: str | None = None
    category: str | None = None

    def render(self) -> str:
        text = f"{_format_number(self.mean)} \N{PLUS-MINUS SIGN} {_format_number(self.std)}"
        return f"{text} {self.unit}" if self.unit else text


@dataclass(frozen=True)
class NestedTableValue(CellValue):
    """A whole table nested inside a cell, with its own metadata.

    The payload is a :class:`repro.tables.table.Table`; typed as ``Any``
    here to keep the value layer free of circular imports.
    """

    table: Any = field(repr=False)

    def render(self) -> str:
        caption = getattr(self.table, "caption", "")
        return f"[nested table: {caption}]" if caption else "[nested table]"


def _format_number(x: float) -> str:
    if float(x).is_integer():
        return str(int(x))
    return f"{x:.10g}"


def parse_value(text: str) -> CellValue:
    """Parse raw cell text into the most specific value shape.

    Order matters: gaussian before range before number, because the
    broader patterns subsume the narrower ones' prefixes.
    """
    stripped = text.strip()
    if not stripped:
        return TextValue("")

    match = _GAUSSIAN_RE.match(stripped)
    if match:
        unit, cat = _unit_of(match)
        if unit is not None or match.group("unit") is None:
            return GaussianValue(
                float(match.group("mean")), float(match.group("std")), unit, cat
            )

    match = _RANGE_RE.match(stripped)
    if match:
        unit, cat = _unit_of(match)
        if unit is not None or match.group("unit") is None:
            start, end = float(match.group("start")), float(match.group("end"))
            # Reject year-like spans handled better as text/dates (2010-2014
            # is still a range numerically, so only reject reversed bounds).
            if end >= start:
                return RangeValue(start, end, unit, cat)

    match = _NUMBER_RE.match(stripped)
    if match:
        unit, cat = _unit_of(match)
        if unit is not None or match.group("unit") is None:
            return NumberValue(float(match.group("num")), unit, cat)

    return TextValue(stripped)


def _unit_of(match: re.Match) -> tuple[str | None, str | None]:
    """Normalize a regex-captured unit; unknown units are dropped."""
    raw = match.group("unit")
    if raw is None:
        return None, None
    unit = raw.strip().lower()
    category = unit_category(unit)
    if category is None:
        return None, None
    return unit, category
