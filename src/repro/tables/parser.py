"""Parse raw rectangular grids into :class:`~repro.tables.table.Table`.

Real corpora arrive as grids of strings where the first ``h`` rows are
horizontal metadata and the first ``v`` columns are vertical metadata;
merged (spanning) labels appear once and repeat as empty strings.  This
is the entry point the metadata classifiers feed (they predict ``h`` and
``v``); tests and generators use it directly.
"""

from __future__ import annotations

from .table import Table


def parse_grid(grid: list[list[str]], n_header_rows: int = 1,
               n_header_cols: int = 0, caption: str = "",
               topic: str | None = None) -> Table:
    """Split a raw grid into HMD / VMD / data and build a table.

    Parameters
    ----------
    grid:
        Rectangular list of rows of strings (or nested ``Table`` objects
        in the data region).  Empty strings under/right of a label are
        treated as the continuation of a merged span.
    n_header_rows:
        Number of leading rows that are horizontal metadata levels.
    n_header_cols:
        Number of leading columns that are vertical metadata levels.
    """
    if not grid:
        raise ValueError("empty grid")
    width = len(grid[0])
    if any(len(row) != width for row in grid):
        raise ValueError("grid is ragged")
    if n_header_rows >= len(grid):
        raise ValueError("no data rows left after removing header rows")
    if n_header_cols >= width:
        raise ValueError("no data columns left after removing header columns")

    header_rows = [
        [_label_or_none(slot) for slot in row[n_header_cols:]]
        for row in grid[:n_header_rows]
    ]
    body = grid[n_header_rows:]
    header_cols = [
        [_label_or_none(row[level]) for row in body]
        for level in range(n_header_cols)
    ]
    data = [row[n_header_cols:] for row in body]
    return Table(
        caption=caption,
        header_rows=header_rows,
        data=data,
        header_cols=header_cols or None,
        topic=topic,
    )


def _label_or_none(slot) -> str | None:
    """Merged-span continuations (empty strings) become ``None``."""
    if slot is None:
        return None
    text = str(slot).strip()
    return text if text else None
