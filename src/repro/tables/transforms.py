"""Structural transforms: BiN tables ↔ relational views.

The paper contrasts TabBiN with Auto-Tables [48], which *relationalizes*
non-relational tables so SQL tools can query them.  TabBiN instead
embeds BiN tables natively — but downstream consumers (SQL engines,
dataframe libraries) still want 1NF views, so this module provides the
lossy-but-faithful flattening operators:

- :func:`flatten_to_relational` — qualified single-row header, VMD
  levels hoisted into leading key columns, nested tables expanded into
  suffixed columns;
- :func:`transpose_table` — swap rows/columns (HMD ↔ VMD);
- :func:`unnest` — pull every nested table out as a standalone table
  carrying its provenance.
"""

from __future__ import annotations

from .table import Table


def flatten_to_relational(table: Table, sep: str = " / ") -> Table:
    """A 1NF view of a BiN table.

    Hierarchical HMD collapses into qualified labels ("Efficacy End
    Point / OS"); each VMD level becomes a leading key column; a nested
    table inside a cell expands into one column per nested cell, labeled
    ``<outer> / <nested header>``.  The result is relational
    (single-header, no VMD, no nesting) by construction.
    """
    header: list[str] = []
    vmd_depth = table.vmd_tree.depth
    for level in range(vmd_depth):
        labels = {l.label for l in table.vmd_labels() if l.level == level + 1}
        header.append(f"key{level + 1}" if len(labels) != 1 else
                      next(iter(labels)))

    # Map each original column to one or more flat columns.
    nested_widths: dict[int, list[str]] = {}
    for j in range(table.n_cols):
        base = table.qualified_column_label(j).replace(" → ", sep) or f"col{j}"
        nested_headers: list[str] = []
        for i in range(table.n_rows):
            cell = table.data[i][j]
            if cell.has_nested_table:
                inner = cell.nested_table
                headers = [inner.column_label(k) or f"c{k}"
                           for k in range(inner.n_cols)]
                if len(headers) > len(nested_headers):
                    nested_headers = headers
        if nested_headers:
            nested_widths[j] = [f"{base}{sep}{h}" for h in nested_headers]
            header.extend(nested_widths[j])
        else:
            header.append(base)

    rows: list[list[str]] = []
    for i in range(table.n_rows):
        row: list[str] = []
        for level in range(vmd_depth):
            labels = [l.label for l in table.vmd_labels()
                      if l.level == level + 1 and l.span[0] <= i < l.span[1]]
            row.append(labels[0] if labels else "")
        for j in range(table.n_cols):
            cell = table.data[i][j]
            if j in nested_widths:
                width = len(nested_widths[j])
                if cell.has_nested_table:
                    inner = cell.nested_table
                    flat = [inner.data[0][k].text if inner.n_rows else ""
                            for k in range(inner.n_cols)]
                    flat += [""] * (width - len(flat))
                    row.extend(flat[:width])
                else:
                    row.extend([cell.text] + [""] * (width - 1))
            else:
                row.append(cell.text)
        rows.append(row)

    return Table(
        caption=table.caption,
        header_rows=[header],
        data=rows,
        topic=table.topic,
        source=table.source,
    )


def transpose_table(table: Table) -> Table:
    """Swap the table's axes: columns become rows, HMD becomes VMD.

    Only defined for tables without nesting (a nested cell has no
    transposed interpretation); raises ``ValueError`` otherwise.
    """
    if table.has_nesting:
        raise ValueError("cannot transpose a table containing nested tables")
    data = [[table.data[i][j].text for i in range(table.n_rows)]
            for j in range(table.n_cols)]
    header_rows = table.vmd_tree.levels or [
        [f"row {i + 1}" for i in range(table.n_rows)]
    ]
    header_cols = table.hmd_tree.levels or None
    return Table(
        caption=table.caption,
        header_rows=header_rows,
        data=data,
        header_cols=header_cols,
        topic=table.topic,
        source=table.source,
    )


def unnest(table: Table) -> list[Table]:
    """Extract every nested table, captioned with its provenance.

    Returns standalone tables whose captions record the enclosing cell's
    qualified column/row labels, recursing into nested-in-nested tables.
    """
    out: list[Table] = []
    for i in range(table.n_rows):
        for j in range(table.n_cols):
            cell = table.data[i][j]
            if not cell.has_nested_table:
                continue
            inner = cell.nested_table
            provenance = table.qualified_column_label(j)
            row_label = table.qualified_row_label(i)
            if row_label:
                provenance = f"{provenance}; {row_label}"
            lifted = Table(
                caption=f"{inner.caption} (from {table.caption}: {provenance})",
                header_rows=inner.hmd_tree.levels or [[
                    f"c{k}" for k in range(inner.n_cols)
                ]],
                data=[[inner.data[r][c].text for c in range(inner.n_cols)]
                      for r in range(inner.n_rows)],
                header_cols=inner.vmd_tree.levels or None,
                topic=inner.topic or table.topic,
                source=table.source,
            )
            out.append(lifted)
            out.extend(unnest(inner))
    return out
