"""The table model: ``T = [C, H, V, D]`` (Section 2.1).

A table is a caption ``C``, horizontal metadata ``H`` (one or more header
rows, possibly hierarchical), vertical metadata ``V`` (zero or more
header columns, possibly hierarchical), and a data grid ``D`` whose cells
may hold text, numbers with units, ranges, gaussians, or entire nested
tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cell import Cell
from .coordinates import BiCoordinates, CoordinateContext
from .tree import MetadataNode, MetadataTree
from .values import NestedTableValue, parse_value


@dataclass(frozen=True)
class MetadataLabel:
    """A metadata label with its tree location (used by the serializer).

    ``level`` is 1-based depth; ``span`` the half-open leaf range the
    label covers; ``position`` its index among its level's labels.
    """

    label: str
    level: int
    span: tuple[int, int]
    position: int
    orientation: str  # "hmd" or "vmd"

    def coords(self) -> BiCoordinates:
        """Coordinates of the label itself.

        An HMD label at level ``l`` sits in header row ``l - 1`` and
        starts at its span's first column; its horizontal path position
        is its index among the level's labels (symmetrically for VMD).
        """
        if self.orientation == "hmd":
            return BiCoordinates(horizontal=(self.position,),
                                 row=self.level - 1, col=self.span[0])
        return BiCoordinates(vertical=(self.position,),
                             row=self.span[0], col=self.level - 1)


class Table:
    """A (possibly non-relational) table with bi-dimensional metadata.

    Parameters
    ----------
    caption:
        Short description of the table (``C`` in the paper).
    header_rows:
        HMD levels: each level has one slot per data column; spanning
        labels are written once and continued with ``None``.
    header_cols:
        VMD levels: each level has one slot per data row.
    data:
        ``n x m`` grid; entries are raw strings or :class:`Table`
        instances (which become nested tables).
    topic:
        Gold topic label (ground truth for Table Clustering).
    column_concepts:
        Gold per-column concept names (ground truth for Column
        Clustering); defaults to the qualified HMD label.
    entity_types:
        Optional ``n x m`` grid of gold entity-type labels for cells.
    """

    def __init__(self, caption: str, header_rows: list[list[str | None]],
                 data: list[list], header_cols: list[list[str | None]] | None = None,
                 topic: str | None = None,
                 column_concepts: list[str] | None = None,
                 entity_types: list[list[str | None]] | None = None,
                 source: str | None = None):
        self.caption = caption
        self.topic = topic
        self.source = source
        if not data or not data[0]:
            raise ValueError("table must have at least one data cell")
        self.n_rows = len(data)
        self.n_cols = len(data[0])
        for i, row in enumerate(data):
            if len(row) != self.n_cols:
                raise ValueError(f"ragged data: row {i} has {len(row)} cells, "
                                 f"expected {self.n_cols}")

        self.hmd_tree = MetadataTree(header_rows, width=self.n_cols)
        self.vmd_tree = MetadataTree(header_cols or [], width=self.n_rows)

        context = CoordinateContext(
            hmd_coordinate=tuple(self.hmd_tree.coordinate(j) for j in range(self.n_cols)),
            vmd_coordinate=tuple(self.vmd_tree.coordinate(i) for i in range(self.n_rows)),
        )
        self.data: list[list[Cell]] = []
        for i, row in enumerate(data):
            cells: list[Cell] = []
            for j, raw in enumerate(row):
                coords = context.for_cell(i, j)
                entity = None
                if entity_types is not None:
                    entity = entity_types[i][j]
                cells.append(_make_cell(raw, coords, entity))
            self.data.append(cells)

        if column_concepts is not None and len(column_concepts) != self.n_cols:
            raise ValueError("column_concepts length must equal n_cols")
        self._column_concepts = column_concepts

    # -- structure predicates -------------------------------------------------
    @property
    def has_hmd(self) -> bool:
        return self.hmd_tree.depth > 0

    @property
    def has_vmd(self) -> bool:
        return self.vmd_tree.depth > 0

    @property
    def has_hierarchical_metadata(self) -> bool:
        return self.hmd_tree.is_hierarchical() or self.vmd_tree.is_hierarchical()

    @property
    def has_nesting(self) -> bool:
        return any(cell.has_nested_table for cell in self.all_cells())

    @property
    def is_relational(self) -> bool:
        """1NF shape: a single header row, no VMD, no nesting."""
        return (self.hmd_tree.depth <= 1 and not self.has_vmd
                and not self.has_nesting)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    def numeric_fraction(self) -> float:
        cells = list(self.all_cells())
        if not cells:
            return 0.0
        return sum(c.is_numeric for c in cells) / len(cells)

    # -- access -----------------------------------------------------------------
    def row(self, i: int) -> list[Cell]:
        return self.data[i]

    def column(self, j: int) -> list[Cell]:
        return [self.data[i][j] for i in range(self.n_rows)]

    def all_cells(self):
        for row in self.data:
            yield from row

    def nested_tables(self) -> list["Table"]:
        return [cell.nested_table for cell in self.all_cells()
                if cell.has_nested_table]

    def column_label(self, j: int) -> str:
        """Deepest HMD label of column ``j``."""
        return self.hmd_tree.leaf_label(j)

    def qualified_column_label(self, j: int) -> str:
        return self.hmd_tree.qualified_label(j)

    def row_label(self, i: int) -> str:
        """Deepest VMD label of row ``i`` (empty when no VMD)."""
        return self.vmd_tree.leaf_label(i)

    def qualified_row_label(self, i: int) -> str:
        return self.vmd_tree.qualified_label(i)

    def column_concept(self, j: int) -> str:
        """Gold concept for CC evaluation (falls back to the HMD label)."""
        if self._column_concepts is not None:
            return self._column_concepts[j]
        return self.column_label(j).lower()

    # -- metadata enumeration (for the serializer) ---------------------------------
    def hmd_labels(self) -> list[MetadataLabel]:
        return _labels_of(self.hmd_tree, "hmd")

    def vmd_labels(self) -> list[MetadataLabel]:
        return _labels_of(self.vmd_tree, "vmd")

    # -- serialization -------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "caption": self.caption,
            "topic": self.topic,
            "source": self.source,
            "header_rows": self.hmd_tree.levels,
            "header_cols": self.vmd_tree.levels,
            "column_concepts": self._column_concepts,
            "data": [
                [
                    {"nested": cell.nested_table.to_dict()}
                    if cell.has_nested_table
                    else {"text": cell.text, "entity": cell.entity_type}
                    for cell in row
                ]
                for row in self.data
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Table":
        data: list[list] = []
        entities: list[list[str | None]] = []
        for row in payload["data"]:
            data_row: list = []
            entity_row: list[str | None] = []
            for item in row:
                if "nested" in item:
                    data_row.append(cls.from_dict(item["nested"]))
                    entity_row.append(None)
                else:
                    data_row.append(item["text"])
                    entity_row.append(item.get("entity"))
            data.append(data_row)
            entities.append(entity_row)
        return cls(
            caption=payload["caption"],
            header_rows=payload["header_rows"],
            data=data,
            header_cols=payload["header_cols"] or None,
            topic=payload.get("topic"),
            column_concepts=payload.get("column_concepts"),
            entity_types=entities,
            source=payload.get("source"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "relational" if self.is_relational else "BiN"
        return (f"Table({self.caption!r}, {self.n_rows}x{self.n_cols}, {kind}, "
                f"hmd_depth={self.hmd_tree.depth}, vmd_depth={self.vmd_tree.depth})")


def _make_cell(raw, coords: BiCoordinates, entity: str | None) -> Cell:
    if isinstance(raw, Table):
        value = NestedTableValue(raw)
        return Cell(text=value.render(), value=value, coords=coords,
                    entity_type=entity)
    text = str(raw)
    return Cell(text=text, value=parse_value(text), coords=coords,
                entity_type=entity)


def _labels_of(tree: MetadataTree, orientation: str) -> list[MetadataLabel]:
    out: list[MetadataLabel] = []
    for node in tree.nodes():
        out.append(MetadataLabel(
            label=node.label, level=node.level, span=node.span,
            position=node.position, orientation=orientation,
        ))
    return out
