"""Table substrate: BiN tables with hierarchical metadata and nesting."""

from .cell import Cell
from .coordinates import BiCoordinates, CoordinateContext
from .examples import (
    figure1_table,
    nested_efficacy_table,
    table1_nested,
    table2_relational,
)
from .io import load_corpus, save_corpus
from .parser import parse_grid
from .table import MetadataLabel, Table
from .transforms import flatten_to_relational, transpose_table, unnest
from .tree import MetadataNode, MetadataTree
from .values import (
    CellValue,
    GaussianValue,
    NestedTableValue,
    NumberValue,
    RangeValue,
    TextValue,
    parse_value,
)

__all__ = [
    "Table", "Cell", "MetadataLabel", "MetadataTree", "MetadataNode",
    "BiCoordinates", "CoordinateContext",
    "CellValue", "TextValue", "NumberValue", "RangeValue", "GaussianValue",
    "NestedTableValue", "parse_value",
    "parse_grid", "save_corpus", "load_corpus",
    "flatten_to_relational", "transpose_table", "unnest",
    "figure1_table", "table1_nested", "table2_relational",
    "nested_efficacy_table",
]
