"""Hierarchical metadata trees (coordinate trees).

Section 2.3: "There are two coordinate-trees — horizontal and vertical
... Both coordinate values correspond to the paths from the root nodes of
the trees to the cell."

A tree is built from a *header grid*: a list of levels, each level a list
with one slot per data column (HMD) or per data row (VMD).  A label that
spans several slots is written once and continued with ``None``; deeper
levels refine their parent's span.  Example (HMD for Figure 1)::

    level 0: ["Efficacy End Point", None,  None ]
    level 1: ["ORR",               "OS",  "Other Efficacy"]
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MetadataNode:
    """A node in a coordinate tree.

    ``span`` is the half-open range of leaf indexes (columns for HMD,
    rows for VMD) the label covers; ``level`` is its depth (root = 0 is
    the synthetic tree root, real labels start at level 1).
    """

    label: str
    level: int
    span: tuple[int, int]
    children: list["MetadataNode"] = field(default_factory=list)
    #: Position of this node among its level's nodes (left to right).
    position: int = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def covers(self, index: int) -> bool:
        return self.span[0] <= index < self.span[1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetadataNode({self.label!r}, level={self.level}, span={self.span})"


class MetadataTree:
    """A coordinate tree over ``width`` leaf slots.

    Provides path queries used for bi-dimensional coordinates: for a leaf
    index, :meth:`path` returns the labels root→leaf and
    :meth:`coordinate` the per-level node positions — the ``<2,7>``-style
    vectors in Figure 1.
    """

    def __init__(self, levels: list[list[str | None]], width: int | None = None):
        if levels and width is None:
            width = len(levels[0])
        self.width = width or 0
        for i, level in enumerate(levels):
            if len(level) != self.width:
                raise ValueError(
                    f"level {i} has {len(level)} slots, expected {self.width}"
                )
        self.levels = [list(level) for level in levels]
        self.root = MetadataNode("", 0, (0, self.width))
        self._build()

    @property
    def depth(self) -> int:
        """Number of metadata levels (0 for a tree with no metadata)."""
        return len(self.levels)

    def _build(self) -> None:
        parents = [self.root]
        for level_idx, level in enumerate(self.levels, start=1):
            nodes: list[MetadataNode] = []
            start = None
            label = None
            spans: list[tuple[str, int, int]] = []
            for i, slot in enumerate(level):
                if slot is not None:
                    if label is not None:
                        spans.append((label, start, i))
                    label, start = slot, i
            if label is not None:
                spans.append((label, start, self.width))
            for position, (lbl, lo, hi) in enumerate(spans):
                node = MetadataNode(lbl, level_idx, (lo, hi), position=position)
                parent = next((p for p in parents if p.covers(lo)), self.root)
                parent.children.append(node)
                nodes.append(node)
            if nodes:
                parents = nodes

    # -- queries ------------------------------------------------------------
    def path(self, index: int) -> list[MetadataNode]:
        """Nodes covering leaf ``index``, shallowest first (root excluded)."""
        if not 0 <= index < self.width:
            raise IndexError(f"leaf index {index} out of range [0, {self.width})")
        out: list[MetadataNode] = []
        node = self.root
        while True:
            child = next((c for c in node.children if c.covers(index)), None)
            if child is None:
                return out
            out.append(child)
            node = child

    def path_labels(self, index: int) -> list[str]:
        """Labels along :meth:`path`, e.g. ``["Efficacy End Point", "OS"]``."""
        return [node.label for node in self.path(index)]

    def coordinate(self, index: int) -> tuple[int, ...]:
        """Per-level node positions along the path to leaf ``index``.

        This is the ``<i, j, ...>`` component of the paper's
        bi-dimensional coordinates: one integer per hierarchy level.
        """
        return tuple(node.position for node in self.path(index))

    def leaf_label(self, index: int) -> str:
        """Deepest label covering ``index`` (empty string if none)."""
        path = self.path(index)
        return path[-1].label if path else ""

    def qualified_label(self, index: int, sep: str = " → ") -> str:
        """Full hierarchical label, e.g. ``Efficacy End Point → OS``."""
        return sep.join(self.path_labels(index))

    def nodes(self) -> list[MetadataNode]:
        """All nodes in breadth-first order (root excluded)."""
        out: list[MetadataNode] = []
        frontier = list(self.root.children)
        while frontier:
            out.extend(frontier)
            frontier = [c for node in frontier for c in node.children]
        return out

    def is_hierarchical(self) -> bool:
        """True when the tree has more than one metadata level."""
        return self.depth > 1
