"""Experiment harness: results tables in the paper's format.

Benchmarks accumulate (row, column) -> "MAP/MRR" cells into a
:class:`ResultsTable`, print it, and optionally persist it as markdown —
the artifact EXPERIMENTS.md links for each reproduced table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class ResultsTable:
    """A small ordered grid of experiment results."""

    title: str
    columns: list[str]
    rows: dict[str, dict[str, str]] = field(default_factory=dict)
    row_order: list[str] = field(default_factory=list)

    def add(self, row: str, column: str, value) -> None:
        if column not in self.columns:
            raise KeyError(f"unknown column {column!r}; declared: {self.columns}")
        if row not in self.rows:
            self.rows[row] = {}
            self.row_order.append(row)
        self.rows[row][column] = str(value)

    def get(self, row: str, column: str) -> str:
        return self.rows[row][column]

    def to_markdown(self) -> str:
        header = "| " + " | ".join([""] + self.columns) + " |"
        rule = "|" + "|".join(["---"] * (len(self.columns) + 1)) + "|"
        lines = [f"### {self.title}", "", header, rule]
        for row in self.row_order:
            cells = [self.rows[row].get(col, "-") for col in self.columns]
            lines.append("| " + " | ".join([row] + cells) + " |")
        return "\n".join(lines)

    def to_text(self) -> str:
        widths = [max(len(row) for row in self.row_order + [""])]
        widths += [
            max(len(col), *(len(self.rows[r].get(col, "-")) for r in self.row_order))
            if self.row_order else len(col)
            for col in self.columns
        ]
        def fmt(cells):
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
        lines = [self.title, fmt([""] + self.columns)]
        for row in self.row_order:
            lines.append(fmt([row] + [self.rows[row].get(c, "-") for c in self.columns]))
        return "\n".join(lines)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_markdown() + "\n")
        return path

    def show(self) -> None:
        print("\n" + self.to_text() + "\n")


def results_dir() -> Path:
    """Where benchmark harnesses drop their markdown tables."""
    root = Path(__file__).resolve().parents[3]
    out = root / "results"
    out.mkdir(exist_ok=True)
    return out
