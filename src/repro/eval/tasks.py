"""The three downstream tasks: CC, TC, EC (Sections 4.1-4.3).

Each task runner takes an *embedding function* (so TabBiN and every
baseline are evaluated through exactly the same protocol), ranks by
cosine similarity, forms top-20 clusters, and scores them with MAP@20 /
MRR@20 against the generator's gold labels (which replace the paper's
human annotators).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..retrieval.clustering import centroid_ranking, rank_neighbors, topic_centroid
from ..retrieval.lsh import CosineLSH
from ..tables.table import Table
from .metrics import mean_average_precision, mean_reciprocal_rank


@dataclass(frozen=True)
class TaskResult:
    """MAP/MRR of one (model, dataset, task) cell of a results table."""

    map_at_k: float
    mrr_at_k: float
    n_queries: int
    k: int = 20

    def __str__(self) -> str:
        return f"{self.map_at_k:.2f}/{self.mrr_at_k:.2f}"


# ----------------------------------------------------------------------
# Column Clustering
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnRef:
    """A (table, column) pair with its gold concept."""

    table_index: int
    column: int
    concept: str


def collect_columns(corpus: list[Table],
                    predicate: Callable[[Table, int], bool] | None = None
                    ) -> list[ColumnRef]:
    """Enumerate evaluable columns, optionally filtered (e.g. numeric
    only, string only, large tables only)."""
    out: list[ColumnRef] = []
    for t_idx, table in enumerate(corpus):
        for j in range(table.n_cols):
            if predicate is None or predicate(table, j):
                out.append(ColumnRef(t_idx, j, table.column_concept(j)))
    return out


def column_clustering(corpus: list[Table],
                      embed_column: Callable[[Table, int], np.ndarray],
                      columns: list[ColumnRef] | None = None,
                      k: int = 20, max_queries: int | None = None,
                      use_lsh: bool = False, seed: int = 0) -> TaskResult:
    """CC: rank columns against each query column; relevant = same
    concept (the schema-matching correspondence the paper targets)."""
    columns = columns if columns is not None else collect_columns(corpus)
    if len(columns) < 2:
        raise ValueError("need at least two columns to cluster")
    vectors = np.stack([
        embed_column(corpus[ref.table_index], ref.column) for ref in columns
    ])
    lsh = None
    if use_lsh:
        lsh = CosineLSH(dim=vectors.shape[1], n_planes=6, n_bands=6, seed=seed)
        lsh.add_all(vectors)
    concepts = [ref.concept for ref in columns]
    counts: dict[str, int] = {}
    for concept in concepts:
        counts[concept] = counts.get(concept, 0) + 1
    query_ids = _sample(len(columns), max_queries, seed)
    relevance, totals = [], []
    for q in query_ids:
        total = counts[concepts[q]] - 1
        if total < 1:
            continue  # nothing to retrieve for a singleton concept
        neighbors = rank_neighbors(q, vectors, k=k, lsh=lsh)
        relevance.append([concepts[i] == concepts[q] for i in neighbors])
        totals.append(total)
    if not relevance:
        raise ValueError("no query column has a same-concept counterpart")
    return TaskResult(
        map_at_k=mean_average_precision(relevance, k, totals),
        mrr_at_k=mean_reciprocal_rank(relevance, k),
        n_queries=len(relevance), k=k,
    )


# ----------------------------------------------------------------------
# Table Clustering
# ----------------------------------------------------------------------
def table_clustering(corpus: list[Table],
                     embed_table: Callable[[Table], np.ndarray],
                     tables: list[int] | None = None,
                     k: int = 20, seed: int = 0,
                     centroid_seeds: int = 3) -> TaskResult:
    """TC: per topic, rank all tables against the topic centroid
    (Section 4.2); relevant = same gold topic."""
    ids = tables if tables is not None else list(range(len(corpus)))
    labeled = [i for i in ids if corpus[i].topic is not None]
    if len(labeled) < 2:
        raise ValueError("need at least two topic-labeled tables")
    vectors = np.stack([embed_table(corpus[i]) for i in labeled])
    topics = [corpus[i].topic for i in labeled]
    rng = np.random.default_rng(seed)
    relevance, totals = [], []
    for topic in sorted(set(topics)):
        members = [i for i, t in enumerate(topics) if t == topic]
        if len(members) < 2:
            continue
        seeds = list(rng.choice(members, size=min(centroid_seeds, len(members)),
                                replace=False))
        centroid = topic_centroid(vectors, seeds)
        ranked = centroid_ranking(centroid, vectors, k=k)
        relevance.append([topics[i] == topic for i in ranked])
        totals.append(len(members))
    if not relevance:
        raise ValueError("no topic had at least two tables")
    return TaskResult(
        map_at_k=mean_average_precision(relevance, k, totals),
        mrr_at_k=mean_reciprocal_rank(relevance, k),
        n_queries=len(relevance), k=k,
    )


# ----------------------------------------------------------------------
# Entity Clustering
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EntityRef:
    """A catalog entry: surface form plus gold entity type."""

    text: str
    entity_type: str


def collect_entities(corpus: list[Table],
                     max_per_type: int | None = None,
                     seed: int = 0) -> list[EntityRef]:
    """Harvest the entity catalog from gold-typed cells (Section 4.3:
    columns with labels specific to each dataset)."""
    by_type: dict[str, list[str]] = {}
    for table in corpus:
        for cell in table.all_cells():
            if cell.entity_type and cell.text:
                bucket = by_type.setdefault(cell.entity_type, [])
                if cell.text not in bucket:
                    bucket.append(cell.text)
    rng = np.random.default_rng(seed)
    out: list[EntityRef] = []
    for entity_type in sorted(by_type):
        values = by_type[entity_type]
        if max_per_type is not None and len(values) > max_per_type:
            values = list(rng.choice(values, size=max_per_type, replace=False))
        out.extend(EntityRef(v, entity_type) for v in values)
    return out


def entity_clustering(entities: list[EntityRef],
                      embed_entity: Callable[[str], np.ndarray],
                      k: int = 20, max_queries: int | None = None,
                      seed: int = 0) -> TaskResult:
    """EC: rank catalog entries against each query entity; relevant =
    same entity type; AP@20 averaged per type then across types."""
    if len(entities) < 2:
        raise ValueError("need at least two entities")
    vectors = np.stack([embed_entity(e.text) for e in entities])
    types = [e.entity_type for e in entities]
    query_ids = _sample(len(entities), max_queries, seed)
    per_type: dict[str, list[tuple[list[bool], int]]] = {}
    for q in query_ids:
        neighbors = rank_neighbors(q, vectors, k=k)
        rel = [types[i] == types[q] for i in neighbors]
        total = sum(1 for t in types if t == types[q]) - 1
        if total > 0:
            per_type.setdefault(types[q], []).append((rel, total))
    maps, mrrs = [], []
    for entity_type in sorted(per_type):
        rels = [r for r, _t in per_type[entity_type]]
        tots = [t for _r, t in per_type[entity_type]]
        maps.append(mean_average_precision(rels, k, tots))
        mrrs.append(mean_reciprocal_rank(rels, k))
    return TaskResult(
        map_at_k=float(np.mean(maps)) if maps else 0.0,
        mrr_at_k=float(np.mean(mrrs)) if mrrs else 0.0,
        n_queries=len(query_ids), k=k,
    )


def _sample(n: int, max_queries: int | None, seed: int) -> list[int]:
    if max_queries is None or n <= max_queries:
        return list(range(n))
    rng = np.random.default_rng(seed)
    return sorted(rng.choice(n, size=max_queries, replace=False).tolist())
