"""Evaluation: metrics, the CC/TC/EC task runners, results tables."""

from .harness import ResultsTable, results_dir
from .metrics import (
    average_precision_at_k,
    f1_score,
    mean_average_precision,
    mean_reciprocal_rank,
    precision_recall_f1,
    reciprocal_rank_at_k,
)
from .tasks import (
    ColumnRef,
    EntityRef,
    TaskResult,
    collect_columns,
    collect_entities,
    column_clustering,
    entity_clustering,
    table_clustering,
)

__all__ = [
    "average_precision_at_k", "reciprocal_rank_at_k",
    "mean_average_precision", "mean_reciprocal_rank",
    "precision_recall_f1", "f1_score",
    "TaskResult", "ColumnRef", "EntityRef",
    "collect_columns", "collect_entities",
    "column_clustering", "table_clustering", "entity_clustering",
    "ResultsTable", "results_dir",
]
