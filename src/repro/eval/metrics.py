"""Ranking and classification metrics.

The paper reports MAP@20 [52] and MRR@20 [20] over ranked lists of
clustered columns/tables/entities, and F1 for the DITTO entity-matching
comparison (Section 4).
"""

from __future__ import annotations

import numpy as np


def average_precision_at_k(relevance: list[bool] | list[int], k: int = 20,
                           n_relevant: int | None = None) -> float:
    """AP@k of a ranked relevance list.

    ``relevance[i]`` marks whether the item at rank ``i`` (0-based) is
    relevant.  Normalized by ``min(k, n_relevant)`` — the best score a
    perfect ranking could reach — with ``n_relevant`` defaulting to the
    relevant count inside the window.
    """
    window = [bool(r) for r in relevance[:k]]
    hits = 0
    precision_sum = 0.0
    for rank, rel in enumerate(window, start=1):
        if rel:
            hits += 1
            precision_sum += hits / rank
    denom = min(k, n_relevant) if n_relevant is not None else hits
    if not denom:
        return 0.0
    return precision_sum / denom


def reciprocal_rank_at_k(relevance: list[bool] | list[int], k: int = 20) -> float:
    """RR@k: inverse rank of the first relevant item (0 if none)."""
    for rank, rel in enumerate(relevance[:k], start=1):
        if rel:
            return 1.0 / rank
    return 0.0


def mean_average_precision(relevance_lists: list[list[bool]], k: int = 20,
                           n_relevant: list[int] | None = None) -> float:
    """MAP@k across queries."""
    if not relevance_lists:
        return 0.0
    totals = []
    for i, rel in enumerate(relevance_lists):
        nr = n_relevant[i] if n_relevant is not None else None
        totals.append(average_precision_at_k(rel, k, nr))
    return float(np.mean(totals))


def mean_reciprocal_rank(relevance_lists: list[list[bool]], k: int = 20) -> float:
    """MRR@k across queries."""
    if not relevance_lists:
        return 0.0
    return float(np.mean([reciprocal_rank_at_k(rel, k) for rel in relevance_lists]))


def precision_recall_f1(predictions: list[int], labels: list[int]
                        ) -> tuple[float, float, float]:
    """Binary P/R/F1 with the positive class = 1."""
    predictions = np.asarray(predictions, dtype=int)
    labels = np.asarray(labels, dtype=int)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must align")
    tp = int(((predictions == 1) & (labels == 1)).sum())
    fp = int(((predictions == 1) & (labels == 0)).sum())
    fn = int(((predictions == 0) & (labels == 1)).sum())
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    return precision, recall, f1


def f1_score(predictions: list[int], labels: list[int]) -> float:
    return precision_recall_f1(predictions, labels)[2]
