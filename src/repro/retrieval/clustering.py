"""Cluster formation on top of cosine ranking (Sections 4.1-4.3).

The paper forms clusters by ranking: "for each column, we create a list
of similar columns, sorted by the cosine similarity in descending order,
the top 20 entries form a cluster"; for tables, ranking is against a
topic centroid vector.
"""

from __future__ import annotations

import numpy as np

from .lsh import CosineLSH
from .similarity import cosine_matrix, normalize_rows, top_k


def rank_neighbors(index: int, vectors: np.ndarray, k: int = 20,
                   lsh: CosineLSH | None = None) -> list[int]:
    """Ids of the top-k most similar items to ``vectors[index]``.

    With an ``lsh`` index the ranking is restricted to its blocking
    candidates, as in the paper's LSH-based CC pipeline.
    """
    if lsh is not None:
        return [i for i, _s in lsh.query(vectors[index], k, exclude=index)]
    return [i for i, _s in top_k(vectors[index], vectors, k, exclude=index)]


def top_k_cluster(index: int, vectors: np.ndarray, k: int = 20,
                  lsh: CosineLSH | None = None) -> list[int]:
    """The paper's cluster for one query item: its top-k neighbour list."""
    return rank_neighbors(index, vectors, k=k, lsh=lsh)


def centroid_ranking(centroid: np.ndarray, vectors: np.ndarray,
                     k: int = 20) -> list[int]:
    """Rank all items against a topic centroid; top-k form the cluster."""
    sims = cosine_matrix(centroid[None, :], vectors)[0]
    order = np.argsort(-sims, kind="stable")
    return [int(i) for i in order[:k]]


def topic_centroid(vectors: np.ndarray, member_ids: list[int]) -> np.ndarray:
    """Centroid embedding of a topic: the mean of its members' vectors."""
    if not member_ids:
        raise ValueError("cannot build a centroid from no members")
    return normalize_rows(vectors[member_ids]).mean(axis=0)
