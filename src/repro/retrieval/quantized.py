"""Symmetric int8 quantization kernels for the candidate shortlist tier.

The quantized tier trades nothing for its speed: candidates are scored
with an integer GEMM over an int8 copy of the vectors, cut to an
over-fetched shortlist, and the shortlist is then reranked against the
exact fp vectors through the same einsum kernels every other query path
uses — so final rankings are bit-identical to the unquantized path
whenever the shortlist contains the true top-k (the recall contract the
equivalence suite and the ``bench_quantized`` gate pin).

Determinism is load-bearing, exactly as it is for the LSH hashing
kernels: the same vector must quantize to the same ``(int8 row, scale,
norm)`` no matter whether it arrived through a bulk build, an
incremental ``add``, or a reload — duplicate vectors (the repo's only
source of exact score ties) must stay byte-identical twins in the int8
domain too, so a tie-inclusive shortlist cut keeps or drops them
*together* and the exact rerank's key tie-break sees the same
membership the unquantized path would.  Every kernel here is therefore
elementwise or an exact integer reduction:

- per-vector scale ``max(|v|) / 127`` (elementwise abs + exact max),
- ``round(v / scale)`` clipped to [-127, 127] (elementwise),
- int8·int8 dot products accumulated exactly (every product and every
  partial sum is an integer far below 2**53, so float64 accumulation
  never rounds and the order cannot matter — see ``approx_scores``),
- the approximate cosine ``scale_i * dot_i / ‖v_i‖`` in float32
  elementwise ops (per-*query* constants — the query's own scale and
  norm — are dropped: they rescale every candidate identically and so
  cannot change the per-query order).

Accumulation bounds: one product is at most ``127 * 127``, so a dot
over ``dim`` terms stays below ``2**31`` for ``dim < 133000`` and below
``2**53`` for any conceivable dimensionality — far beyond anything
this repo produces.
"""

from __future__ import annotations

import numpy as np

#: Default over-fetch multiplier: the shortlist keeps at least
#: ``k * OVERFETCH`` candidates for the exact rerank.
OVERFETCH = 4

#: Default additive margin: the shortlist never drops below
#: ``k + MARGIN`` candidates, so small-``k`` queries are not starved of
#: rerank headroom (and corpora at or below the margin are reranked in
#: full, making quantized ≡ unquantized *unconditional* there).
MARGIN = 32


def shortlist_size(k: int, overfetch: int = OVERFETCH,
                   margin: int = MARGIN) -> int:
    """How many candidates survive the integer prefilter for a top-``k``
    query: ``max(k * overfetch, k + margin)``."""
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if overfetch < 1:
        raise ValueError(f"overfetch must be at least 1, got {overfetch}")
    if margin < 0:
        raise ValueError(f"margin must be at least 0, got {margin}")
    return max(k * overfetch, k + margin)


def quantize_rows(matrix: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Symmetric per-vector int8 quantization of an ``(N, dim)`` matrix:
    ``(q8, scales, norms)`` with ``q8[i] ≈ matrix[i] / scales[i]``.

    ``scales`` is ``max(|row|) / 127`` rounded to float32 — the *stored*
    float32 value is what the rows divide by, so dequantization uses
    exactly the persisted scale.  ``norms`` is the row's exact fp L2
    norm in float32, computed from the fp vectors at quantize time (the
    quantized cosine divides by the true candidate norm; only the
    query-side constants are dropped).  An all-zero row gets scale 0,
    an all-zero int8 row and norm 0 — its approximate score is 0 for
    every query, matching the exact path's zero-norm convention.

    Every step is elementwise (or an exact max reduction along the
    row), so bulk and single-row quantization are bit-identical — pass
    a single vector as a ``(1, dim)`` matrix.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected an (N, dim) matrix, got {matrix.shape}")
    absmax = np.abs(matrix).max(axis=1) if matrix.shape[0] else \
        np.zeros(0, dtype=float)
    scales = (absmax / 127.0).astype(np.float32)
    # Divide by the float32 scale the archive will store (promoted back
    # to float64 elementwise), so a save/load round trip reproduces the
    # identical int8 rows.  Zero-scale rows divide by 1 and stay zero.
    divisor = np.where(scales > 0, scales, np.float32(1.0)).astype(float)
    q8 = np.clip(np.round(matrix / divisor[:, None]), -127, 127) \
        .astype(np.int8)
    norms = np.sqrt(np.einsum("nd,nd->n", matrix, matrix)) \
        .astype(np.float32)
    return q8, scales, norms


def approx_scores(q8: np.ndarray, scales: np.ndarray, norms: np.ndarray,
                  queries_q8: np.ndarray) -> np.ndarray:
    """Approximate cosine scores, shape ``(C, Q)``: int8 candidate rows
    against int8 query rows, accumulated exactly, dequantized by the
    candidate-side constants only.

    Per query, the true quantized cosine differs from this value by the
    constant factor ``query_scale / ‖query‖`` — identical for every
    candidate, so the per-query *order* (all the shortlist cut reads)
    is unaffected.

    The integer GEMM runs as a float64 BLAS matmul over the int8
    values.  Unlike the fp vector kernels (where BLAS blocking causes
    1-ulp drift, hence the repo-wide einsum discipline), this is exact
    *and* order-independent: every product and every partial sum is an
    integer below ``2**53``, exactly representable in float64, so no
    addition ever rounds and no blocking strategy can change the
    result.  float64 BLAS is also ~10x faster than numpy's unblocked
    int32 matmul — the whole point of scoring candidates in int8.
    Duplicate candidate rows therefore score bit-equal for every query
    no matter the batch shape.
    """
    dots = q8.astype(np.float64) @ queries_q8.astype(np.float64).T
    dots = dots.astype(np.int32)
    scaled = scales.astype(np.float32)[:, None] * dots.astype(np.float32)
    denom = norms.astype(np.float32)[:, None]
    return np.divide(scaled, denom, out=np.zeros_like(scaled),
                     where=denom != 0.0)


def tie_inclusive_cut(scores: np.ndarray, m: int) -> np.ndarray:
    """Boolean keep-mask for a shortlist of *at least* ``m`` of the
    highest ``scores``: every entry scoring at or above the m-th best
    value survives.

    Tie-inclusive on purpose: candidates with equal approximate scores
    — in particular byte-identical duplicate vectors, whose int8 rows
    and dequantization constants are equal by construction — are kept
    or dropped as a block, so the exact rerank's key tie-break works on
    the same membership the unquantized path would see.
    """
    if m < 1:
        raise ValueError(f"m must be at least 1, got {m}")
    if len(scores) <= m:
        return np.ones(len(scores), dtype=bool)
    cutoff = np.partition(scores, len(scores) - m)[len(scores) - m]
    return scores >= cutoff
