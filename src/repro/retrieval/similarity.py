"""Batched cosine similarity and top-k ranking."""

from __future__ import annotations

import numpy as np


def normalize_rows(matrix: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """L2-normalize each row; zero rows stay zero."""
    matrix = np.asarray(matrix, dtype=float)
    norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
    return matrix / np.maximum(norms, eps)


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors (0 when either is zero)."""
    a, b = np.asarray(a, float), np.asarray(b, float)
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(a @ b / (na * nb))


def cosine_matrix(queries: np.ndarray, items: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities, shape ``(len(queries), len(items))``."""
    return normalize_rows(queries) @ normalize_rows(items).T


def top_k(query: np.ndarray, items: np.ndarray, k: int,
          exclude: int | None = None) -> list[tuple[int, float]]:
    """Indices and similarities of the ``k`` most cosine-similar rows.

    ``exclude`` removes one index (typically the query itself) from the
    ranking.  Ties break deterministically by index.
    """
    sims = cosine_matrix(query[None, :], items)[0]
    if exclude is not None:
        sims[exclude] = -np.inf
    # Drop non-finite entries (the excluded index) BEFORE slicing to k —
    # filtering after the slice silently shrank results below k whenever
    # the excluded self-match landed in the top k.
    keep = np.nonzero(np.isfinite(sims))[0]
    order = keep[np.argsort(-sims[keep], kind="stable")][:max(k, 0)]
    return [(int(i), float(sims[i])) for i in order]
