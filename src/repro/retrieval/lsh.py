"""Random-hyperplane LSH for cosine-similarity blocking.

Section 4.1: "We use LSH-based blocking [28] to avoid quadratic
complexity for the entire dataset" when clustering the hundreds of
thousands of columns.  Signs of random projections bucket vectors so
candidate pairs are only drawn from matching buckets (multiple bands
raise recall).

Queries come in two granularities.  :meth:`CosineLSH.query` is the
self-contained top-k (candidates, with a brute-force fallback when
blocking under-delivers).  Sharded indexes instead need *partial*
results — :meth:`CosineLSH.query_partial` ranks only the blocking
candidates and reports how many there were, so a fan-out caller can
take the fallback decision globally (the per-shard candidate count says
nothing about the union) and heap-merge the per-shard rankings with
:func:`merge_ranked`.

Both granularities also come *batched*: :meth:`CosineLSH.query_many` /
:meth:`CosineLSH.query_partial_many` take a whole ``(Q, dim)`` query
matrix, hash it with the same one-matmul-per-band pass bulk inserts use
(:meth:`CosineLSH._key_matrix`) and score every (query, candidate) pair
with **one** similarity GEMM over the union of candidates, instead of Q
separate hash + score passes.  Rankings are the serial path's: the
candidates are bit-identical (one shared hashing kernel), equal vectors
score exactly equal (so ties break by the same id/key order), and
distinct candidates' scores agree to floating-point roundoff — only a
pair whose true scores differ by under one ulp could order differently,
which the equivalence property tests treat as measure-zero.

The whole query surface is read-only: no method on this class mutates
index state after ``add``/``remove``, so concurrent queries from many
threads are safe as long as no writer runs alongside them.
"""

from __future__ import annotations

import heapq
from itertools import islice

import numpy as np

from .quantized import approx_scores, quantize_rows, tie_inclusive_cut


class CosineLSH:
    """Sign-random-projection LSH index.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    n_planes:
        Hyperplanes per band — bucket key length (wider = more precise).
    n_bands:
        Independent hash tables — more bands raise candidate recall.
    """

    def __init__(self, dim: int, n_planes: int = 8, n_bands: int = 4,
                 seed: int = 0):
        if dim <= 0 or n_planes <= 0 or n_bands <= 0:
            raise ValueError("dim, n_planes and n_bands must be positive")
        if n_planes > 63:
            # Band keys pack one sign bit per plane into an int64; beyond
            # that the packed bits would silently overflow to 0 and
            # distinct buckets would collide.
            raise ValueError("n_planes must be at most 63")
        rng = np.random.default_rng(seed)
        self.planes = rng.standard_normal((n_bands, n_planes, dim))
        self.n_bands = n_bands
        self.dim = dim
        # Band keys are sign bits packed into one integer per band.
        self._pows = 1 << np.arange(n_planes, dtype=np.int64)
        self._tables: list[dict[int, list[int]]] = [dict() for _ in range(n_bands)]
        self._vectors: list[np.ndarray] = []
        # Packed band keys per id, recorded at insert time.  remove()
        # reads these instead of re-hashing the stored vector (the keys
        # are what the insert used, by construction), and persistence
        # saves them so a reload can rebuild the buckets without
        # touching the vector data at all — the property that lets
        # memory-mapped opens skip the full read.
        self._band_keys: list[tuple[int, ...]] = []
        # Tombstoned ids: dropped from band buckets on remove() but kept
        # in _vectors so ids stay positional until a caller-side rebuild
        # (see VectorIndex.compact) reclaims the slots.
        self._removed: set[int] = set()
        # Optional int8 sidecar, positionally aligned with _vectors:
        # per-row int8 quantization plus the float32 dequantization
        # constants (scale, exact fp norm).  None until quantize() /
        # attach_quantized(); once present it is kept fresh by every
        # insert path, so it can never go stale against the fp rows.
        self._q8: list[np.ndarray] | None = None
        self._qscales: list | None = None
        self._qnorms: list | None = None

    def _keys(self, vector: np.ndarray) -> list[int]:
        return self._key_matrix(np.asarray(vector, float)[None, :])[:, 0] \
            .tolist()

    def _key_matrix(self, vectors: np.ndarray) -> np.ndarray:
        """Packed band keys for a whole matrix, shape ``(bands, N)`` —
        one matmul per band instead of one per (vector, band).

        The sign projections come from einsum, not BLAS ``@``: BLAS
        picks shape-dependent kernels, so a projection within one ulp
        of 0.0 could change sign between a single-vector and a batched
        hash (or between two different batch sizes) and silently send
        the same vector to different buckets.  einsum's accumulation
        depends only on the reduction dim, so every hashing path —
        ``add``, ``add_all``, ``remove``, serial and batched queries —
        produces bit-identical keys for the same vector.  (The packing
        matmul is integer arithmetic, which is exact.)
        """
        keys = np.empty((self.n_bands, len(vectors)), dtype=np.int64)
        for b, band_planes in enumerate(self.planes):
            signs = np.einsum("pd,nd->np", band_planes, vectors) > 0
            keys[b] = signs @ self._pows
        return keys

    def add(self, vector: np.ndarray) -> int:
        """Index a vector; returns its integer id."""
        if len(vector) != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {len(vector)}")
        idx = len(self._vectors)
        # Copy: storing a view would let later caller-side mutation
        # desynchronize stored vectors from their band buckets.
        self._vectors.append(np.array(vector, dtype=float))
        self._extend_quantized(self._vectors[-1][None, :])
        keys = self._keys(vector)
        self._band_keys.append(tuple(keys))
        for table, key in zip(self._tables, keys):
            table.setdefault(key, []).append(idx)
        return idx

    def add_all(self, vectors: np.ndarray) -> list[int]:
        """Bulk insert; one hashing matmul per band instead of one per
        (vector, band).  Returns the assigned ids."""
        return self._attach(np.asarray(vectors, float))

    def _attach(self, matrix: np.ndarray, band_keys: np.ndarray | None = None,
                copy: bool = True) -> list[int]:
        """Bulk-insert ``matrix`` rows, optionally reusing precomputed
        ``(bands, N)`` packed band keys and — ``copy=False`` — storing
        row *views* instead of copies.

        The no-copy path exists for loaders: a freshly read (or
        memory-mapped) matrix has no other owner, so aliasing cannot
        desynchronize the buckets, and keeping the memmap's rows is what
        makes queries page in only the candidates they score.  With
        saved ``band_keys`` the buckets rebuild without reading a single
        vector byte — a memory-mapped cold open does no data I/O.
        """
        if matrix.ndim != 2 or matrix.shape[1] != self.dim:
            raise ValueError(f"expected (N, {self.dim}) matrix, got "
                             f"{matrix.shape}")
        if band_keys is None:
            band_keys = self._key_matrix(matrix)
        elif band_keys.shape != (self.n_bands, len(matrix)):
            raise ValueError(f"expected ({self.n_bands}, {len(matrix)}) band "
                             f"keys, got {band_keys.shape}")
        start = len(self._vectors)
        self._vectors.extend(np.array(matrix, copy=True) if copy else matrix)
        self._extend_quantized(matrix)
        per_band = [band.tolist() for band in band_keys]
        for table, band in zip(self._tables, per_band):
            for offset, key in enumerate(band):
                table.setdefault(key, []).append(start + offset)
        self._band_keys.extend(zip(*per_band))
        return list(range(start, start + len(matrix)))

    def remove(self, idx: int) -> None:
        """Tombstone id ``idx``: drop it from every band bucket so it can
        never be a candidate (or a brute-force fallback hit) again.

        The stored vector stays in place — ids are positional, so
        reclaiming the slot is the caller's compaction step.  Removing an
        unknown or already-removed id raises ``KeyError``.
        """
        if not 0 <= idx < len(self._vectors) or idx in self._removed:
            raise KeyError(f"no live vector with id {idx}")
        # The keys recorded at insert time, not a re-hash: bit-identical
        # by construction, and no page faults on a memory-mapped store.
        for table, key in zip(self._tables, self._band_keys[idx]):
            bucket = table.get(key)
            if bucket is not None and idx in bucket:
                bucket.remove(idx)
                if not bucket:
                    del table[key]
        self._removed.add(idx)

    @property
    def removed(self) -> frozenset[int]:
        """Ids tombstoned by :meth:`remove` (read-only view)."""
        return frozenset(self._removed)

    @property
    def n_live(self) -> int:
        """Number of indexed vectors that have not been removed."""
        return len(self._vectors) - len(self._removed)

    def live_ids(self) -> list[int]:
        """All non-tombstoned ids in insertion order."""
        return [i for i in range(len(self._vectors)) if i not in self._removed]

    def candidates(self, vector: np.ndarray) -> set[int]:
        """Ids sharing at least one band bucket with ``vector``."""
        out: set[int] = set()
        for table, key in zip(self._tables, self._keys(vector)):
            out.update(table.get(key, ()))
        # Belt and braces: every hashing path now goes through the
        # shape-independent _key_matrix, so remove() recomputes exactly
        # the keys the insert used — but filtering here keeps "removed
        # ids are never candidates" unconditional rather than a
        # property of the hashing kernel.
        out.difference_update(self._removed)
        return out

    def candidates_many(self, vectors: np.ndarray) -> list[set[int]]:
        """Per-query candidate sets for a whole ``(Q, dim)`` matrix —
        the band keys come from one matmul per band
        (:meth:`_key_matrix`) instead of Q separate hashing passes."""
        return self.candidates_for_keys(self.key_tuples(vectors))

    def key_tuples(self, vectors: np.ndarray) -> list[tuple[int, ...]]:
        """Packed band keys for every row of a ``(Q, dim)`` matrix as
        one hashable ``(n_bands,)`` int tuple per query — the *semantic
        identity* of a query under this index's LSH geometry.  Two
        queries with equal tuples probe exactly the same buckets, so
        their candidate sets are identical by construction; the result
        cache keys its shortlist tier on these tuples.  Same
        shape-independent hashing kernel as every other path
        (:meth:`_key_matrix`), so the tuples are bit-stable across
        batch compositions."""
        matrix = self._as_query_matrix(vectors)
        keys = self._key_matrix(matrix)          # (bands, Q)
        return [tuple(int(key) for key in keys[:, q]) for q in range(len(matrix))]

    def candidates_for_keys(self, key_tuples: list[tuple[int, ...]]
                            ) -> list[set[int]]:
        """Candidate sets for already-hashed queries: probe the band
        buckets with precomputed :meth:`key_tuples` output.  The bucket
        probing half of :meth:`candidates_many`, split out so a caller
        holding the keys (the result cache's semantic tier) never hashes
        twice."""
        out: list[set[int]] = []
        for keys in key_tuples:
            if len(keys) != self.n_bands:
                raise ValueError(f"expected {self.n_bands} band keys per "
                                 f"query, got {len(keys)}")
            cands: set[int] = set()
            for table, key in zip(self._tables, keys):
                cands.update(table.get(key, ()))
            cands.difference_update(self._removed)
            out.append(cands)
        return out

    def _as_query_matrix(self, vectors: np.ndarray) -> np.ndarray:
        matrix = np.asarray(vectors, float)
        if matrix.ndim != 2 or matrix.shape[1] != self.dim:
            raise ValueError(f"expected (Q, {self.dim}) query matrix, got "
                             f"{matrix.shape}")
        return matrix

    @staticmethod
    def _as_excludes(excludes, n_queries: int) -> list[int | None]:
        if excludes is None:
            return [None] * n_queries
        excludes = list(excludes)
        if len(excludes) != n_queries:
            raise ValueError(f"excludes must align with the {n_queries} "
                             f"queries, got {len(excludes)}")
        return excludes

    def _rank_many(self, ids_per_query: list[set[int]], matrix: np.ndarray,
                   k: int | None, shortlist: int | None = None
                   ) -> list[list[tuple[int, float]]]:
        """Batched :meth:`_rank`: cosine-score every query's candidate
        ids, best first, with **one** GEMM over the union of candidates
        (``(C, dim) @ (dim, Q)``) instead of one dot product per (query,
        candidate) pair.  Sort key is ``(-score, id)``, the serial
        ranking's; scores agree with the serial ``cosine_similarity``
        to floating-point roundoff (bit-equal for equal vectors, so
        exact ties stay exact ties).

        ``shortlist=m`` (only honoured when the int8 sidecar is
        attached) prefilters each query's candidates to the ``>= m``
        best by approximate integer score before the exact GEMM — the
        fp rows of dropped candidates are never touched, which under
        ``mmap`` means their pages are never faulted in."""
        if shortlist is not None and self._q8 is not None:
            ids_per_query = self._shortlist_many(ids_per_query, matrix,
                                                 shortlist)
        union = sorted(set().union(*ids_per_query)) if ids_per_query else []
        if not union:
            return [[] for _ in ids_per_query]
        cand = np.stack([self._vectors[i] for i in union])
        # The one similarity GEMM — via einsum, NOT ``cand @ matrix.T``:
        # BLAS gemm picks shape-dependent kernels, so the same (query,
        # vector) pair can score differently in different-size batches
        # by one ulp.  Sharded fan-outs score each shard in its own
        # batch, and a tie split across two shards (duplicate vectors)
        # would then stop being an exact tie and break the
        # score-then-key merge order.  einsum's sum-of-products loop
        # depends only on the reduction dim, so equal pairs score
        # bit-equal in every batch shape (pinned by the duplicate-tie
        # property tests in tests/index/test_concurrent_query.py).
        sims = np.einsum("cd,qd->cq", cand, matrix)
        # Same zero-vector convention as cosine_similarity: either norm
        # zero -> similarity 0, never a division warning.
        denom = (np.linalg.norm(cand, axis=1)[:, None]
                 * np.linalg.norm(matrix, axis=1)[None, :])
        sims = np.divide(sims, denom, out=np.zeros_like(sims),
                         where=denom != 0.0)
        row_of = {idx: row for row, idx in enumerate(union)}
        out: list[list[tuple[int, float]]] = []
        for q, ids in enumerate(ids_per_query):
            scored = [(i, float(sims[row_of[i], q])) for i in ids]
            scored.sort(key=lambda pair: (-pair[1], pair[0]))
            out.append(scored if k is None else scored[:k])
        return out

    def query_partial_many(self, vectors: np.ndarray, k: int | None,
                           excludes=None, shortlist: int | None = None
                           ) -> list[tuple[int, list[tuple[int, float]]]]:
        """Batched :meth:`query_partial`: one ``(n_candidates, top-k)``
        pair per query row, no brute-force fallback.  ``excludes`` is an
        optional per-query id list aligned with the rows.  The reported
        candidate counts are always *pre-shortlist* — the global
        fallback decision must not change when the int8 prefilter is
        active."""
        if k is not None and k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        matrix = self._as_query_matrix(vectors)
        excludes = self._as_excludes(excludes, len(matrix))
        cand_sets = self.candidates_many(matrix)
        for cands, exclude in zip(cand_sets, excludes):
            if exclude is not None:
                cands.discard(exclude)
        rankings = self._rank_many(cand_sets, matrix, k,
                                   shortlist=shortlist)
        return [(len(cands), ranked)
                for cands, ranked in zip(cand_sets, rankings)]

    def query_brute_many(self, vectors: np.ndarray, k: int | None,
                         excludes=None, shortlist: int | None = None
                         ) -> list[list[tuple[int, float]]]:
        """Batched :meth:`query_brute`: top-k over every live vector for
        each query row, one similarity GEMM for the whole batch."""
        if k is not None and k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        matrix = self._as_query_matrix(vectors)
        excludes = self._as_excludes(excludes, len(matrix))
        live = set(self.live_ids())
        ids_per_query = []
        for exclude in excludes:
            ids = set(live)
            if exclude is not None:
                ids.discard(exclude)
            ids_per_query.append(ids)
        return self._rank_many(ids_per_query, matrix, k,
                               shortlist=shortlist)

    def query_many(self, vectors: np.ndarray, k: int,
                   excludes=None, shortlist: int | None = None
                   ) -> list[list[tuple[int, float]]]:
        """Batched :meth:`query`: top-k per query row, falling back to
        brute force — per query, exactly as the serial path decides —
        whenever blocking delivered fewer than ``k`` candidates (the
        decision reads the pre-shortlist candidate count, so the int8
        prefilter never changes when the fallback fires)."""
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        matrix = self._as_query_matrix(vectors)
        excludes = self._as_excludes(excludes, len(matrix))
        partials = self.query_partial_many(matrix, k, excludes=excludes,
                                           shortlist=shortlist)
        short = [q for q, (count, _ranked) in enumerate(partials)
                 if count < k]
        results = [ranked for _count, ranked in partials]
        if short:
            brute = self.query_brute_many(matrix[short], k,
                                          excludes=[excludes[q]
                                                    for q in short],
                                          shortlist=shortlist)
            for q, ranked in zip(short, brute):
                results[q] = ranked
        return results

    def __len__(self) -> int:
        return len(self._vectors)

    def vector(self, idx: int) -> np.ndarray:
        """The stored vector with id ``idx``."""
        return self._vectors[idx]

    def vectors(self) -> np.ndarray:
        """All stored vectors as an ``(N, dim)`` matrix."""
        if not self._vectors:
            return np.zeros((0, self.dim))
        return np.stack(self._vectors)

    def band_keys_matrix(self) -> np.ndarray:
        """Packed band keys of every stored vector as an ``(N, bands)``
        int64 matrix — what persistence saves so a reload can rebuild
        the buckets without re-hashing (or even reading) the vectors."""
        return np.array(self._band_keys,
                        dtype=np.int64).reshape(len(self._vectors),
                                                self.n_bands)

    # ------------------------------------------------------------------
    # Quantized sidecar (int8 prefilter tier)
    # ------------------------------------------------------------------
    @property
    def quantized(self) -> bool:
        """Whether an int8 sidecar is attached (possibly empty)."""
        return self._q8 is not None

    def quantize(self) -> int:
        """(Re)build the int8 sidecar from the stored fp vectors —
        every slot, tombstoned ones included, so ids stay positional.
        Idempotent: re-running on an already-quantized index recomputes
        the same rows.  Returns the number of rows quantized."""
        q8, scales, norms = quantize_rows(
            np.stack(self._vectors) if self._vectors
            else np.zeros((0, self.dim)))
        self._q8 = list(q8)
        self._qscales = list(scales)
        self._qnorms = list(norms)
        return len(self._q8)

    def attach_quantized(self, q8: np.ndarray, scales: np.ndarray,
                         norms: np.ndarray) -> None:
        """Adopt a persisted int8 sidecar (possibly memory-mapped rows).

        Shapes and dtypes must match the stored vectors exactly —
        loaders treat a mismatch (foreign writer, hand edit) as "no
        sidecar" rather than trusting wrong data.  Rows are stored as
        views, so a memory-mapped sidecar pages in only the candidate
        rows the prefilter scores.
        """
        n = len(self._vectors)
        if (q8.shape != (n, self.dim) or scales.shape != (n,)
                or norms.shape != (n,)):
            raise ValueError(
                f"quantized sidecar shapes {q8.shape}/{scales.shape}/"
                f"{norms.shape} do not match {n} stored vectors of dim "
                f"{self.dim}")
        if (q8.dtype != np.int8 or scales.dtype != np.float32
                or norms.dtype != np.float32):
            raise ValueError(
                f"quantized sidecar dtypes {q8.dtype}/{scales.dtype}/"
                f"{norms.dtype} must be int8/float32/float32")
        self._q8 = list(q8)
        self._qscales = list(scales)
        self._qnorms = list(norms)

    def drop_quantized(self) -> None:
        """Detach the int8 sidecar (queries revert to exact-only)."""
        self._q8 = None
        self._qscales = None
        self._qnorms = None

    def quantized_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The sidecar as dense arrays ``(q8 (N, dim) int8, scales (N,)
        float32, norms (N,) float32)`` — what persistence writes."""
        if self._q8 is None:
            raise ValueError("index has no quantized sidecar")
        if not self._q8:
            return (np.zeros((0, self.dim), dtype=np.int8),
                    np.zeros(0, dtype=np.float32),
                    np.zeros(0, dtype=np.float32))
        return (np.stack(self._q8),
                np.array(self._qscales, dtype=np.float32),
                np.array(self._qnorms, dtype=np.float32))

    def _extend_quantized(self, matrix: np.ndarray) -> None:
        """Quantize freshly inserted rows so the sidecar stays aligned
        with ``_vectors`` through every mutation — the structural
        invariant that makes a stale sidecar impossible.  Same batched
        kernel as :meth:`quantize` (elementwise, so single-row and bulk
        inserts quantize bit-identically)."""
        if self._q8 is None:
            return
        q8, scales, norms = quantize_rows(np.asarray(matrix, float))
        self._q8.extend(q8)
        self._qscales.extend(scales)
        self._qnorms.extend(norms)

    def _shortlist_many(self, ids_per_query: list[set[int]],
                        matrix: np.ndarray, m: int) -> list[set[int]]:
        """Integer prefilter: cut each query's candidate set to the
        ``>= m`` best by approximate int8 cosine (tie-inclusive, so
        byte-identical duplicates stay together).  Candidate sets at or
        under ``m`` pass through untouched; the input sets are never
        mutated (callers report pre-shortlist candidate counts, which
        feed the global brute-force fallback decision)."""
        if not any(len(ids) > m for ids in ids_per_query):
            return ids_per_query
        union = sorted(set().union(*ids_per_query))
        q8 = np.stack([self._q8[i] for i in union])
        scales = np.array([self._qscales[i] for i in union],
                          dtype=np.float32)
        norms = np.array([self._qnorms[i] for i in union],
                         dtype=np.float32)
        queries_q8, _scales, _norms = quantize_rows(matrix)
        approx = approx_scores(q8, scales, norms, queries_q8)
        row_of = {idx: row for row, idx in enumerate(union)}
        out: list[set[int]] = []
        for q, ids in enumerate(ids_per_query):
            if len(ids) <= m:
                out.append(ids)
                continue
            ordered = sorted(ids)
            rows = np.fromiter((row_of[i] for i in ordered),
                               dtype=np.int64, count=len(ordered))
            keep = tie_inclusive_cut(approx[rows, q], m)
            out.append({i for i, kept in zip(ordered, keep) if kept})
        return out

    def _rank(self, ids, vector: np.ndarray, k: int | None,
              shortlist: int | None = None) -> list[tuple[int, float]]:
        """Cosine-score ``ids`` against ``vector``, best first; ``k``
        ``None`` returns the whole ranking (callers that re-break ties
        by an external key must truncate *after* re-sorting, or a
        boundary tie could change membership).  ``shortlist`` applies
        the same integer prefilter as :meth:`_rank_many` — the cut is
        computed by the identical batched kernel, so serial and batched
        queries shortlist identically."""
        from .similarity import cosine_similarity

        if shortlist is not None and self._q8 is not None:
            ids = self._shortlist_many(
                [set(ids)], np.asarray(vector, float)[None, :], shortlist)[0]
        scored = [(i, cosine_similarity(vector, self._vectors[i])) for i in ids]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored if k is None else scored[:k]

    def query_partial(self, vector: np.ndarray, k: int | None,
                      exclude: int | None = None,
                      shortlist: int | None = None
                      ) -> tuple[int, list[tuple[int, float]]]:
        """``(n_candidates, top-k among candidates)`` with **no**
        brute-force fallback — one shard's contribution to a fan-out
        query, where whether blocking under-delivered can only be judged
        on the candidate total across all shards.  The candidate count
        is always pre-shortlist (see :meth:`query_partial_many`)."""
        if k is not None and k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        cands = self.candidates(vector)
        if exclude is not None:
            cands.discard(exclude)
        return len(cands), self._rank(cands, vector, k,
                                      shortlist=shortlist)

    def query_brute(self, vector: np.ndarray, k: int | None,
                    exclude: int | None = None,
                    shortlist: int | None = None
                    ) -> list[tuple[int, float]]:
        """Top-k over every live vector, ignoring the band buckets.
        Tombstones still never surface: removed ids are excluded even
        though their vectors occupy slots."""
        if k is not None and k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        cands = set(self.live_ids())
        if exclude is not None:
            cands.discard(exclude)
        return self._rank(cands, vector, k, shortlist=shortlist)

    def query(self, vector: np.ndarray, k: int,
              exclude: int | None = None,
              shortlist: int | None = None) -> list[tuple[int, float]]:
        """Top-k cosine neighbours among LSH candidates.

        Falls back to brute force over everything indexed when blocking
        returns fewer than ``k`` candidates, so results never silently
        shrink.
        """
        n_candidates, ranked = self.query_partial(vector, k, exclude=exclude,
                                                  shortlist=shortlist)
        if n_candidates < k:
            return self.query_brute(vector, k, exclude=exclude,
                                    shortlist=shortlist)
        return ranked


def merge_ranked(rankings: list[list[tuple]], k: int) -> list[tuple]:
    """Heap-merge sorted ``(item, score)`` rankings into one global
    top-k.

    Each input must already be sorted best-first (the shape
    :meth:`CosineLSH.query_partial` and ``VectorIndex.query_partial``
    return).  Ties are broken by ``item`` ascending, matching the
    single-index sort key — for sharded indexes the items are external
    string keys, so equal-score order is content-addressed rather than
    insertion-dependent.
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    merged = heapq.merge(*rankings, key=lambda pair: (-pair[1], pair[0]))
    return list(islice(merged, k))
