"""Random-hyperplane LSH for cosine-similarity blocking.

Section 4.1: "We use LSH-based blocking [28] to avoid quadratic
complexity for the entire dataset" when clustering the hundreds of
thousands of columns.  Signs of random projections bucket vectors so
candidate pairs are only drawn from matching buckets (multiple bands
raise recall).
"""

from __future__ import annotations

import numpy as np


class CosineLSH:
    """Sign-random-projection LSH index.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    n_planes:
        Hyperplanes per band — bucket key length (wider = more precise).
    n_bands:
        Independent hash tables — more bands raise candidate recall.
    """

    def __init__(self, dim: int, n_planes: int = 8, n_bands: int = 4,
                 seed: int = 0):
        if dim <= 0 or n_planes <= 0 or n_bands <= 0:
            raise ValueError("dim, n_planes and n_bands must be positive")
        rng = np.random.default_rng(seed)
        self.planes = rng.standard_normal((n_bands, n_planes, dim))
        self.n_bands = n_bands
        self.dim = dim
        self._tables: list[dict[tuple, list[int]]] = [dict() for _ in range(n_bands)]
        self._vectors: list[np.ndarray] = []

    def _keys(self, vector: np.ndarray) -> list[tuple]:
        signs = (self.planes @ np.asarray(vector, float)) > 0  # (bands, planes)
        return [tuple(band.tolist()) for band in signs]

    def add(self, vector: np.ndarray) -> int:
        """Index a vector; returns its integer id."""
        if len(vector) != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {len(vector)}")
        idx = len(self._vectors)
        self._vectors.append(np.asarray(vector, float))
        for table, key in zip(self._tables, self._keys(vector)):
            table.setdefault(key, []).append(idx)
        return idx

    def add_all(self, vectors: np.ndarray) -> None:
        for vector in vectors:
            self.add(vector)

    def candidates(self, vector: np.ndarray) -> set[int]:
        """Ids sharing at least one band bucket with ``vector``."""
        out: set[int] = set()
        for table, key in zip(self._tables, self._keys(vector)):
            out.update(table.get(key, ()))
        return out

    def __len__(self) -> int:
        return len(self._vectors)

    def query(self, vector: np.ndarray, k: int,
              exclude: int | None = None) -> list[tuple[int, float]]:
        """Top-k cosine neighbours among LSH candidates.

        Falls back to brute force over everything indexed when blocking
        returns fewer than ``k`` candidates, so results never silently
        shrink.
        """
        from .similarity import cosine_similarity

        cands = self.candidates(vector)
        if exclude is not None:
            cands.discard(exclude)
        if len(cands) < k:
            cands = set(range(len(self._vectors)))
            if exclude is not None:
                cands.discard(exclude)
        scored = [(i, cosine_similarity(vector, self._vectors[i])) for i in cands]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:k]
