"""Retrieval substrate: cosine ranking, LSH blocking, cluster formation."""

from .clustering import centroid_ranking, rank_neighbors, top_k_cluster, topic_centroid
from .lsh import CosineLSH, merge_ranked
from .quantized import (OVERFETCH, MARGIN, approx_scores, quantize_rows,
                        shortlist_size, tie_inclusive_cut)
from .similarity import cosine_matrix, cosine_similarity, normalize_rows, top_k

__all__ = [
    "cosine_similarity", "cosine_matrix", "normalize_rows", "top_k",
    "CosineLSH", "merge_ranked",
    "OVERFETCH", "MARGIN", "quantize_rows", "approx_scores",
    "shortlist_size", "tie_inclusive_cut",
    "rank_neighbors", "top_k_cluster", "centroid_ranking", "topic_centroid",
]
