"""Cluster harness: boot N shard servers + 1 coordinator in one
process (tests, benchmarks) or as subprocesses (CLI e2e).

Two pieces:

- :func:`split_layout` carves a saved/open local layout into
  per-server layouts **preserving flat shard order** — server 0 gets
  shards ``0..a``, server 1 gets ``a..b``, and so on — which is the
  property the whole equivalence story hangs on: the coordinator
  flattens server responses in topology order, so the distributed
  shard sequence must be the local one.
- :class:`ClusterHarness` boots one :class:`~repro.cluster.
  shard_server.ShardServerThread` per layout (or one
  ``repro.cli serve-shard`` subprocess with ``subprocesses=True``),
  hands out the resulting :class:`~repro.cluster.topology.Topology`,
  connects coordinators, and can kill/restart individual shard servers
  on their original ports — the fault-injection tests' lever.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from ..index import ShardedIndex, open_index
from .coordinator import RemoteShardedIndex
from .shard_server import ShardServerThread
from .topology import Topology


def split_layout(source, root: str | Path, n_servers: int) -> list[Path]:
    """Split ``source`` (an open index, single ``.npz`` path, or
    sharded directory path) into ``n_servers`` saved layouts whose
    concatenated shard lists equal the source's, in order.

    Servers get contiguous runs of shards (the first ``total %
    n_servers`` servers get one extra), so ``n_servers`` must not
    exceed the source's shard count.  A one-shard run is saved as a
    single ``.npz``; a multi-shard run as a sharded directory — shard
    servers serve either transparently."""
    if not hasattr(source, "kind"):
        source = open_index(source)
    shards = (list(source.shards) if isinstance(source, ShardedIndex)
              else [source])
    if n_servers < 1:
        raise ValueError(f"n_servers must be at least 1, got {n_servers}")
    if n_servers > len(shards):
        raise ValueError(f"cannot split {len(shards)} shard(s) across "
                         f"{n_servers} servers")
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    base, extra = divmod(len(shards), n_servers)
    paths, start = [], 0
    for position in range(n_servers):
        stop = start + base + (1 if position < extra else 0)
        run = shards[start:stop]
        start = stop
        if len(run) == 1:
            paths.append(run[0].save(root / f"server-{position:02d}.npz"))
        else:
            spec = source.spec
            paths.append(ShardedIndex(spec, run).save(
                root / f"server-{position:02d}"))
    return paths


class ClusterHarness:
    """Boot a cluster from per-server layout paths.

    Context manager::

        paths = split_layout(saved, tmp_path / "cluster", 2)
        with ClusterHarness(paths) as cluster:
            remote = cluster.connect(retries=1)
            ...
            remote.close()

    ``subprocesses=True`` boots each shard via ``python -m repro.cli
    serve-shard`` instead of an in-process thread (slower; exercises
    the real CLI entry point)."""

    def __init__(self, layout_paths, *, subprocesses: bool = False,
                 mmap: bool = True):
        self.layout_paths = [Path(path) for path in layout_paths]
        self.subprocesses = subprocesses
        self.mmap = mmap
        self.members: list = [None] * len(self.layout_paths)
        self.ports: list[int | None] = [None] * len(self.layout_paths)
        self._connected: list[RemoteShardedIndex] = []

    # ------------------------------------------------------------------
    # Boot / teardown
    # ------------------------------------------------------------------
    def start(self) -> "ClusterHarness":
        try:
            for position in range(len(self.layout_paths)):
                self.start_shard(position)
        except BaseException:
            self.stop()
            raise
        return self

    def stop(self) -> None:
        for index in self._connected:
            index.close()
        self._connected = []
        for position in range(len(self.members)):
            self.stop_shard(position)

    def __enter__(self) -> "ClusterHarness":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Individual members (fault injection kills/restarts these)
    # ------------------------------------------------------------------
    def start_shard(self, position: int) -> int:
        """Boot (or re-boot) member ``position``.  A restart reuses the
        port the member first bound, so a coordinator holding the
        topology reconnects without any reconfiguration."""
        if self.members[position] is not None:
            raise RuntimeError(f"shard {position} is already running")
        port = self.ports[position] or 0
        path = self.layout_paths[position]
        if self.subprocesses:
            member, port = _spawn_shard_process(path, port, self.mmap)
        else:
            member = ShardServerThread(open_index(path, mmap=self.mmap),
                                       port=port).start()
            port = member.port
        self.members[position] = member
        self.ports[position] = port
        return port

    def stop_shard(self, position: int) -> None:
        member = self.members[position]
        if member is None:
            return
        self.members[position] = None
        if self.subprocesses:
            member.terminate()
            member.wait(timeout=30)
        else:
            member.stop()

    # ------------------------------------------------------------------
    # Coordinator side
    # ------------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        if any(port is None for port in self.ports):
            raise RuntimeError("harness is not started")
        return Topology.from_addresses([("127.0.0.1", port)
                                        for port in self.ports])

    def connect(self, **kwargs) -> RemoteShardedIndex:
        """A coordinator over the running cluster (closed automatically
        at harness teardown)."""
        index = RemoteShardedIndex.connect(self.topology, **kwargs)
        self._connected.append(index)
        return index


def _spawn_shard_process(path: Path, port: int,
                         mmap: bool) -> tuple[subprocess.Popen, int]:
    """One ``repro.cli serve-shard`` subprocess; returns it plus the
    port parsed from its banner."""
    import os

    command = [sys.executable, "-m", "repro.cli", "serve-shard", str(path),
               "--port", str(port)]
    if not mmap:
        command.append("--no-mmap")
    env = dict(os.environ)
    src = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = (f"{src}:{env['PYTHONPATH']}"
                         if env.get("PYTHONPATH") else str(src))
    process = subprocess.Popen(command, env=env, stdout=subprocess.PIPE,
                               stderr=subprocess.PIPE, text=True)
    banner = process.stdout.readline()
    if "http://" not in banner:
        process.terminate()
        _stdout, stderr = process.communicate(timeout=30)
        raise RuntimeError(f"serve-shard failed to boot: {banner!r}\n{stderr}")
    bound = int(banner.rsplit(":", 1)[1].split()[0])
    return process, bound
