"""Cluster failure taxonomy.

Every failure the distributed tier can surface to a caller is one of
these, and each carries the HTTP status a serving front-end should
answer with (``http_status``) plus an optional ``Retry-After`` hint in
seconds (``retry_after``).  The retrieval server maps them by duck
typing — it never imports this module — so the serve layer stays below
the cluster layer in the package graph while still turning a dead
shard into a clean 503 instead of a 500.

The load-bearing guarantee: a query that cannot be answered *exactly*
raises — the coordinator never returns a half-merged ranking with one
shard's contribution missing.
"""

from __future__ import annotations


class ClusterError(RuntimeError):
    """Base class for distributed-tier failures."""

    #: Status a serving front-end should answer with.
    http_status = 503
    #: ``Retry-After`` hint (seconds); ``None`` means don't send one.
    retry_after: int | None = 1


class TopologyError(ClusterError, ValueError):
    """A topology file or shard-set that cannot describe a cluster —
    malformed JSON, empty shard list, bad address.  Configuration, not
    runtime: surfaces at boot (CLI exit 2), never mid-query."""

    http_status = 500
    retry_after = None


class ShardUnavailable(ClusterError):
    """A shard server could not be reached (or kept timing out) after
    the configured retries.  One clear error for the whole query — the
    merge step never runs on a partial fan-out."""

    def __init__(self, address: str, attempts: int, cause: BaseException):
        super().__init__(
            f"shard server {address} unavailable after {attempts} "
            f"attempt{'s' if attempts != 1 else ''}: "
            f"{cause.__class__.__name__}: {cause}")
        self.address = address
        self.attempts = attempts
        self.cause = cause


class ShardProtocolError(ClusterError):
    """A shard server answered, but not with what the coordinator
    asked for — wrong status, malformed JSON, mismatched shapes.
    Retrying cannot help (the server is the wrong version or broken),
    so this is terminal for the query."""

    retry_after = None

    def __init__(self, address: str, detail: str):
        super().__init__(f"shard server {address}: {detail}")
        self.address = address
