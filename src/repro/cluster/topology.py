"""Cluster topology: the ordered list of shard-server addresses.

A topology file is JSON::

    {
      "shards": [
        {"host": "127.0.0.1", "port": 9101},
        {"host": "127.0.0.1", "port": 9102}
      ]
    }

**Order is load-bearing.**  The coordinator flattens every server's
local shards in topology order into one global shard list, and the
scatter-gather merge runs over that list exactly as a local
:class:`~repro.index.sharded.ShardedIndex` merges its own shards — so
the topology order must list the servers in the same order their
shards appear in the equivalent local layout.  Reordering the file
reorders tie-breaking inputs and is a *different* cluster.

Loading follows the repo's one-clear-``ValueError`` discipline: every
way the file can be wrong raises :class:`~repro.cluster.errors.
TopologyError` (a ``ValueError``) naming exactly what was wrong.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .errors import TopologyError


@dataclass(frozen=True)
class ShardAddress:
    """One shard server's network address."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass(frozen=True)
class Topology:
    """An ordered, validated set of shard-server addresses."""

    shards: tuple[ShardAddress, ...]

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    @classmethod
    def from_addresses(cls, addresses) -> "Topology":
        """Build from ``(host, port)`` pairs / ``ShardAddress`` objects
        (the in-process harness path)."""
        shards = []
        for position, address in enumerate(addresses):
            if not isinstance(address, ShardAddress):
                host, port = address
                address = ShardAddress(host, port)
            _check_address(position, address.host, address.port)
            shards.append(address)
        if not shards:
            raise TopologyError("topology has no shard servers")
        return cls(tuple(shards))

    @classmethod
    def load(cls, path: str | Path) -> "Topology":
        """Read and validate a topology file."""
        path = Path(path)
        if not path.is_file():
            raise TopologyError(f"no topology file at {path}")
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise TopologyError(
                f"{path} is not valid JSON: {error}") from None
        if not isinstance(payload, dict) or "shards" not in payload:
            raise TopologyError(
                f"{path} must be a JSON object with a 'shards' list")
        entries = payload["shards"]
        if not isinstance(entries, list) or not entries:
            raise TopologyError(
                f"{path}: 'shards' must be a non-empty list of "
                f"{{host, port}} objects")
        shards = []
        for position, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise TopologyError(
                    f"{path}: shard {position} must be an object with "
                    f"'host' and 'port'")
            unknown = set(entry) - {"host", "port"}
            if unknown:
                raise TopologyError(
                    f"{path}: shard {position} has unknown "
                    f"field{'s' if len(unknown) > 1 else ''} "
                    f"{sorted(unknown)}")
            host = entry.get("host")
            port = entry.get("port")
            _check_address(position, host, port, source=str(path))
            shards.append(ShardAddress(host, port))
        return cls(tuple(shards))

    def save(self, path: str | Path) -> Path:
        """Write the topology file (harness/benchmark convenience)."""
        path = Path(path)
        path.write_text(json.dumps(
            {"shards": [{"host": s.host, "port": s.port}
                        for s in self.shards]}, indent=2) + "\n",
            encoding="utf-8")
        return path


def _check_address(position: int, host, port, source: str | None = None
                   ) -> None:
    where = f"{source}: " if source else ""
    if not isinstance(host, str) or not host:
        raise TopologyError(
            f"{where}shard {position}: 'host' must be a non-empty string, "
            f"got {host!r}")
    if (not isinstance(port, int) or isinstance(port, bool)
            or not 1 <= port <= 65535):
        raise TopologyError(
            f"{where}shard {position}: 'port' must be an integer in "
            f"[1, 65535], got {port!r}")
