"""Distributed shard tier: scatter-gather retrieval across machines.

The horizontal path past one box's ~600 QPS ceiling: shard servers
(:mod:`repro.cluster.shard_server`) each hold a slice of the corpus
and expose the per-shard half of the fan-out contract
(``POST /partial_query`` / ``POST /brute_query`` — candidate counts
plus partial rankings), and a coordinator
(:class:`RemoteShardedIndex`, :mod:`repro.cluster.coordinator`)
scatters each micro-batch tick to every server concurrently, decides
the brute-force fallback on the **global** candidate total, and
reduces through the very same
:func:`~repro.index.sharded.merge_shard_rankings` a local
:class:`~repro.index.sharded.ShardedIndex` uses — so distributed
rankings are bit-identical to local ones by construction
(property-tested in ``tests/cluster/``).

The coordinator quacks like a ``ShardedIndex``, so the serving stack
composes unchanged: micro-batching dispatcher, result cache (exact
tier, invalidated by generations propagated from the shard servers),
catalog wrapping, graceful drain.  Boot a cluster with ``repro
serve-shard`` per shard box plus ``repro serve --cluster
topology.json`` on the coordinator, or in-process with
:class:`ClusterHarness`.
"""

from .coordinator import RemoteShard, RemoteShardedIndex
from .errors import (
    ClusterError,
    ShardProtocolError,
    ShardUnavailable,
    TopologyError,
)
from .harness import ClusterHarness, split_layout
from .shard_server import ShardServer, ShardServerThread
from .topology import ShardAddress, Topology

__all__ = [
    "RemoteShardedIndex", "RemoteShard",
    "ShardServer", "ShardServerThread",
    "Topology", "ShardAddress",
    "ClusterHarness", "split_layout",
    "ClusterError", "ShardUnavailable", "ShardProtocolError",
    "TopologyError",
]
