"""Scatter-gather coordinator: a ``ShardedIndex`` whose shards are
remote.

:class:`RemoteShardedIndex` quacks like
:class:`~repro.index.sharded.ShardedIndex` — ``kind``/``dim``/
``n_shards``/``model_id``/``format_version``/``generation``/``len``/
``query_many`` — so everything built on that surface composes
unchanged: the :class:`~repro.serve.dispatcher.MicroBatchDispatcher`
micro-batches ticks into it, the result cache keys on its
``generation`` (propagated from the shard servers, so a shard whose
data changed invalidates the coordinator's exact tier), and the
catalog wraps it as a pinned entry.

One query tick runs the exact algorithm the local fan-out runs, with
HTTP in place of method calls:

1. ``POST /partial_query`` to every shard server **concurrently** (one
   asyncio task each, on the coordinator's private I/O loop);
2. flatten each server's per-local-shard partials in topology order
   into one global shard list — the same flat order a local
   ``ShardedIndex`` over those shards would merge;
3. decide the brute-force fallback per query on the **global**
   candidate total (the sum across every shard in the cluster — the
   rule that keeps sharded results identical to a single index's);
4. ``POST /brute_query`` for the short queries, again to every server;
5. reduce through :func:`~repro.index.sharded.merge_shard_rankings` —
   literally the same function the local layout uses, so distributed
   rankings are bit-identical by construction.

Transport: per-shard keep-alive connection pools, per-attempt
timeouts, and capped exponential backoff retries.  Retrying is safe
because both endpoints are idempotent reads — re-sending a query can
never corrupt anything, only recompute it.  A shard that stays dead
raises one :class:`~repro.cluster.errors.ShardUnavailable` for the
whole query: the merge step **never** runs on a partial fan-out, so a
caller either gets exactly the right ranking or one clear error.
Recovery needs no coordinator restart — pools re-dial on demand, so
the first fan-out after the shard returns succeeds.

``query_many`` is synchronous (the dispatcher calls it from an
executor thread); internally it hops onto the I/O loop via
``run_coroutine_threadsafe``, so concurrent ticks share pools without
locks — all pool state lives on the loop thread.
"""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np

from ..index import SearchHit, merge_shard_rankings
from ..index.index import _check_jobs
from ..serve.protocol import STREAM_LIMIT
from .errors import ClusterError, ShardProtocolError, ShardUnavailable, TopologyError
from .topology import ShardAddress, Topology

#: Per-attempt I/O timeout (seconds) for shard requests.
DEFAULT_TIMEOUT = 30.0
#: Retries after the first attempt (so ``retries=2`` → 3 attempts).
DEFAULT_RETRIES = 2
#: Exponential backoff: ``backoff * 2**attempt`` seconds, capped.
DEFAULT_BACKOFF = 0.05
BACKOFF_CAP = 1.0
#: Idle keep-alive connections kept per shard server.
POOL_SIZE = 4


class _IOLoop:
    """A private event loop on a daemon thread.  Everything network
    lives here; synchronous callers hop on with :meth:`run`."""

    def __init__(self):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-cluster-io", daemon=True)
        self._thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def stop(self) -> None:
        if self._loop.is_closed():
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()


async def _read_client_response(reader: asyncio.StreamReader
                                ) -> tuple[int, bytes, bool]:
    """Parse one HTTP/1.1 response off ``reader``: ``(status, body,
    keep_alive)``.  The client half of what ``repro.serve.protocol``
    does for requests — shard servers always answer with
    ``Content-Length`` framing (they are ours), so no chunked support
    is needed."""
    line = await reader.readline()
    if not line:
        raise ConnectionError("EOF before status line")
    parts = line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ConnectionError(f"malformed status line {line!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise ConnectionError("EOF in response headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    keep = headers.get("connection", "keep-alive").lower() != "close"
    return status, body, keep


class RemoteShard:
    """One shard server: address + keep-alive connection pool + retry
    policy.  All state lives on the coordinator's I/O loop thread."""

    def __init__(self, address: ShardAddress, *, timeout: float,
                 retries: int, backoff: float, pool_size: int = POOL_SIZE):
        self.address = address
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.pool_size = pool_size
        self._pool: list[tuple[asyncio.StreamReader,
                               asyncio.StreamWriter]] = []

    # -- connection management (I/O loop only) -------------------------

    async def _acquire(self) -> tuple[tuple[asyncio.StreamReader,
                                            asyncio.StreamWriter], bool]:
        """``(connection, pooled)`` — a pooled keep-alive connection if
        one is idle, else a fresh dial.  ``pooled`` tells the retry
        logic a failure may just mean the server closed an idle socket
        (restart, timeout), not that it is down."""
        if self._pool:
            return self._pool.pop(), True
        reader, writer = await asyncio.open_connection(
            self.address.host, self.address.port, limit=STREAM_LIMIT)
        return (reader, writer), False

    def _release(self, conn) -> None:
        if len(self._pool) < self.pool_size:
            self._pool.append(conn)
        else:
            self._close(conn)

    @staticmethod
    def _close(conn) -> None:
        _reader, writer = conn
        writer.close()

    def flush_pool(self) -> None:
        """Drop every idle connection (after a pooled-connection
        failure they are all suspect — the server likely restarted)."""
        while self._pool:
            self._close(self._pool.pop())

    # -- requests -------------------------------------------------------

    async def request(self, method: str, path: str,
                      payload: dict | None = None,
                      timeout: float | None = None,
                      retries: int | None = None) -> dict:
        """One idempotent request, retried with capped exponential
        backoff; returns the decoded JSON body of a 200.

        Connection failures and per-attempt timeouts retry (the shard
        may be restarting — recovery must not need a coordinator
        restart); a 503 retries too (the server was draining).  Any
        other non-200 is :class:`ShardProtocolError` — terminal,
        retrying cannot fix a wrong-version server.  Retries exhausted
        is :class:`ShardUnavailable`, naming the shard."""
        timeout = self.timeout if timeout is None else timeout
        retries = self.retries if retries is None else retries
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.address}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"\r\n").encode("latin-1")
        cause: BaseException = ConnectionError("no attempt made")
        attempts = retries + 1
        for attempt in range(attempts):
            if attempt:
                await asyncio.sleep(min(self.backoff * 2 ** (attempt - 1),
                                        BACKOFF_CAP))
            try:
                conn, pooled = await asyncio.wait_for(self._acquire(),
                                                      timeout)
            except (OSError, asyncio.TimeoutError) as error:
                cause = error
                continue
            try:
                status, data, keep = await asyncio.wait_for(
                    self._exchange(conn, head, body), timeout)
            except (OSError, asyncio.IncompleteReadError, ConnectionError,
                    asyncio.TimeoutError) as error:
                self._close(conn)
                if pooled:
                    # A stale keep-alive socket, not evidence the shard
                    # is down; its pool-mates are equally stale.
                    self.flush_pool()
                cause = error
                continue
            if status == 200:
                if keep:
                    self._release(conn)
                else:
                    self._close(conn)
                try:
                    return json.loads(data)
                except json.JSONDecodeError as error:
                    raise ShardProtocolError(
                        str(self.address),
                        f"200 with undecodable body: {error}") from None
            self._close(conn)
            if status == 503:
                # Draining/restarting: exactly what backoff is for.
                cause = ConnectionError("shard answered 503 (draining)")
                continue
            raise ShardProtocolError(
                str(self.address),
                f"{method} {path} answered {status}: "
                f"{data[:200].decode('utf-8', 'replace')}")
        raise ShardUnavailable(str(self.address), attempts, cause)

    @staticmethod
    async def _exchange(conn, head: bytes,
                        body: bytes) -> tuple[int, bytes, bool]:
        reader, writer = conn
        writer.write(head + body)
        await writer.drain()
        return await _read_client_response(reader)


class RemoteShardedIndex:
    """A cluster of shard servers behind the ``ShardedIndex`` query
    surface (see module docstring).  Build with :meth:`connect`."""

    def __init__(self, topology: Topology, *,
                 timeout: float = DEFAULT_TIMEOUT,
                 retries: int = DEFAULT_RETRIES,
                 backoff: float = DEFAULT_BACKOFF,
                 pool_size: int = POOL_SIZE):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        self.topology = topology
        self._io = _IOLoop()
        self.remotes = [RemoteShard(address, timeout=timeout,
                                    retries=retries, backoff=backoff,
                                    pool_size=pool_size)
                        for address in topology]
        # Filled by connect(): spec identity + per-server bookkeeping.
        self.kind: str = "vector"
        self.dim: int = 0
        self.model_id: str | None = None
        self.format_version: int = 0
        self._spec: dict | None = None
        self._shard_counts: list[int] = [1] * len(self.remotes)
        self._entries: list[int] = [0] * len(self.remotes)
        self._generations: list[int] = [0] * len(self.remotes)
        self._gen_offset = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Boot / identity
    # ------------------------------------------------------------------
    @classmethod
    def connect(cls, topology: Topology, **kwargs) -> "RemoteShardedIndex":
        """Dial every shard server, verify they describe one coherent
        cluster (same kind/dim/LSH geometry, compatible checkpoints),
        and return the ready coordinator.  Fails fast — a cluster that
        cannot answer /healthz everywhere should refuse to boot, not
        500 on the first query."""
        index = cls(topology, **kwargs)
        try:
            index.refresh_identity()
        except BaseException:
            index.close()
            raise
        return index

    def refresh_identity(self) -> None:
        """Fan /healthz out to every server and (re)validate the
        cluster's shared spec.  Raises on any unreachable server or
        spec mismatch."""
        replies = self._io.run(self._gather(
            [remote.request("GET", "/healthz") for remote in self.remotes]))
        specs = []
        for position, reply in enumerate(replies):
            if isinstance(reply, BaseException):
                raise reply
            spec = reply.get("spec")
            if not isinstance(spec, dict):
                raise ShardProtocolError(
                    str(self.remotes[position].address),
                    "healthz reply has no 'spec' — not a shard server?")
            specs.append(spec)
            self._shard_counts[position] = int(reply.get("shards", 1))
            self._entries[position] = int(reply.get("entries", 0))
            self._observe_generation(position,
                                     int(reply.get("generation", 0)))
        first = specs[0]
        for position, spec in enumerate(specs):
            if spec != first:
                raise TopologyError(
                    f"shard server {self.remotes[position].address} "
                    f"describes spec {spec}, but "
                    f"{self.remotes[0].address} describes {first} — the "
                    f"cluster does not share one index spec")
        model_ids = {reply.get("model_id") for reply in replies
                     if reply.get("model_id") is not None}
        if len(model_ids) > 1:
            raise TopologyError(
                f"shard servers were built from different model "
                f"checkpoints: {sorted(model_ids)}")
        self._spec = first
        self.kind = first["kind"]
        self.dim = first["dim"]
        self.model_id = model_ids.pop() if model_ids else None
        self.format_version = max(int(reply.get("format_version", 0))
                                  for reply in replies)

    @staticmethod
    async def _gather(coros):
        return await asyncio.gather(*coros, return_exceptions=True)

    @property
    def n_shards(self) -> int:
        """Total flat shard count across the cluster — what the local
        equivalent ``ShardedIndex`` would call ``n_shards``."""
        return sum(self._shard_counts)

    @property
    def n_servers(self) -> int:
        return len(self.remotes)

    def __len__(self) -> int:
        return sum(self._entries)

    @property
    def generation(self) -> int:
        """Cluster-wide monotonic mutation counter: the sum of every
        server's last-observed index generation plus an offset that
        absorbs restarts (a server coming back with a *lower* counter
        bumps the offset so the total never repeats — the cache may be
        flushed spuriously, never served stale)."""
        return self._gen_offset + sum(self._generations)

    def _observe_generation(self, position: int, generation: int) -> None:
        previous = self._generations[position]
        if generation < previous:
            self._gen_offset += previous - generation
        self._generations[position] = generation

    # ------------------------------------------------------------------
    # Health (the coordinator /healthz aggregation)
    # ------------------------------------------------------------------
    def shard_health(self, timeout: float = 5.0) -> dict:
        """Per-shard reachability, never raising: one entry per server
        with ``ok`` plus identity fields when reachable, the error when
        not.  The retrieval server duck-types on this method to grow
        its ``/healthz`` with a cluster section — partial outages are
        visible *before* they turn into failed queries."""
        replies = self._io.run(self._gather(
            [remote.request("GET", "/healthz", timeout=timeout, retries=0)
             for remote in self.remotes]))
        shards = []
        for position, reply in enumerate(replies):
            address = str(self.remotes[position].address)
            if isinstance(reply, BaseException):
                shards.append({"address": address, "ok": False,
                               "error": str(reply)})
                continue
            self._shard_counts[position] = int(reply.get("shards", 1))
            self._entries[position] = int(reply.get("entries", 0))
            self._observe_generation(position,
                                     int(reply.get("generation", 0)))
            shards.append({"address": address, "ok": True,
                           "entries": reply.get("entries"),
                           "shards": reply.get("shards"),
                           "generation": reply.get("generation"),
                           "format_version": reply.get("format_version")})
        reachable = sum(1 for shard in shards if shard["ok"])
        return {"servers": shards, "reachable": reachable,
                "total": len(shards),
                "n_shards": self.n_shards,
                "generation": self.generation}

    # ------------------------------------------------------------------
    # Query (the ShardedIndex contract)
    # ------------------------------------------------------------------
    def query_vector(self, vector: np.ndarray, k: int = 10,
                     exclude: str | None = None,
                     jobs: int | None = None) -> list[SearchHit]:
        excludes = None if exclude is None else [exclude]
        return self.query_many(np.asarray(vector, float)[None, :], k,
                               excludes=excludes, jobs=jobs)[0]

    def query_many(self, vectors: np.ndarray, k: int = 10,
                   excludes: list[str | None] | None = None,
                   jobs: int | None = None) -> list[list[SearchHit]]:
        """Distributed :meth:`ShardedIndex.query_many` (see module
        docstring for the algorithm).  ``jobs`` is accepted for surface
        compatibility and validated, but the fan-out is already fully
        concurrent — there is no thread pool to size."""
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        _check_jobs(jobs)
        if self._closed:
            raise ClusterError("coordinator is closed")
        matrix = np.asarray(vectors, float)
        counts, rankings = self._fan_partial(matrix, k, excludes)
        n_queries = len(matrix)
        short = [q for q in range(n_queries)
                 if sum(shard_counts[q] for shard_counts in counts) < k]
        brute_by_query = {q: pos for pos, q in enumerate(short)}
        if short:
            brute_excludes = (None if excludes is None
                              else [excludes[q] for q in short])
            brute_rankings = self._fan_brute(matrix[short], k, brute_excludes)
        results: list[list[SearchHit]] = []
        for q in range(n_queries):
            if q in brute_by_query:
                per_shard = [shard_hits[brute_by_query[q]]
                             for shard_hits in brute_rankings]
            else:
                per_shard = [shard_hits[q] for shard_hits in rankings]
            results.append(merge_shard_rankings(per_shard, k))
        return results

    def _payload(self, matrix: np.ndarray, k: int,
                 excludes: list[str | None] | None) -> dict:
        payload = {"vectors": matrix.tolist(), "k": k}
        if excludes is not None:
            payload["excludes"] = list(excludes)
        return payload

    def _fan_partial(self, matrix, k, excludes
                     ) -> tuple[list[list[int]], list[list[list[SearchHit]]]]:
        """Scatter ``/partial_query``; returns ``(counts, rankings)``
        flattened to one entry per *global* shard in topology order —
        ``counts[s][q]`` and ``rankings[s][q]`` line up with what a
        local layout's shard ``s`` would report for query ``q``."""
        payload = self._payload(matrix, k, excludes)
        replies = self._scatter("/partial_query", payload)
        counts: list[list[int]] = []
        rankings: list[list[list[SearchHit]]] = []
        for position, reply in enumerate(replies):
            for shard in self._shard_entries(position, reply, len(matrix)):
                shard_counts, shard_hits = [], []
                for q, entry in enumerate(shard["queries"]):
                    count = entry.get("count")
                    if not isinstance(count, int):
                        raise ShardProtocolError(
                            str(self.remotes[position].address),
                            f"partial reply query {q} lacks a candidate "
                            f"count")
                    shard_counts.append(count)
                    shard_hits.append(self._parse_hits(position, entry))
                counts.append(shard_counts)
                rankings.append(shard_hits)
        return counts, rankings

    def _fan_brute(self, matrix, k, excludes) -> list[list[list[SearchHit]]]:
        payload = self._payload(matrix, k, excludes)
        replies = self._scatter("/brute_query", payload)
        rankings: list[list[list[SearchHit]]] = []
        for position, reply in enumerate(replies):
            for shard in self._shard_entries(position, reply, len(matrix)):
                rankings.append([self._parse_hits(position, entry)
                                 for entry in shard["queries"]])
        return rankings

    def _scatter(self, path: str, payload: dict) -> list[dict]:
        """POST ``payload`` to every server concurrently.  Any failure
        fails the whole fan-out with that shard's error — the merge
        never sees a partial result set."""
        replies = self._io.run(self._gather(
            [remote.request("POST", path, payload)
             for remote in self.remotes]))
        for position, reply in enumerate(replies):
            if isinstance(reply, BaseException):
                raise reply
            self._observe_generation(position,
                                     int(reply.get("generation", 0)))
        return replies

    def _shard_entries(self, position: int, reply: dict,
                       n_queries: int) -> list[dict]:
        """Validate one server's reply shape against what /healthz
        promised: the right number of local shards, each answering
        every query."""
        address = str(self.remotes[position].address)
        shards = reply.get("shards")
        if not isinstance(shards, list):
            raise ShardProtocolError(address, "reply has no 'shards' list")
        if len(shards) != self._shard_counts[position]:
            raise ShardProtocolError(
                address,
                f"reply carries {len(shards)} local shards, healthz "
                f"promised {self._shard_counts[position]} — the server "
                f"was swapped under the coordinator (re-check topology)")
        for shard in shards:
            queries = shard.get("queries") if isinstance(shard, dict) else None
            if not isinstance(queries, list) or len(queries) != n_queries:
                raise ShardProtocolError(
                    address,
                    f"shard entry does not answer all {n_queries} queries")
        return shards

    def _parse_hits(self, position: int, entry: dict) -> list[SearchHit]:
        hits = entry.get("hits")
        if not isinstance(hits, list):
            raise ShardProtocolError(str(self.remotes[position].address),
                                     "query entry has no 'hits' list")
        try:
            return [SearchHit(key=hit["key"], score=float(hit["score"]),
                              meta=hit.get("meta") or {})
                    for hit in hits]
        except (TypeError, KeyError) as error:
            raise ShardProtocolError(
                str(self.remotes[position].address),
                f"malformed hit in reply: {error!r}") from None

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every pooled connection and stop the I/O loop.
        Idempotent; the coordinator is unusable afterwards."""
        if self._closed:
            return
        self._closed = True

        async def _drain_pools():
            for remote in self.remotes:
                remote.flush_pool()

        try:
            self._io.run(_drain_pools())
        except RuntimeError:  # loop already gone
            pass
        self._io.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RemoteShardedIndex(servers={len(self.remotes)}, "
                f"shards={self.n_shards}, kind={self.kind!r}, "
                f"dim={self.dim})")
