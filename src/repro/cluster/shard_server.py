"""Shard server: one box's slice of the corpus behind a thin wire.

A :class:`ShardServer` holds one locally opened index — a single
``.npz`` (one shard) or a sharded directory (several co-located
shards) — and exposes exactly the per-shard half of the scatter-gather
contract :class:`~repro.index.sharded.ShardedIndex` already runs
in-process:

- ``POST /partial_query`` — :meth:`VectorIndex.query_partial_many` per
  local shard: for each query, the shard's LSH **candidate count** and
  its top-k among those candidates, *no* brute-force fallback.  The
  candidate counts are the point: whether brute force is needed is only
  decidable on the candidate total across **every** shard in the
  cluster, so that decision belongs to the coordinator — exactly as
  ``ShardedIndex`` decides it on the global total today.
- ``POST /brute_query`` — :meth:`VectorIndex.query_brute_many` per
  local shard: the fallback rankings the coordinator requests for
  queries whose global candidate total came up short.
- ``GET /healthz`` — shard identity: spec (kind/dim/LSH geometry),
  entries, local shard count, ``format_version``, ``model_id``, and the
  index ``generation`` (which every query response also carries, so the
  coordinator's result cache invalidates when a shard's data changes).

Responses list one entry **per local shard, in shard order**: the
coordinator flattens those lists across servers in topology order into
the same flat shard sequence a local ``ShardedIndex`` would merge, so
distributed rankings are bit-identical to local ones by construction
(JSON round-trips floats exactly — ``json.dumps`` emits ``repr``-style
shortest forms).

The wire is the same hand-rolled HTTP/1.1 the retrieval server speaks
(:mod:`repro.serve.protocol` owns framing and error statuses); the
GEMMs run in the loop's executor so health checks stay responsive
while a fan-out computes.  The query path is read-only, so any number
of coordinators may hit one shard server concurrently.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import threading
import time
from functools import partial
from pathlib import Path

from ..index import ShardedIndex
from ..serve.protocol import (
    DEFAULT_MAX_BODY,
    STREAM_LIMIT,
    ProtocolError,
    Request,
    format_hits,
    json_body,
    parse_query_payload,
    read_request,
    render_response,
)
from ..serve.server import LOG_ENV


def local_shards(index) -> list:
    """The flat list of single shards behind ``index`` — the units the
    wire protocol reports per-shard partials for."""
    if isinstance(index, ShardedIndex):
        return list(index.shards)
    return [index]


def index_spec_payload(index) -> dict:
    """The LSH-geometry/spec identity ``GET /healthz`` reports (the
    coordinator checks every server agrees before merging anything)."""
    source = index.spec if isinstance(index, ShardedIndex) else index
    return {
        "kind": index.kind,
        "dim": index.dim,
        "n_planes": source.n_planes,
        "n_bands": source.n_bands,
        "seed": source.seed,
    }


class _Connection:
    """Per-connection drain state (same contract as the retrieval
    server): ``busy`` requests finish, idle ones are disconnected, and
    requests arriving after the drain began get a 503."""

    __slots__ = ("writer", "busy", "reject")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.busy = False
        self.reject = False


class ShardServer:
    """Serve one local index's partial/brute query surface."""

    def __init__(self, index, host: str = "127.0.0.1", port: int = 0, *,
                 max_body: int = DEFAULT_MAX_BODY,
                 drain_timeout: float = 10.0,
                 log_path: str | Path | None = None):
        self.index = index
        self.shards = local_shards(index)
        self.host = host
        self._requested_port = port
        self.max_body = max_body
        self.drain_timeout = drain_timeout
        self.requests_total = 0
        self.queries_total = 0
        self._server: asyncio.Server | None = None
        self._connections: set[_Connection] = set()
        self._draining = False
        self._stopped = asyncio.Event()
        if log_path is None:
            log_path = os.environ.get(LOG_ENV) or None
        self._log_path = None if log_path is None else Path(log_path)
        self._log_handle = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._log_path is not None:
            self._log_path.parent.mkdir(parents=True, exist_ok=True)
            self._log_handle = open(self._log_path, "a", encoding="utf-8")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port,
            limit=STREAM_LIMIT)
        self._log(f"shard serving kind={self.index.kind} "
                  f"dim={self.index.dim} entries={len(self.index)} "
                  f"local_shards={len(self.shards)} on "
                  f"http://{self.host}:{self.port}")

    async def serve_forever(self) -> None:
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful drain, mirroring the retrieval server: stop
        accepting, sever idle keep-alive connections, let in-flight
        requests answer, then return.  Idempotent."""
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for connection in list(self._connections):
            if not connection.busy:
                connection.writer.close()
        deadline = time.monotonic() + self.drain_timeout
        while self._connections and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        for connection in list(self._connections):
            self._log("drain timeout: force-closing a connection")
            connection.writer.close()
        self._log(f"shard stopped after {self.requests_total} requests / "
                  f"{self.queries_total} queries")
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None
        self._stopped.set()

    def _log(self, message: str) -> None:
        if self._log_handle is not None:
            stamp = time.strftime("%Y-%m-%dT%H:%M:%S")
            self._log_handle.write(f"{stamp} {message}\n")
            self._log_handle.flush()

    # ------------------------------------------------------------------
    # Connection handling (protocol.py owns framing and error statuses)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        connection = _Connection(writer)
        self._connections.add(connection)
        try:
            def mark_request_started() -> None:
                connection.busy = True
                connection.reject = self._draining

            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.max_body,
                        on_request_line=mark_request_started)
                except ProtocolError as error:
                    self.requests_total += 1
                    writer.write(render_response(
                        error.status, json_body({"error": error.message}),
                        keep_alive=not error.close))
                    await writer.drain()
                    connection.busy = False
                    if error.close:
                        break
                    continue
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if request is None:
                    break
                self.requests_total += 1
                try:
                    status, payload, n_queries = await self._respond(
                        request, reject=connection.reject)
                except Exception as error:  # noqa: BLE001 - last resort
                    status, payload, n_queries = 500, {"error": repr(error)}, 0
                self.queries_total += n_queries
                keep_alive = (request.keep_alive and not self._draining
                              and status < 500)
                writer.write(render_response(status, json_body(payload),
                                             keep_alive=keep_alive))
                await writer.drain()
                self._log(f"{request.method} {request.target} -> {status} "
                          f"({n_queries} queries)")
                connection.busy = False
                if not keep_alive:
                    break
        except ConnectionError:
            pass
        finally:
            self._connections.discard(connection)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _respond(self, request: Request,
                       reject: bool = False) -> tuple[int, dict, int]:
        if reject:
            return 503, {"error": "shard server is draining"}, 0
        if request.target == "/healthz":
            if request.method != "GET":
                return 405, {"error": "/healthz takes GET"}, 0
            return 200, {
                "status": "ok",
                "spec": index_spec_payload(self.index),
                "entries": len(self.index),
                "shards": len(self.shards),
                "model_id": self.index.model_id,
                "format_version": self.index.format_version,
                "generation": self.index.generation,
            }, 0
        if request.target in ("/partial_query", "/brute_query"):
            if request.method != "POST":
                return 405, {"error": f"{request.target} takes POST"}, 0
            return await self._respond_query(
                request, brute=request.target == "/brute_query")
        return 404, {"error": f"no route {request.target!r}"}, 0

    async def _respond_query(self, request: Request,
                             brute: bool) -> tuple[int, dict, int]:
        try:
            matrix, k, excludes, _single = parse_query_payload(
                request.body, self.index.dim)
        except ProtocolError as error:
            return error.status, {"error": error.message}, 0
        # Snapshot the generation *before* computing: if a writer were
        # to mutate between the GEMM and the stamp, the coordinator's
        # cache must see the pre-answer generation (its store-drop belt
        # handles the race, same as the local engine's).
        generation = self.index.generation
        loop = asyncio.get_running_loop()
        call = self._brute_shards if brute else self._partial_shards
        shards = await loop.run_in_executor(
            None, partial(call, matrix, k, excludes))
        return 200, {"generation": generation, "shards": shards}, len(matrix)

    def _partial_shards(self, matrix, k, excludes) -> list[dict]:
        """One wire entry per local shard, in shard order: per query,
        the LSH candidate count and the top-k among those candidates."""
        out = []
        for shard in self.shards:
            partials = shard.query_partial_many(matrix, k, excludes=excludes)
            out.append({"queries": [{"count": count,
                                     "hits": format_hits(hits)}
                                    for count, hits in partials]})
        return out

    def _brute_shards(self, matrix, k, excludes) -> list[dict]:
        """Brute-force rankings per local shard (the coordinator asks
        for these only for queries whose *global* candidate total fell
        below k)."""
        out = []
        for shard in self.shards:
            rankings = shard.query_brute_many(matrix, k, excludes=excludes)
            out.append({"queries": [{"hits": format_hits(hits)}
                                    for hits in rankings]})
        return out


class ShardServerThread:
    """A :class:`ShardServer` on a background thread's event loop — the
    in-process harness tests and benchmarks boot cluster members with
    (mirrors :class:`~repro.serve.server.ServerThread`)."""

    def __init__(self, index, **server_kwargs):
        self.server = ShardServer(index, **server_kwargs)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._stopped = False

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ShardServerThread":
        self._thread = threading.Thread(target=self._run,
                                        name="repro-shard", daemon=True)
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._started.is_set():
            raise RuntimeError("shard server thread failed to start in time")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as error:  # noqa: BLE001 - reported to starter
            self._startup_error = error
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.run_until_complete(loop.shutdown_default_executor())
            loop.close()

    def stop(self, timeout: float = 30.0) -> None:
        if self._stopped or self._loop is None:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(self.server.shutdown(),
                                                  self._loop)
        future.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ShardServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
