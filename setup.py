"""Shim so `pip install -e .` works without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables the
legacy editable-install code path in environments without network access.
"""

from setuptools import setup

setup()
