"""Medical-corpus workflow: the paper's three downstream tasks end to end.

Mirrors Section 4 on a CovidKG-like corpus: pre-train TabBiN, then run
Column Clustering (schema matching), Table Clustering (topic grouping),
and Entity Clustering, comparing against a Word2Vec baseline trained on
the same tuples.

Run:  python examples/medical_corpus.py
"""

from repro.baselines import (
    Word2Vec,
    corpus_tuples,
    make_column_embedder,
    make_entity_embedder,
    make_table_embedder,
)
from repro.core import TabBiNConfig, TabBiNEmbedder
from repro.datasets import corpus_stats, load_dataset
from repro.eval import (
    ResultsTable,
    collect_entities,
    column_clustering,
    entity_clustering,
    table_clustering,
)


def main() -> None:
    corpus = load_dataset("covidkg", n_tables=24, seed=1)
    stats = corpus_stats(corpus)
    print(f"CovidKG-like corpus: {stats.n_tables} tables, "
          f"{stats.frac_non_relational:.0%} non-relational, "
          f"{stats.n_with_vmd} with VMD, {stats.n_nested} nested")

    print("Pre-training TabBiN ...")
    tabbin, _ = TabBiNEmbedder.build(corpus, config=TabBiNConfig.small(),
                                     steps=60, vocab_size=600, seed=0)
    print("Training Word2Vec baseline ...")
    w2v = Word2Vec(dim=48, window=3, seed=0).train(corpus_tuples(corpus),
                                                   epochs=3)

    entities = collect_entities(corpus, max_per_type=20)
    results = ResultsTable("CC / TC / EC on CovidKG-like corpus (MAP/MRR@20)",
                           columns=["CC", "TC", "EC"])
    for name, col_fn, tbl_fn, ent_fn in (
        ("TabBiN", tabbin.column_embedding, tabbin.table_embedding,
         tabbin.entity_embedding),
        ("Word2vec", make_column_embedder(w2v), make_table_embedder(w2v),
         make_entity_embedder(w2v)),
    ):
        cc = column_clustering(corpus, col_fn, max_queries=30)
        tc = table_clustering(corpus, tbl_fn)
        ec = entity_clustering(entities, ent_fn, max_queries=20)
        results.add(name, "CC", str(cc))
        results.add(name, "TC", str(tc))
        results.add(name, "EC", str(ec))
    results.show()

    # The structure-aware model should not lose to the bag-of-words
    # baseline on this BiN-heavy corpus.
    tabbin_cc = float(results.get("TabBiN", "CC").split("/")[0])
    w2v_cc = float(results.get("Word2vec", "CC").split("/")[0])
    print(f"TabBiN CC MAP {tabbin_cc:.2f} vs Word2vec {w2v_cc:.2f}")


if __name__ == "__main__":
    main()
