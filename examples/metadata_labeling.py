"""Label noisy raw grids with the bi-GRU/CNN metadata classifiers.

Corpora "in the wild" arrive as raw grids with unlabeled or noisy
metadata (Section 2.3).  This example trains the paper's two binary
metadata classifiers on generated tables, compares them against the
heuristic labeler, and then parses a raw grid end to end into a typed
BiN table using the predicted header counts.

Run:  python examples/metadata_labeling.py
"""

from repro.datasets import load_dataset
from repro.metadata import (
    MetadataClassifier,
    label_grid_heuristic,
    training_set_from_tables,
)
from repro.tables import parse_grid

RAW_GRID = [
    ["Treatment",    "Overall Survival", "Response Rate", "Hazard Ratio"],
    ["ramucirumab",  "20.3 months",      "45 %",          "0.84"],
    ["chemotherapy", "15.1 months",      "34 %",          "1.02"],
    ["folfiri",      "18.0 months",      "41 %",          "0.91"],
]


def main() -> None:
    print("Generating labeled training lines from a corpus ...")
    corpus = load_dataset("cancerkg", n_tables=20, seed=5)
    lines, labels = training_set_from_tables(corpus)
    print(f"   {len(lines)} lines ({sum(labels)} metadata, "
          f"{len(labels) - sum(labels)} data)")

    for architecture in ("bigru", "cnn"):
        clf = MetadataClassifier(architecture, hidden=12, seed=0)
        clf.fit(lines, labels, epochs=12, lr=2e-2)
        accuracy = clf.accuracy(lines, labels)
        rows, cols = clf.label_grid(RAW_GRID)
        print(f"   {architecture:5s}: train accuracy {accuracy:.2f}; "
              f"raw grid -> {rows} header row(s), {cols} header col(s)")

    rows, cols = label_grid_heuristic(RAW_GRID)
    print(f"   rules: raw grid -> {rows} header row(s), {cols} header col(s)")

    print("\nParsing the raw grid with the predicted header counts ...")
    table = parse_grid(RAW_GRID, n_header_rows=rows, n_header_cols=0,
                       caption="Treatment efficacy (parsed from raw grid)")
    print(f"   {table}")
    for j in range(table.n_cols):
        cell = table.data[0][j]
        kind = type(cell.value).__name__
        unit = f" [{cell.unit_category}]" if cell.unit_category else ""
        print(f"   column {table.column_label(j)!r}: {cell.text!r} "
              f"-> {kind}{unit}")


if __name__ == "__main__":
    main()
