"""Build an entity catalog and match entities across a corpus.

Mirrors Section 4.3: harvest typed entities (drugs, treatments, places,
organizations ...) from table columns into catalogs, cluster them with
the TabBiN column model, and run the binary entity-matching head against
labeled pairs (the Table 9 protocol).

Run:  python examples/entity_catalog.py
"""

from collections import Counter

from repro.core import TabBiNConfig, TabBiNEmbedder
from repro.core.classifier import TabBiNMatcher
from repro.datasets import entity_pairs_from_corpus, load_dataset
from repro.eval import collect_entities, entity_clustering


def main() -> None:
    corpus = load_dataset("cancerkg", n_tables=24, seed=2)
    print("Harvesting entity catalogs from typed columns ...")
    entities = collect_entities(corpus, max_per_type=30)
    counts = Counter(e.entity_type for e in entities)
    for entity_type, count in counts.most_common():
        sample = next(e.text for e in entities if e.entity_type == entity_type)
        print(f"   {entity_type:12s} {count:3d} entries (e.g. {sample!r})")

    print("\nPre-training TabBiN ...")
    embedder, _ = TabBiNEmbedder.build(corpus, config=TabBiNConfig.small(),
                                       steps=60, vocab_size=600, seed=0)

    print("Clustering the catalog with the TabBiN-column model ...")
    result = entity_clustering(entities, embedder.entity_embedding,
                               max_queries=30)
    print(f"   EC MAP@20 {result.map_at_k:.2f}, MRR@20 {result.mrr_at_k:.2f} "
          f"over {result.n_queries} queries")

    print("\nTraining the entity-matching head (linear+softmax ensemble) ...")
    pairs = entity_pairs_from_corpus(corpus, n_pairs=80, seed=0)
    cut = int(len(pairs) * 0.7)
    train, test = pairs[:cut], pairs[cut:]
    matcher = TabBiNMatcher(embedder, ensemble=3, seed=0)
    matcher.fit(train, epochs=80)
    print(f"   train F1 {matcher.evaluate_f1(train):.2f}, "
          f"held-out F1 {matcher.evaluate_f1(test):.2f}")

    example = test[0]
    probability = matcher.predict_proba([example])[0, 1]
    print(f"\nExample pair (gold={'match' if example.label else 'mismatch'}):")
    print(f"   A: {example.left[:64]}")
    print(f"   B: {example.right[:64]}")
    print(f"   P(match) = {probability:.2f}")


if __name__ == "__main__":
    main()
