"""Quickstart: build TabBiN embeddings on a small corpus and query them.

Walks the full pipeline end to end:

1. generate a CancerKG-like corpus (BiN tables with hierarchical
   metadata, units, ranges, gaussians, nesting);
2. pre-train the four TabBiN segment models (rows / columns / HMD / VMD)
   with MLM + Cell-level Cloze;
3. embed columns, tables, and entities;
4. rank by cosine similarity to find similar columns and tables.

Run:  python examples/quickstart.py
"""

from repro.core import TabBiNConfig, TabBiNEmbedder
from repro.datasets import load_dataset
from repro.retrieval import cosine_similarity
from repro.tables import figure1_table

STEPS = 60  # the paper uses 50,000 at H=768; this is a CPU-sized demo


def main() -> None:
    print("1) Generating a CancerKG-like corpus ...")
    corpus = load_dataset("cancerkg", n_tables=20, seed=0)
    bin_tables = sum(not t.is_relational for t in corpus)
    print(f"   {len(corpus)} tables, {bin_tables} non-relational (BiN)")

    print(f"2) Pre-training TabBiN ({STEPS} steps per segment model) ...")
    embedder, stats = TabBiNEmbedder.build(
        corpus, config=TabBiNConfig.small(), steps=STEPS, vocab_size=600,
        seed=0,
    )
    for segment, s in stats.items():
        print(f"   {segment:7s} MLM+CLC loss {s.losses[0]:.2f} -> {s.final_loss:.2f}")

    print("3) Embedding the paper's Figure 1 example table ...")
    example = figure1_table()
    table_vec = embedder.table_embedding(example, variant="tblcomp1")
    column_vec = embedder.column_embedding(example, 1)  # the OS column
    entity_vec = embedder.entity_embedding("ramucirumab")
    print(f"   table vector  : {table_vec.shape}  (row ⊕ HMD ⊕ VMD)")
    print(f"   column vector : {column_vec.shape}  (attribute ⊕ data)")
    print(f"   entity vector : {entity_vec.shape}")

    print("4) Finding the corpus table most similar to the example ...")
    scored = sorted(
        ((cosine_similarity(table_vec,
                            embedder.table_embedding(t, variant="tblcomp1")), t)
         for t in corpus),
        key=lambda pair: -pair[0],
    )
    for sim, t in scored[:3]:
        print(f"   {sim:.3f}  [{t.topic}] {t.caption[:60]}")
    assert scored[0][1].topic is not None

    print("\nDone. See examples/medical_corpus.py for the full CC/TC/EC "
          "evaluation and examples/table_search.py for search workflows.")


if __name__ == "__main__":
    main()
