"""Table search over a mixed data lake with LSH blocking.

The paper motivates its clusters with table search and data fusion: find
tables similar to a query table across sources.  This example builds a
mixed "data lake" from three generated corpora, indexes composite table
embeddings with cosine LSH, and answers table-search queries without a
full quadratic scan — the Section 4.1 blocking recipe.

Run:  python examples/table_search.py
"""

import numpy as np

from repro.core import TabBiNConfig, TabBiNEmbedder
from repro.datasets import load_dataset
from repro.retrieval import CosineLSH

LAKE_SOURCES = ("webtables", "covidkg", "saus")


def main() -> None:
    print("Building a mixed data lake ...")
    lake = []
    for source in LAKE_SOURCES:
        lake.extend(load_dataset(source, n_tables=12, seed=3))
    print(f"   {len(lake)} tables from {len(LAKE_SOURCES)} sources")

    print("Pre-training TabBiN on the lake ...")
    embedder, _ = TabBiNEmbedder.build(lake, config=TabBiNConfig.small(),
                                       steps=60, vocab_size=800, seed=0)

    print("Indexing composite table embeddings with cosine LSH ...")
    vectors = np.stack([embedder.table_embedding(t, variant="tblcomp1")
                        for t in lake])
    lsh = CosineLSH(dim=vectors.shape[1], n_planes=8, n_bands=6, seed=0)
    lsh.add_all(vectors)

    for query_id in (0, len(lake) // 2, len(lake) - 1):
        query = lake[query_id]
        print(f"\nQuery: [{query.topic}] {query.caption[:58]}")
        candidates = lsh.candidates(vectors[query_id])
        print(f"   LSH blocking: {len(candidates)}/{len(lake)} candidates")
        for idx, sim in lsh.query(vectors[query_id], k=3, exclude=query_id):
            hit = lake[idx]
            marker = "*" if hit.topic == query.topic else " "
            print(f"   {marker} {sim:.3f}  [{hit.topic}] {hit.caption[:52]}")

    # Recall sanity: the top hit usually shares the query's topic.
    hits = 0
    for query_id in range(len(lake)):
        top = lsh.query(vectors[query_id], k=1, exclude=query_id)
        hits += bool(top) and lake[top[0][0]].topic == lake[query_id].topic
    print(f"\nTop-1 same-topic rate across the lake: {hits / len(lake):.0%}")


if __name__ == "__main__":
    main()
