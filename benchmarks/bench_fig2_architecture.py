"""Figure 2: the TabBiN architecture with 6 embedding layers.

Regenerates the architecture summary — embedding components, their
shapes, encoder geometry, parameter counts — and benchmarks a forward
pass through the full stack.
"""

import numpy as np

from repro.core import TabBiNConfig, TabBiNSerializer
from repro.core.model import TabBiNModel
from repro.eval import ResultsTable
from repro.tables import figure1_table
from repro.text import TypeInference, WordPieceTokenizer

from .common import RESULTS_DIR


def build_stack():
    table = figure1_table()
    from repro.core import corpus_texts

    tokenizer = WordPieceTokenizer.train(corpus_texts([table]), vocab_size=300)
    config = TabBiNConfig.small().with_vocab(len(tokenizer.vocab))
    serializer = TabBiNSerializer(tokenizer, TypeInference(), config)
    model = TabBiNModel(config, pad_id=tokenizer.vocab.pad_id,
                        rng=np.random.default_rng(0))
    model.eval()
    return table, serializer, model, config


def render_architecture(model, config):
    out = ResultsTable(
        "Figure 2: TabBiN architecture (6 embedding layers + masked encoder)",
        columns=["shape / value"],
    )
    H = config.hidden
    out.add("E_tok (token semantics)", "shape / value", f"({config.vocab_size}, {H})")
    out.add("E_num (mag/pre/fst/lst)", "shape / value",
            f"4 x ({config.numeric_bins}, {H // 4})")
    out.add("E_cpos (in-cell pos, I)", "shape / value",
            f"({config.max_cell_tokens}, {H})")
    out.add("E_tpos (vr,vc,hr,hc,nr,nc; G)", "shape / value",
            f"6 x ({config.max_position}, {H // 6})")
    out.add("E_fmt (units+nesting, F=8)", "shape / value",
            f"(8 -> {H}) affine")
    out.add("E_type (T=14)", "shape / value", f"({config.num_types}, {H})")
    out.add("encoder", "shape / value",
            f"{config.num_layers} layers x {config.num_heads} heads, "
            f"masked attention (visibility matrix)")
    out.add("MLM head", "shape / value", f"({H} -> {config.vocab_size})")
    out.add("total parameters", "shape / value", f"{model.num_parameters():,}")
    out.add("paper-scale config", "shape / value",
            "H=768, 12 layers (BERT_BASE-aligned), 50k steps, batch 12, lr 2e-5")
    return out


def test_fig2_architecture(benchmark):
    table_obj, serializer, model, config = build_stack()
    summary = render_architecture(model, config)
    summary.show()
    summary.save(RESULTS_DIR / "fig2_architecture.md")
    sequences = serializer.serialize(table_obj, "row")

    def forward():
        hidden, _valid = model(sequences)
        return float(hidden.data.sum())

    value = benchmark(forward)
    assert np.isfinite(value)
    assert model.num_parameters() > 0
