"""Index lifecycle + parallel-encode benchmark.

Two sections, one report:

- **lifecycle** — wall-clock for each phase of the
  :class:`~repro.index.index.VectorIndex` lifecycle on a synthetic
  corpus of seeded gaussian vectors: bulk ``add_batch``, tombstoning a
  fraction with ``remove``, querying *through* the tombstones,
  ``compact``, querying the compacted index, and ``merge`` of two
  disjoint halves.
- **encode** — tables/sec for a full four-segment
  ``EmbeddingStore.encode_corpus`` serially vs ``workers=N`` process
  scatter (identical batches, identical results; only the executor
  differs).

Results are written to ``results/BENCH_index_lifecycle.json`` in the
shared ``BENCH_*.json`` tracking shape (benchmark name, config, one
record per op/mode) so successive runs can be diffed.

Run directly (``PYTHONPATH=src python benchmarks/bench_index_lifecycle.py``)
or via the smoke test in ``tests/index/test_bench_smoke.py``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.core import TabBiNConfig, TabBiNEmbedder
from repro.datasets import load_dataset
from repro.eval import ResultsTable, results_dir
from repro.index import VectorIndex

WORKER_COUNTS = (2, 4)


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def lifecycle_records(n_vectors: int = 2000, dim: int = 64,
                      remove_frac: float = 0.25, n_queries: int = 50,
                      k: int = 10, seed: int = 0) -> list[dict]:
    """Time each lifecycle phase on one synthetic index."""
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n_vectors, dim))
    queries = rng.standard_normal((n_queries, dim))
    keys = [f"k{i}" for i in range(n_vectors)]
    records = []

    index = VectorIndex(dim=dim, seed=seed)
    seconds, _ = _timed(lambda: index.add_batch(keys, vectors))
    records.append({"op": "add_batch", "n": n_vectors, "seconds": seconds,
                    "per_sec": n_vectors / seconds if seconds else None})

    doomed = [keys[i] for i in
              rng.choice(n_vectors, int(n_vectors * remove_frac),
                         replace=False)]

    def remove_all():
        for key in doomed:
            index.remove(key)
    seconds, _ = _timed(remove_all)
    records.append({"op": "remove", "n": len(doomed), "seconds": seconds,
                    "per_sec": len(doomed) / seconds if seconds else None})

    def query_all():
        for q in queries:
            index.query_vector(q, k=k)
    seconds, _ = _timed(query_all)
    records.append({"op": "query+tombstones", "n": n_queries,
                    "seconds": seconds,
                    "per_sec": n_queries / seconds if seconds else None})

    seconds, reclaimed = _timed(index.compact)
    records.append({"op": "compact", "n": reclaimed, "seconds": seconds,
                    "per_sec": reclaimed / seconds if seconds else None})

    seconds, _ = _timed(query_all)
    records.append({"op": "query compacted", "n": n_queries,
                    "seconds": seconds,
                    "per_sec": n_queries / seconds if seconds else None})

    half = n_vectors // 2
    left, right = VectorIndex(dim=dim, seed=seed), VectorIndex(dim=dim, seed=seed)
    left.add_batch(keys[:half], vectors[:half])
    right.add_batch(keys[half:], vectors[half:])
    seconds, added = _timed(lambda: left.merge(right))
    records.append({"op": "merge", "n": added, "seconds": seconds,
                    "per_sec": added / seconds if seconds else None})
    return records


def encode_records(n_tables: int = 12, vocab_size: int = 300, seed: int = 0,
                   dataset: str = "cancerkg",
                   worker_counts: tuple[int, ...] = WORKER_COUNTS,
                   repeats: int = 2) -> list[dict]:
    """Serial vs multi-process full-corpus encode (best of ``repeats``)."""
    tables = load_dataset(dataset, n_tables=n_tables, seed=seed)
    embedder, _stats = TabBiNEmbedder.build(
        tables, config=TabBiNConfig.small(), steps=0,
        vocab_size=vocab_size, seed=seed,
    )
    records = []
    for workers in (1, *worker_counts):
        best = float("inf")
        for _ in range(max(repeats, 1)):
            embedder.clear_cache()
            start = time.perf_counter()
            embedder.precompute(tables, workers=workers)
            best = min(best, time.perf_counter() - start)
        mode = "encode serial" if workers == 1 else f"encode workers={workers}"
        records.append({"op": mode, "n": n_tables, "seconds": best,
                        "per_sec": n_tables / best if best else None})
    return records


def run(n_vectors: int = 2000, dim: int = 64, n_tables: int = 12,
        vocab_size: int = 300, seed: int = 0,
        worker_counts: tuple[int, ...] = WORKER_COUNTS,
        repeats: int = 2) -> dict:
    return {
        "benchmark": "index_lifecycle",
        "config": {"n_vectors": n_vectors, "dim": dim, "n_tables": n_tables,
                   "vocab_size": vocab_size, "seed": seed,
                   "worker_counts": list(worker_counts), "repeats": repeats},
        "results": (lifecycle_records(n_vectors=n_vectors, dim=dim, seed=seed)
                    + encode_records(n_tables=n_tables, vocab_size=vocab_size,
                                     seed=seed, worker_counts=worker_counts,
                                     repeats=repeats)),
    }


def render(report: dict) -> ResultsTable:
    config = report["config"]
    out = ResultsTable(
        f"Index lifecycle: {config['n_vectors']} vectors (dim "
        f"{config['dim']}), {config['n_tables']}-table encode",
        columns=["n", "seconds", "ops/sec"])
    for record in report["results"]:
        out.add(record["op"], "n", record["n"])
        out.add(record["op"], "seconds", f"{record['seconds']:.3f}")
        per_sec = record["per_sec"]
        out.add(record["op"], "ops/sec",
                f"{per_sec:.1f}" if per_sec is not None else "-")
    return out


def main() -> int:
    report = run()
    render(report).show()
    path = results_dir() / "BENCH_index_lifecycle.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"Wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
