"""Table 11: TC without vs with composite embeddings (tblcomp1/2).

Paper shape: tblcomp1 (row ⊕ HMD ⊕ VMD) improves over the row model
alone, and tblcomp2 (adding the fine-tuned caption encoder, Figure 5a)
improves further on the non-relational slices.
"""

from repro.eval import ResultsTable, table_clustering

from .common import RESULTS_DIR, biobert, corpus, fmt, tabbin

DATASETS = ("covidkg", "cancerkg")
VARIANTS = ("row", "tblcomp1", "tblcomp2")


def run_composite_tc():
    columns = [f"{d} ({s})" for d in DATASETS
               for s in ("all", "HMD+VMD", "relational")]
    out = ResultsTable(
        "Table 11: TC by TabBiN without and with Composite Embeddings",
        columns=columns,
    )
    for name in DATASETS:
        tables = list(corpus(name))
        embedder = tabbin(name)
        # tblcomp2's caption component comes from the caption-fine-tuned
        # BioBERT, exactly as in Figure 5(a).
        embedder.caption_encoder = biobert(name, include_captions=True)
        slices = {
            "all": list(range(len(tables))),
            "HMD+VMD": [i for i, t in enumerate(tables) if t.has_vmd],
            "relational": [i for i, t in enumerate(tables) if t.is_relational],
        }
        for variant in VARIANTS:
            for slice_name, ids in slices.items():
                if len(ids) < 4:
                    continue
                result = table_clustering(
                    tables, lambda t: embedder.table_embedding(t, variant=variant),
                    tables=ids,
                )
                out.add(f"TabBiN-{variant}", f"{name} ({slice_name})",
                        fmt(result))
    return out


def test_table11_tc_composite_embeddings(benchmark):
    for name in DATASETS:
        tabbin(name)
        biobert(name, include_captions=True)
    table = benchmark.pedantic(run_composite_tc, rounds=1, iterations=1)
    table.show()
    table.save(RESULTS_DIR / "table11_tc_composite.md")

    def map_of(row, col):
        return float(table.get(row, col).split("/")[0])

    # Shape: the composite variants do not lose to the bare row model.
    for name in DATASETS:
        assert map_of("TabBiN-tblcomp2", f"{name} (all)") >= \
            map_of("TabBiN-row", f"{name} (all)") - 0.1
