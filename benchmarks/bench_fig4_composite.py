"""Figure 4: composite embedding structure for numbers and ranges.

Regenerates the CE layouts of the paper's examples — "OS = 20.3 months"
(attribute ⊕ value ⊕ unit) and "Age = 20-30 year" (attribute ⊕ unit ⊕
start ⊕ end) — and benchmarks CE construction.
"""

import numpy as np

from repro.core import numeric_composite, range_composite
from repro.eval import ResultsTable
from repro.retrieval import cosine_similarity

from .common import RESULTS_DIR, tabbin


def render_structures(embedder):
    H = embedder.hidden
    out = ResultsTable(
        "Figure 4: Composite Embedding structure",
        columns=["blocks", "width"],
    )
    out.add("(a) OS = 20.3 months", "blocks",
            "E('OS') ⊕ E('20.3') ⊕ E('months')")
    out.add("(a) OS = 20.3 months", "width", f"3H = {3 * H}")
    out.add("(b) Age = 20-30 year", "blocks",
            "E('Age') ⊕ E('year') ⊕ E('20') ⊕ E('30')")
    out.add("(b) Age = 20-30 year", "width", f"4H = {4 * H}")
    return out


def test_fig4_composite_embeddings(benchmark):
    embedder = tabbin("cancerkg")
    rendering = render_structures(embedder)
    rendering.show()
    rendering.save(RESULTS_DIR / "fig4_composite.md")

    def build():
        a = numeric_composite(embedder, "OS", 20.3, "months")
        b = range_composite(embedder, "Age", 20, 30, "year")
        return a, b

    a, b = benchmark(build)
    assert a.shape == (3 * embedder.hidden,)
    assert b.shape == (4 * embedder.hidden,)
    # The CE keeps the unit as a dedicated block: changing the unit
    # changes the vector, and same-attribute CEs stay highly similar.
    same_unit = numeric_composite(embedder, "OS", 21.0, "months")
    other_unit = numeric_composite(embedder, "OS", 20.3, "mg")
    assert not np.allclose(a, other_unit)
    assert cosine_similarity(a, same_unit) > 0.5
    # Different attributes diverge more than different values.
    other_attr = numeric_composite(embedder, "enrollment", 20.3, "months")
    assert cosine_similarity(a, same_unit) > cosine_similarity(a, other_attr)
    assert np.isfinite(a).all() and np.isfinite(b).all()
