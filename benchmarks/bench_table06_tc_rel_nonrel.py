"""Table 6: TC — relational vs non-relational tables, heterogeneous data.

Paper shape: TabBiN wins on non-relational slices (its target class);
on relational tables TUTA is on par (the paper reports TUTA ahead by an
insignificant delta there).
"""

from repro.baselines import make_table_embedder
from repro.eval import ResultsTable, table_clustering

from .common import RESULTS_DIR, biobert, corpus, fmt, tabbin, tuta, word2vec

DATASETS = ("webtables", "cancerkg")


def embedders_for(name):
    return {
        "TabBiN": tabbin(name).table_embedding,
        "TUTA": tuta(name).embed_table,
        "BioBERT": make_table_embedder(biobert(name)),
        "Word2vec": make_table_embedder(word2vec(name)),
    }


def run_tc():
    columns = [f"{d} ({s})" for d in DATASETS
               for s in ("relational", "non-relational", "all")]
    out = ResultsTable(
        "Table 6: MAP/MRR for TC - Relational vs Non-relational",
        columns=columns,
    )
    for name in DATASETS:
        tables = list(corpus(name))
        slices = {
            "relational": [i for i, t in enumerate(tables) if t.is_relational],
            "non-relational": [i for i, t in enumerate(tables)
                               if not t.is_relational],
            "all": list(range(len(tables))),
        }
        for model_name, embed in embedders_for(name).items():
            for slice_name, ids in slices.items():
                if len(ids) < 4:
                    continue
                result = table_clustering(tables, embed, tables=ids)
                out.add(model_name, f"{name} ({slice_name})", fmt(result))
    return out


def test_table06_tc_relational_vs_nonrelational(benchmark):
    for name in DATASETS:
        embedders_for(name)
    table = benchmark.pedantic(run_tc, rounds=1, iterations=1)
    table.show()
    table.save(RESULTS_DIR / "table06_tc_rel_nonrel.md")

    def map_of(row, col):
        return float(table.get(row, col).split("/")[0])

    # Shape: on the BiN-rich corpus TabBiN holds its own against the
    # text baselines on the non-relational slice.
    assert map_of("TabBiN", "cancerkg (non-relational)") >= \
        map_of("Word2vec", "cancerkg (non-relational)") - 0.15
