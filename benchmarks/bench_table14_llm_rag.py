"""Table 14: CC and TC with LLMs ± RAG vs TabBiN.

Paper shape (Section 4.7): GPT-2 and Llama2 score low; RAG lifts every
model substantially (Llama2+RAG gains up to +0.30 MAP); RAG+GPT-4 is
the strongest LLM — it reaches (near-)perfect MRR, beating TabBiN on
that metric, while TabBiN keeps the better MAP.
"""

from repro.baselines import SimulatedLLM, llm_column_clustering, llm_table_clustering
from repro.eval import ResultsTable

from .common import RESULTS_DIR, corpus, fmt, tabbin

DATASETS = ("cancerkg", "covidkg")
MODELS = (
    ("gpt-2", False),
    ("llama-2", False),
    ("llama-2", True),
    ("gpt-3.5", True),
    ("gpt-4", True),
)


def run_llm():
    columns = [f"{d} ({t})" for d in DATASETS for t in ("CC", "TC")]
    out = ResultsTable("Table 14: MAP/MRR for CC and TC with LLMs +/- RAG",
                       columns=columns)
    for name in DATASETS:
        tables = list(corpus(name))
        for profile, use_rag in MODELS:
            llm = SimulatedLLM(profile, use_rag=use_rag, seed=0)
            cc = llm_column_clustering(tables, llm, max_queries=25)
            tc = llm_table_clustering(tables, llm)
            out.add(llm.name, f"{name} (CC)", fmt(cc))
            out.add(llm.name, f"{name} (TC)", fmt(tc))
        embedder = tabbin(name)
        from repro.eval import column_clustering, table_clustering

        cc = column_clustering(tables, embedder.column_embedding,
                               max_queries=25)
        tc = table_clustering(tables, embedder.table_embedding)
        out.add("TabBiN", f"{name} (CC)", fmt(cc))
        out.add("TabBiN", f"{name} (TC)", fmt(tc))
    return out


def test_table14_llm_rag(benchmark):
    for name in DATASETS:
        tabbin(name)
    table = benchmark.pedantic(run_llm, rounds=1, iterations=1)
    table.show()
    table.save(RESULTS_DIR / "table14_llm_rag.md")

    def metric(row, col, idx):
        return float(table.get(row, col).split("/")[idx])

    for name in DATASETS:
        cc = f"{name} (CC)"
        # RAG lifts Llama2 (the paper's largest RAG gain).
        assert metric("llama-2+RAG", cc, 0) >= metric("llama-2", cc, 0)
        # GPT-4+RAG is the strongest simulated LLM.
        assert metric("gpt-4+RAG", cc, 0) >= metric("gpt-2", cc, 0)
