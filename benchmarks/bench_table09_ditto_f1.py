"""Table 9: F1 for entity classification — TabBiN head vs DITTO.

Paper shape: the two are within ~2% F1 of each other on the ER-Magellan
benchmarks and on the paper's own corpora (TabBiN slightly ahead on
Amazon-Google, DITTO slightly ahead elsewhere).
"""

from repro.baselines import DittoMatcher
from repro.core.classifier import TabBiNMatcher
from repro.datasets import entity_pairs_from_corpus, generate_em_dataset
from repro.eval import ResultsTable

from .common import RESULTS_DIR, corpus, tabbin

EM_BENCHMARKS = ("amazon-google", "abt-buy")
OUR_DATASETS = ("cancerkg", "covidkg")


def split(pairs, frac=0.7):
    cut = int(len(pairs) * frac)
    return pairs[:cut], pairs[cut:]


def run_f1():
    out = ResultsTable(
        "Table 9: F1 (%) for Entity Classification vs DITTO",
        columns=list(EM_BENCHMARKS) + list(OUR_DATASETS),
    )
    for name in EM_BENCHMARKS:
        train, test = split(generate_em_dataset(name, n_pairs=60, seed=0))
        ditto = DittoMatcher.build(train, hidden=36, vocab_size=500, seed=0)
        ditto.fit(train, epochs=10, batch_size=8, lr=1e-3)
        out.add("DITTO", name, f"{ditto.evaluate_f1(test) * 100:.1f}")
        matcher = TabBiNMatcher(tabbin("webtables"), ensemble=3, seed=0)
        matcher.fit(train, epochs=80)
        out.add("TabBiN", name, f"{matcher.evaluate_f1(test) * 100:.1f}")
    for name in OUR_DATASETS:
        pairs = entity_pairs_from_corpus(list(corpus(name)), n_pairs=60, seed=0)
        train, test = split(pairs)
        ditto = DittoMatcher.build(train, hidden=36, vocab_size=500, seed=0)
        ditto.fit(train, epochs=10, batch_size=8, lr=1e-3)
        out.add("DITTO", name, f"{ditto.evaluate_f1(test) * 100:.1f}")
        matcher = TabBiNMatcher(tabbin(name), ensemble=3, seed=0)
        matcher.fit(train, epochs=80)
        out.add("TabBiN", name, f"{matcher.evaluate_f1(test) * 100:.1f}")
    return out


def test_table09_entity_matching_f1(benchmark):
    tabbin("webtables")
    for name in OUR_DATASETS:
        tabbin(name)
    table = benchmark.pedantic(run_f1, rounds=1, iterations=1)
    table.show()
    table.save(RESULTS_DIR / "table09_ditto_f1.md")
    # Shape: both matchers clearly beat chance everywhere.
    for col in EM_BENCHMARKS + OUR_DATASETS:
        assert float(table.get("DITTO", col)) > 50.0
        assert float(table.get("TabBiN", col)) > 50.0
