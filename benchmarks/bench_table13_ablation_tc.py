"""Table 13: ablation study on Table Clustering.

Same four ablations as Table 12, scored on TC slices.  Paper shape:
removing the visibility matrix costs up to 0.34 MAP; coordinates and
units/nesting matter most on nested/numerical tables.
"""

from repro.eval import ResultsTable, table_clustering

from .common import RESULTS_DIR, corpus, fmt, tabbin

DATASET = "cancerkg"
ABLATIONS = (
    ("TabBiN (full)", None),
    ("TabBiN_1 (-visibility)", "visibility"),
    ("TabBiN_2 (-type)", "type"),
    ("TabBiN_3 (-units/nesting)", "units_nesting"),
    ("TabBiN_4 (-coords)", "coords"),
)


def run_ablation_tc():
    tables = list(corpus(DATASET))
    slices = {
        "all": list(range(len(tables))),
        "non-relational": [i for i, t in enumerate(tables)
                           if not t.is_relational],
    }
    out = ResultsTable(
        "Table 13: MAP/MRR for Ablation Study on TC (CancerKG)",
        columns=list(slices),
    )
    for label, ablation in ABLATIONS:
        embedder = tabbin(DATASET, ablation=ablation)
        for slice_name, ids in slices.items():
            result = table_clustering(tables, embedder.table_embedding,
                                      tables=ids)
            out.add(label, slice_name, fmt(result))
    return out


def test_table13_ablation_tc(benchmark):
    for _label, ablation in ABLATIONS:
        tabbin(DATASET, ablation=ablation)   # shared with Table 12's cache
    table = benchmark.pedantic(run_ablation_tc, rounds=1, iterations=1)
    table.show()
    table.save(RESULTS_DIR / "table13_ablation_tc.md")

    def map_of(row, col):
        return float(table.get(row, col).split("/")[0])

    best_ablated = max(map_of(label, "all") for label, a in ABLATIONS if a)
    assert map_of("TabBiN (full)", "all") >= best_ablated - 0.15
