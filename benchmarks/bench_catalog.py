"""Catalog serving: routing overhead and eviction-cap trade-offs.

Two questions, each answered with served rankings asserted identical
to offline ``query_many`` before any timing is trusted:

1. **What does routing cost?**  The same corpus is served twice — once
   as a bare index (the pre-catalog server: no catalog lookup on the
   hot path) and once as a single-entry catalog answering name-free
   requests — under the same client hammer.  The routed build budgets
   <5% QPS overhead; ``overhead_pct`` in the report is the measured
   number.

2. **What does an eviction cap cost?**  A two-entry catalog serves a
   strictly alternating two-index workload with ``max_open=1`` (every
   switch is an evict + mmap reopen) and ``max_open=2`` (both stay
   resident).  The gap is the reopen tax; the per-index eviction
   counters in ``/stats`` prove the churn actually happened.

Run directly (``PYTHONPATH=src python benchmarks/bench_catalog.py``) or
via the smoke test in ``tests/catalog/test_catalog_bench_smoke.py``.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from pathlib import Path

import numpy as np

from repro.catalog import Catalog, CatalogEntry
from repro.eval import ResultsTable, results_dir
from repro.index import VectorIndex, open_index, save_index
from repro.serve import ServerThread


def _hammer(port: int, jobs: list[tuple[str | None, int]],
            queries: dict[str | None, np.ndarray], k: int, n_clients: int,
            want: dict) -> float:
    """Fire ``jobs`` — (index name or None, query row) pairs — from
    ``n_clients`` keep-alive client threads; assert every response
    equals its entry's offline ranking; return elapsed wall seconds."""
    slices = [jobs[c::n_clients] for c in range(n_clients)]
    failures: list[str] = []

    def client(rows: list[tuple[str | None, int]]) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            for name, q in rows:
                payload = {"vector": queries[name][q].tolist(), "k": k}
                if name is not None:
                    payload["index"] = name
                conn.request("POST", "/query",
                             body=json.dumps(payload).encode(),
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                parsed = json.loads(response.read())
                if response.status != 200:
                    failures.append(f"{name}/{q}: status {response.status}")
                    continue
                got = [(hit["key"], hit["score"])
                       for hit in parsed["hits"]]
                if got != want[name][q]:
                    failures.append(f"{name}/{q}: ranking diverged")
        finally:
            conn.close()

    threads = [threading.Thread(target=client, args=(rows,))
               for rows in slices if rows]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if failures:
        raise AssertionError(
            f"served rankings diverged from offline query_many — the "
            f"server is broken, timings are meaningless: {failures[:3]}")
    return elapsed


def _build_entry(root: Path, name: str, n_vectors: int, dim: int,
                 seed: int) -> Path:
    rng = np.random.default_rng(seed)
    index = VectorIndex(dim=dim, seed=seed)
    index.add_batch([f"{name}-{i:06d}" for i in range(n_vectors)],
                    rng.standard_normal((n_vectors, dim)))
    path = root / f"{name}.npz"
    save_index(index, path)
    return path


def run(n_vectors: int = 20000, dim: int = 64, n_queries: int = 240,
        k: int = 10, n_clients: int = 8, max_wait_ms: float = 1.0,
        seed: int = 0, workdir: str | Path | None = None) -> dict:
    import tempfile

    rng = np.random.default_rng(seed)
    records = []

    with tempfile.TemporaryDirectory() as scratch:
        root = Path(workdir) if workdir is not None else Path(scratch)
        catalog = Catalog(root=root)
        paths = {}
        for position, name in enumerate(("alpha", "beta")):
            paths[name] = _build_entry(root, name, n_vectors, dim,
                                       seed + position)
            catalog.add(CatalogEntry(name=name, path=paths[name].name,
                                     kind="vector",
                                     default=name == "alpha"))
        catalog.save()
        queries = rng.standard_normal((n_queries, dim))
        want = {}
        for name, path in paths.items():
            offline = open_index(path)
            want[name] = [[(hit.key, hit.score) for hit in hits]
                          for hits in offline.query_many(queries, k=k)]
        want[None] = want["alpha"]   # name-free requests hit the default
        query_map = {None: queries, "alpha": queries, "beta": queries}
        knobs = dict(max_batch=64, max_wait_ms=max_wait_ms)

        # --- 1. Routing overhead: bare index vs single-entry catalog.
        nameless = [(None, q) for q in range(n_queries)]
        with ServerThread(open_index(paths["alpha"], mmap=True),
                          **knobs) as handle:
            direct_s = _hammer(handle.port, nameless, query_map, k,
                               n_clients, want)
        with ServerThread(Catalog.load(root), **knobs) as handle:
            routed_s = _hammer(handle.port, nameless, query_map, k,
                               n_clients, want)
        direct_qps = n_queries / direct_s
        routed_qps = n_queries / routed_s
        overhead_pct = 100.0 * (routed_s - direct_s) / direct_s
        records.append({"op": "route-overhead", "mode": "direct",
                        "n": n_queries, "seconds": direct_s,
                        "qps": direct_qps})
        records.append({"op": "route-overhead", "mode": "routed",
                        "n": n_queries, "seconds": routed_s,
                        "qps": routed_qps, "overhead_pct": overhead_pct,
                        "budget_pct": 5.0})

        # --- 2. Alternating two-index workload under eviction caps.
        alternating = [(name, q) for q in range(n_queries)
                       for name in ("alpha", "beta")]
        for max_open in (1, 2):
            with ServerThread(Catalog.load(root), max_open=max_open,
                              **knobs) as handle:
                seconds = _hammer(handle.port, alternating, query_map, k,
                                  n_clients, want)
                snapshot = handle.server.stats.snapshot()
                per_index = {
                    slot.name: slot.stats.snapshot()
                    for slot in handle.server.handle}
            evictions = sum(section["evictions"]
                            for section in per_index.values())
            opens = sum(section["opens"] for section in per_index.values())
            records.append({
                "op": "alternating", "mode": f"max_open={max_open}",
                "n": len(alternating), "seconds": seconds,
                "qps": len(alternating) / seconds,
                "opens": opens, "evictions": evictions,
                "p99_ms": snapshot["latency_ms"]["p99"],
            })

    return {
        "benchmark": "catalog",
        "config": {"n_vectors": n_vectors, "dim": dim,
                   "n_queries": n_queries, "k": k, "n_clients": n_clients,
                   "max_wait_ms": max_wait_ms, "seed": seed},
        "results": records,
    }


def render(report: dict) -> ResultsTable:
    config = report["config"]
    out = ResultsTable(
        f"Catalog serving: 2×{config['n_vectors']} vectors (dim "
        f"{config['dim']}), {config['n_queries']} queries @ "
        f"k={config['k']}, {config['n_clients']} clients",
        columns=["seconds", "qps", "overhead %", "opens", "evictions"])
    for rec in report["results"]:
        row = f"{rec['op']} {rec['mode']}"
        out.add(row, "seconds", f"{rec['seconds']:.3f}")
        out.add(row, "qps", f"{rec['qps']:.1f}")
        if rec.get("overhead_pct") is not None:
            out.add(row, "overhead %",
                    f"{rec['overhead_pct']:+.1f} (budget {rec['budget_pct']:g})")
        if rec.get("opens") is not None:
            out.add(row, "opens", rec["opens"])
            out.add(row, "evictions", rec["evictions"])
    return out


def main() -> int:
    report = run()
    render(report).show()
    path = results_dir() / "BENCH_catalog.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"Wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
