"""Figure 5: composite embeddings for TC (a) and CC (b).

Regenerates the task-level CE compositions — tblcomp2 = row-model data
mean ⊕ HMD mean ⊕ VMD mean ⊕ caption embedding; colcomp = HMD attribute
embedding ⊕ column-model data mean — and benchmarks their construction.
"""

from repro.eval import ResultsTable
from repro.tables import figure1_table

from .common import RESULTS_DIR, biobert, tabbin


def render(embedder):
    H = embedder.hidden
    out = ResultsTable("Figure 5: CE for (a) Table Clustering and (b) Column "
                       "Clustering", columns=["composition", "width"])
    out.add("(a) TC: tblcomp2", "composition",
            "mean E_d (row model) ⊕ mean E_c (HMD model) ⊕ "
            "mean E_r (VMD model) ⊕ E_caption (BioBERT)")
    out.add("(a) TC: tblcomp2", "width", f"4H = {4 * H}")
    out.add("(b) CC: colcomp", "composition",
            "E_cj (HMD model) ⊕ mean E_d over column (column model)")
    out.add("(b) CC: colcomp", "width", f"2H = {2 * H}")
    return out


def test_fig5_task_composites(benchmark):
    embedder = tabbin("cancerkg")
    embedder.caption_encoder = biobert("cancerkg", include_captions=True)
    rendering = render(embedder)
    rendering.show()
    rendering.save(RESULTS_DIR / "fig5_ce_tasks.md")
    table = figure1_table()

    def build():
        return (embedder.table_embedding(table, variant="tblcomp2"),
                embedder.column_embedding(table, 1))

    tbl, col = benchmark(build)
    assert tbl.shape == (4 * embedder.hidden,)
    assert col.shape == (2 * embedder.hidden,)
