"""Quantized int8 tier: memory ratio, shortlist-kernel speedup, recall.

One synthetic corpus of seeded gaussian vectors (with duplicate rows,
so exact ties exist), indexed twice — fp-only and with the int8
sidecar.  Before any timing, the harness *gates on equivalence*: the
quantized index at the default overfetch/margin must reproduce the
unquantized rankings exactly, or the run aborts (timings of a broken
tier are meaningless).  Then it reports:

- ``resident bytes``: the int8 sidecar (q8 + scales + norms) vs the
  fp64 vector matrix — the candidate-scoring working set each path
  touches per query.  The acceptance bar is <= 0.35x; symmetric int8
  over fp64 lands near 1/8 + 1/dim.
- ``shortlist kernel``: int32-accumulated candidate scoring vs the
  exact fp einsum over the same candidate set, timed at kernel level.
- ``end to end``: ``query_many`` with and without the quantized tier.
- ``recall@shortlist``: at margin 0 (so the overfetch factor alone is
  measured), the fraction of queries whose tie-inclusive shortlist
  contains every true top-k candidate, swept over overfetch factors.

Results land in ``results/BENCH_quant.json`` in the shared
``BENCH_*.json`` tracking shape.

Run directly (``PYTHONPATH=src python benchmarks/bench_quantized.py``)
or via the smoke test in ``tests/index/test_bench_smoke.py``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.eval import ResultsTable, results_dir
from repro.index import VectorIndex
from repro.retrieval import (
    approx_scores,
    quantize_rows,
    shortlist_size,
    tie_inclusive_cut,
)

OVERFETCHES = (1, 2, 4, 8)


def _timed(fn, repeats: int = 3):
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def _rankings(index, queries, k):
    return [[(h.key, round(h.score, 9)) for h in hits]
            for hits in index.query_many(queries, k=k)]


def run(n_vectors: int = 4000, dim: int = 64, n_queries: int = 50,
        k: int = 10, overfetches: tuple[int, ...] = OVERFETCHES,
        seed: int = 0, repeats: int = 3) -> dict:
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(((n_vectors + 2) // 3, dim))
    vectors = np.repeat(base, 3, axis=0)[:n_vectors]   # dense exact ties
    queries = rng.standard_normal((n_queries, dim))
    keys = [f"k{i:06d}" for i in range(n_vectors)]
    records = []

    plain = VectorIndex(dim=dim, seed=seed)
    plain.add_batch(keys, vectors)
    quant = VectorIndex(dim=dim, seed=seed)
    quant.add_batch(keys, vectors)
    quant.quantize()
    quant.enable_quantized()

    # --- equivalence gate: no timing until rankings proven identical.
    want = _rankings(plain, queries, k)
    got = _rankings(quant, queries, k)
    if got != want:
        raise AssertionError(
            "quantized rankings diverged from the unquantized index at "
            "the default overfetch/margin — the exact-rerank contract is "
            "broken, timings are meaningless")

    # --- resident bytes: candidate-scoring working set per path.
    q8, scales, norms = quant.lsh.quantized_arrays()
    fp_bytes = vectors.astype(float).nbytes
    int8_bytes = q8.nbytes + scales.nbytes + norms.nbytes
    ratio = int8_bytes / fp_bytes
    records.append({"op": "resident_bytes", "mode": "fp64",
                    "bytes": fp_bytes, "ratio": 1.0})
    records.append({"op": "resident_bytes", "mode": "int8 sidecar",
                    "bytes": int8_bytes, "ratio": ratio})
    if ratio > 0.35:
        raise AssertionError(
            f"int8 sidecar is {ratio:.3f}x the fp64 matrix — above the "
            f"0.35x bar the quantized tier promises")

    # --- shortlist kernel vs exact fp scoring over all candidates.
    queries_q8, _, _ = quantize_rows(queries)
    matrix = vectors.astype(float)
    norms_fp = np.sqrt(np.einsum("nd,nd->n", matrix, matrix))

    def int8_kernel():
        return approx_scores(q8, scales, norms, queries_q8)

    def fp_kernel():
        return np.einsum("nd,qd->nq", matrix, queries) / norms_fp[:, None]

    seconds_int8, _ = _timed(int8_kernel, repeats)
    seconds_fp, _ = _timed(fp_kernel, repeats)
    records.append({"op": "score_kernel", "mode": "int8",
                    "n": n_queries, "seconds": seconds_int8,
                    "speedup": seconds_fp / seconds_int8
                    if seconds_int8 else None})
    records.append({"op": "score_kernel", "mode": "fp64 einsum",
                    "n": n_queries, "seconds": seconds_fp, "speedup": 1.0})

    # --- end-to-end query_many, both paths.
    seconds, _ = _timed(lambda: plain.query_many(queries, k=k), repeats)
    records.append({"op": "query_many", "mode": "unquantized",
                    "n": n_queries, "seconds": seconds,
                    "per_sec": n_queries / seconds if seconds else None})
    seconds, _ = _timed(lambda: quant.query_many(queries, k=k), repeats)
    records.append({"op": "query_many", "mode": "quantized",
                    "n": n_queries, "seconds": seconds,
                    "per_sec": n_queries / seconds if seconds else None})

    # --- recall@shortlist vs overfetch, margin pinned to 0.
    exact = np.einsum("nd,qd->nq", matrix, queries) / norms_fp[:, None]
    approx = approx_scores(q8, scales, norms, queries_q8)
    for overfetch in overfetches:
        m = shortlist_size(k, overfetch=overfetch, margin=0)
        full_cover = 0
        kept_total = 0
        for q in range(n_queries):
            keep = tie_inclusive_cut(approx[:, q], m)
            true_topk = np.argsort(-exact[:, q], kind="stable")[:k]
            hits = int(keep[true_topk].sum())
            kept_total += hits
            full_cover += int(hits == k)
        records.append({
            "op": "recall", "mode": f"overfetch={overfetch}",
            "shortlist": m,
            "recall_at_shortlist": kept_total / (k * n_queries),
            "queries_fully_covered": full_cover / n_queries,
        })

    return {
        "benchmark": "quantized",
        "config": {"n_vectors": n_vectors, "dim": dim,
                   "n_queries": n_queries, "k": k,
                   "overfetches": list(overfetches), "seed": seed,
                   "repeats": repeats},
        "results": records,
    }


def render(report: dict) -> ResultsTable:
    config = report["config"]
    out = ResultsTable(
        f"Quantized tier: {config['n_vectors']} vectors (dim "
        f"{config['dim']}), {config['n_queries']} queries @ "
        f"k={config['k']}",
        columns=["value", "seconds", "note"])
    for record in report["results"]:
        row = f"{record['op']} {record['mode']}"
        if record["op"] == "resident_bytes":
            out.add(row, "value", record["bytes"])
            out.add(row, "note", f"{record['ratio']:.3f}x")
        elif record["op"] == "recall":
            out.add(row, "value", f"{record['recall_at_shortlist']:.4f}")
            out.add(row, "note",
                    f"m={record['shortlist']} full-cover "
                    f"{record['queries_fully_covered']:.2f}")
        else:
            out.add(row, "seconds", f"{record['seconds']:.4f}")
            if record.get("speedup") is not None:
                out.add(row, "note", f"{record['speedup']:.1f}x")
            elif record.get("per_sec") is not None:
                out.add(row, "note", f"{record['per_sec']:.1f}/s")
    return out


def main() -> int:
    report = run()
    render(report).show()
    path = results_dir() / "BENCH_quant.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"Wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
