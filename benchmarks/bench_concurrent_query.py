"""Concurrent query engine throughput: batched + threaded vs. serial.

One synthetic corpus of seeded gaussian vectors is indexed as a single
:class:`~repro.index.index.VectorIndex` and as
:class:`~repro.index.sharded.ShardedIndex` layouts at each configured
shard count.  The same query matrix then runs through every mode:

- ``serial``        — one :meth:`query_vector` call per query (the
  pre-concurrency baseline),
- ``query_many``    — the batched path (band keys from one matmul per
  band, scores from one similarity GEMM per shard),
- ``jobs=N``        — the batched path with the per-shard fan-out
  spread over N threads (sharded layouts only).

Every mode must return rankings identical to the serial baseline (the
equivalence is asserted, not just measured), so the QPS numbers isolate
pure engine overhead/wins.  Results are written to
``results/BENCH_concurrent_query.json`` in the shared ``BENCH_*.json``
tracking shape.

Run directly
(``PYTHONPATH=src python benchmarks/bench_concurrent_query.py``) or via
the smoke test in ``tests/index/test_bench_smoke.py``.

NB: thread fan-out only *wins* with real parallel hardware and shard
GEMMs big enough to amortize pool dispatch; on a single-core CI box the
``jobs=N`` rows measure overhead, which is still worth tracking.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.eval import ResultsTable, results_dir
from repro.index import IndexSpec, ShardedIndex, VectorIndex

SHARD_COUNTS = (2, 5)
JOBS_COUNTS = (2, 4)


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def _ranked(hits_per_query) -> list[list[tuple[str, float]]]:
    return [[(hit.key, round(hit.score, 9)) for hit in hits]
            for hits in hits_per_query]


def run(n_vectors: int = 5000, dim: int = 64, n_queries: int = 200,
        k: int = 10, shard_counts: tuple[int, ...] = SHARD_COUNTS,
        jobs_counts: tuple[int, ...] = JOBS_COUNTS,
        seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n_vectors, dim))
    queries = rng.standard_normal((n_queries, dim))
    keys = [f"k{i:06d}" for i in range(n_vectors)]
    records = []

    def record(mode: str, layout: str, seconds: float, got=None,
               want=None) -> None:
        if want is not None and got != want:
            raise AssertionError(
                f"{layout}/{mode} rankings diverged from the serial "
                f"baseline — the concurrent engine is broken, timings are "
                f"meaningless")
        records.append({"op": "query", "mode": mode, "layout": layout,
                        "n": n_queries, "seconds": seconds,
                        "qps": n_queries / seconds if seconds else None})

    single = VectorIndex(dim=dim, seed=seed)
    single.add_batch(keys, vectors)

    seconds, baseline = _timed(
        lambda: [single.query_vector(q, k=k) for q in queries])
    want = _ranked(baseline)
    record("serial", "single", seconds)

    seconds, batched = _timed(lambda: single.query_many(queries, k=k))
    record("query_many", "single", seconds, _ranked(batched), want)

    for n_shards in shard_counts:
        layout = f"shards={n_shards}"
        sharded = ShardedIndex.create(
            IndexSpec(kind="vector", dim=dim, seed=seed), n_shards)
        sharded.add_batch(keys, vectors)

        seconds, serial = _timed(
            lambda: [sharded.query_vector(q, k=k) for q in queries])
        record("serial", layout, seconds, _ranked(serial), want)

        seconds, batched = _timed(lambda: sharded.query_many(queries, k=k))
        record("query_many", layout, seconds, _ranked(batched), want)

        for jobs in jobs_counts:
            seconds, fanned = _timed(
                lambda: sharded.query_many(queries, k=k, jobs=jobs))
            record(f"query_many jobs={jobs}", layout, seconds,
                   _ranked(fanned), want)

    return {
        "benchmark": "concurrent_query",
        "config": {"n_vectors": n_vectors, "dim": dim,
                   "n_queries": n_queries, "k": k,
                   "shard_counts": list(shard_counts),
                   "jobs_counts": list(jobs_counts), "seed": seed},
        "results": records,
    }


def render(report: dict) -> ResultsTable:
    config = report["config"]
    out = ResultsTable(
        f"Concurrent query engine: {config['n_vectors']} vectors (dim "
        f"{config['dim']}), {config['n_queries']} queries @ k={config['k']}",
        columns=["n", "seconds", "qps"])
    for rec in report["results"]:
        row = f"{rec['layout']} {rec['mode']}"
        out.add(row, "n", rec["n"])
        out.add(row, "seconds", f"{rec['seconds']:.3f}")
        out.add(row, "qps", f"{rec['qps']:.1f}" if rec["qps"] else "-")
    return out


def main() -> int:
    report = run()
    render(report).show()
    path = results_dir() / "BENCH_concurrent_query.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"Wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
