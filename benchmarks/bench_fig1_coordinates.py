"""Figure 1: bi-dimensional coordinates of the running example.

Regenerates the coordinate annotations of the paper's colorectal-cancer
table — hierarchical paths for every data cell and for cells of the
nested tables — and benchmarks coordinate derivation over a corpus.
"""

from repro.datasets import load_dataset
from repro.eval import ResultsTable
from repro.tables import figure1_table

from .common import RESULTS_DIR


def render_coordinates():
    table = figure1_table()
    out = ResultsTable(
        "Figure 1: Bi-dimensional coordinates (colorectal-cancer example)",
        columns=["horizontal path", "vertical path", "coords"],
    )
    for i in range(table.n_rows):
        for j in range(table.n_cols):
            cell = table.data[i][j]
            key = f"({i},{j}) {cell.text[:24]}"
            out.add(key, "horizontal path", table.hmd_tree.qualified_label(j))
            out.add(key, "vertical path", table.vmd_tree.qualified_label(i))
            out.add(key, "coords", cell.coords.render())
    # One nested cell, with in-nest coordinates starting at 1.
    nested = table.data[0][2].nested_table
    for j in range(nested.n_cols):
        label = nested.column_label(j)
        out.add(f"nested hmd {label}", "horizontal path",
                f"... → Other Efficacy → {label}")
        out.add(f"nested hmd {label}", "vertical path",
                "Patient Cohort → Previously Untreated")
        out.add(f"nested hmd {label}", "coords", f"@(1, {j + 1})")
    return out


def coordinate_sweep():
    """Derive coordinates for every cell of a corpus (the timed body)."""
    tables = load_dataset("cancerkg", n_tables=30, seed=0)
    total = 0
    for t in tables:
        for cell in t.all_cells():
            total += sum(cell.coords.embedding_indexes(256))
    return total


def test_fig1_coordinates(benchmark):
    table = render_coordinates()
    table.show()
    table.save(RESULTS_DIR / "fig1_coordinates.md")
    checksum = benchmark(coordinate_sweep)
    assert checksum > 0
    # The nested example of the paper: nested coords start at index 1.
    assert "@(1, 1)" in table.get("nested hmd OS", "coords")
