"""Distributed serving: scatter-gather coordinator vs in-process index.

One tie-dense corpus is saved as a sharded layout, split into
per-server slices with :func:`~repro.cluster.split_layout`, and served
three ways while client threads hammer ``POST /query``:

- ``in-process`` — the local :class:`~repro.index.ShardedIndex` behind
  a :class:`~repro.serve.ServerThread` (the PR-5 path; the baseline);
- ``cluster(servers=N)`` for N in ``server_counts`` — the same shards
  behind N :class:`~repro.cluster.ShardServerThread` members and one
  :class:`~repro.cluster.RemoteShardedIndex` coordinator, served by the
  identical retrieval stack.

Before a single timing is recorded, every coordinator's rankings are
asserted **bit-identical** to the local index's ``query_many`` over
the full query set — the numbers compare correct clusters only, and a
wrong merge fails the run rather than skewing it.

The second phase measures the backpressure knee: the coordinator is
re-served with a small ``--max-backlog`` and hit with increasingly
oversized request waves; the table reports, per wave, how many
requests landed 200 vs were shed 429 — the point the valve starts
shedding is the knee.  Shed requests carry ``Retry-After``, so a
well-behaved client backs off instead of piling on.

Run directly (``PYTHONPATH=src python benchmarks/bench_cluster.py``,
→ ``results/BENCH_cluster.json``) or via the smoke test in
``tests/cluster/test_bench_cluster_smoke.py``.

NB: on one box the cluster pays loopback-HTTP + JSON costs for zero
real parallelism, so in-process QPS should win here; the numbers are
the honest cost of distribution, and the fan-out only pays off once
shard servers sit on their own CPUs.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from pathlib import Path

import numpy as np

from repro.cluster import ClusterHarness, split_layout
from repro.eval import ResultsTable, results_dir
from repro.index import IndexSpec, ShardedIndex, open_index
from repro.serve import ServerThread

SERVER_COUNTS = (1, 2, 5)
N_SHARDS = 5


def _save_sharded(root: Path, keys, vectors, n_shards: int, seed: int):
    sharded = ShardedIndex.create(
        IndexSpec(kind="vector", dim=vectors.shape[1], seed=seed), n_shards)
    sharded.add_batch(keys, vectors)
    return sharded.save(root / f"sharded-{n_shards}")


def _hammer(port: int, queries: np.ndarray, k: int, n_clients: int,
            want: list) -> float:
    """Fire every query as its own request from keep-alive client
    threads; assert each response equals the offline ranking; return
    elapsed wall seconds."""
    slices = [list(range(c, len(queries), n_clients))
              for c in range(n_clients)]
    failures: list[str] = []

    def client(rows: list[int]) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            for q in rows:
                body = json.dumps({"vector": queries[q].tolist(),
                                   "k": k}).encode()
                conn.request("POST", "/query", body=body,
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                payload = json.loads(response.read())
                if response.status != 200:
                    failures.append(f"query {q}: status {response.status}")
                    continue
                got = [(hit["key"], hit["score"])
                       for hit in payload["hits"]]
                if got != want[q]:
                    failures.append(f"query {q}: served ranking diverged")
        finally:
            conn.close()

    threads = [threading.Thread(target=client, args=(rows,))
               for rows in slices if rows]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if failures:
        raise AssertionError(
            f"served rankings diverged from offline query_many — the "
            f"cluster is broken, timings are meaningless: {failures[:3]}")
    return elapsed


def _overload_wave(port: int, queries: np.ndarray, k: int,
                   n_clients: int, rows_per_request: int) -> dict:
    """One overload wave: every client fires batch requests of
    ``rows_per_request`` rows as fast as it can for one pass over the
    query set; returns 200/429 counts (any other status raises)."""
    counts = {200: 0, 429: 0}
    lock = threading.Lock()
    bad: list[int] = []
    per_client = max(1, len(queries) // (n_clients * rows_per_request))

    def client(worker: int) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        rng = np.random.default_rng(worker)
        try:
            for _ in range(per_client):
                rows = rng.integers(0, len(queries), size=rows_per_request)
                body = json.dumps({"vectors": queries[rows].tolist(),
                                   "k": k}).encode()
                conn.request("POST", "/query", body=body,
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                response.read()
                with lock:
                    if response.status in counts:
                        counts[response.status] += 1
                    else:
                        bad.append(response.status)
        finally:
            conn.close()

    threads = [threading.Thread(target=client, args=(w,))
               for w in range(n_clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if bad:
        raise AssertionError(f"overload wave saw non-200/429 statuses: "
                             f"{bad[:5]}")
    return counts


def run(n_vectors: int = 20000, dim: int = 64, n_queries: int = 240,
        k: int = 10, n_clients: int = 8,
        server_counts: tuple[int, ...] = SERVER_COUNTS,
        n_shards: int = N_SHARDS, max_backlog: int = 8,
        overload_rows: tuple[int, ...] = (1, 4, 16, 64),
        seed: int = 0, workdir: str | Path | None = None) -> dict:
    import tempfile

    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n_vectors, dim))
    queries = rng.standard_normal((n_queries, dim))
    keys = [f"k{i:06d}" for i in range(n_vectors)]
    records = []

    with tempfile.TemporaryDirectory() as scratch:
        root = Path(workdir) if workdir is not None else Path(scratch)
        path = _save_sharded(root, keys, vectors, n_shards, seed)
        local = open_index(path, mmap=True)
        want = [[(hit.key, hit.score) for hit in hits]
                for hits in local.query_many(queries, k=k)]

        # Baseline: the in-process sharded index behind the same stack.
        with ServerThread(local, max_batch=64, max_wait_ms=1.0) as handle:
            seconds = _hammer(handle.port, queries, k, n_clients, want)
        records.append({"op": "serve", "mode": "in-process",
                        "servers": 0, "n": n_queries, "seconds": seconds,
                        "qps": n_queries / seconds if seconds else None})

        for n_servers in server_counts:
            paths = split_layout(path, root / f"split-{n_servers}",
                                 n_servers)
            with ClusterHarness(paths) as harness:
                remote = harness.connect(retries=1)
                # Equivalence gate: distributed == local, bit for bit,
                # over the full query set — before any timing.
                served = remote.query_many(queries, k=k)
                got = [[(hit.key, hit.score) for hit in hits]
                       for hits in served]
                if got != want:
                    raise AssertionError(
                        f"cluster(servers={n_servers}) rankings diverged "
                        f"from local — timings would be meaningless")
                with ServerThread(remote, max_batch=64,
                                  max_wait_ms=1.0) as handle:
                    seconds = _hammer(handle.port, queries, k, n_clients,
                                      want)
                records.append({
                    "op": "serve", "mode": f"cluster(servers={n_servers})",
                    "servers": n_servers, "n": n_queries,
                    "seconds": seconds,
                    "qps": n_queries / seconds if seconds else None})

        # Backpressure knee: small backlog, growing request waves.
        knee_servers = server_counts[-1]
        paths = split_layout(path, root / "split-knee", knee_servers)
        with ClusterHarness(paths) as harness:
            remote = harness.connect(retries=1)
            with ServerThread(remote, max_batch=64, max_wait_ms=20.0,
                              max_backlog=max_backlog) as handle:
                for rows in overload_rows:
                    counts = _overload_wave(handle.port, queries, k,
                                            n_clients, rows)
                    total = counts[200] + counts[429]
                    records.append({
                        "op": "overload",
                        "mode": f"rows/request={rows}",
                        "servers": knee_servers, "n": total,
                        "seconds": None, "qps": None,
                        "ok": counts[200], "shed": counts[429],
                        "shed_rate": (counts[429] / total) if total else 0.0,
                    })

    return {
        "benchmark": "cluster",
        "config": {"n_vectors": n_vectors, "dim": dim,
                   "n_queries": n_queries, "k": k, "n_clients": n_clients,
                   "server_counts": list(server_counts),
                   "n_shards": n_shards, "max_backlog": max_backlog,
                   "overload_rows": list(overload_rows), "seed": seed},
        "results": records,
    }


def render(report: dict) -> ResultsTable:
    config = report["config"]
    out = ResultsTable(
        f"Distributed serving: {config['n_vectors']} vectors (dim "
        f"{config['dim']}, {config['n_shards']} shards), "
        f"{config['n_queries']} queries @ k={config['k']}, "
        f"{config['n_clients']} clients; overload knee @ "
        f"max_backlog={config['max_backlog']}",
        columns=["seconds", "qps", "ok", "shed (429)", "shed rate"])
    for rec in report["results"]:
        row = f"{rec['op']} {rec['mode']}"
        if rec.get("seconds") is not None:
            out.add(row, "seconds", f"{rec['seconds']:.3f}")
        if rec.get("qps"):
            out.add(row, "qps", f"{rec['qps']:.1f}")
        if rec.get("ok") is not None:
            out.add(row, "ok", str(rec["ok"]))
            out.add(row, "shed (429)", str(rec["shed"]))
            out.add(row, "shed rate", f"{rec['shed_rate']:.1%}")
    return out


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.parse_args(argv)
    report = run()
    render(report).show()
    path = results_dir() / "BENCH_cluster.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"Wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
