"""Table 7: Entity catalogs — sizes and average precision per dataset.

The paper harvests per-type entity catalogs from typed columns and has
two annotators score sampled clusters (AP on samples of 40); here the
generator's gold entity types replace the annotators and the TabBiN
column model provides the embeddings.
"""

from repro.eval import ResultsTable, collect_entities, entity_clustering

from .common import DATASETS, RESULTS_DIR, corpus, tabbin


def run_catalogs():
    out = ResultsTable(
        "Table 7: Entity Catalogs (size, #types, AP@20)",
        columns=["entities", "types", "AP@20"],
    )
    for name in DATASETS:
        tables = list(corpus(name))
        entities = collect_entities(tables, max_per_type=40)
        types = {e.entity_type for e in entities}
        embedder = tabbin(name)
        result = entity_clustering(entities, embedder.entity_embedding,
                                   max_queries=40)
        out.add(name, "entities", len(entities))
        out.add(name, "types", len(types))
        out.add(name, "AP@20", f"{result.map_at_k:.2f}")
    return out


def test_table07_entity_catalogs(benchmark):
    for name in DATASETS:
        tabbin(name)
    table = benchmark.pedantic(run_catalogs, rounds=1, iterations=1)
    table.show()
    table.save(RESULTS_DIR / "table07_entity_catalogs.md")
    for name in DATASETS:
        assert int(table.get(name, "entities")) > 0
        assert float(table.get(name, "AP@20")) > 0.2
