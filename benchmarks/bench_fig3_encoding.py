"""Figure 3: the encoded representation of Table 1 in the embedding layer.

Regenerates the per-token feature table the paper draws — token, numeric
features, in-cell position, out-position (bi-dimensional + nested
coordinates), inferred type, unit/nesting bits — for the sample non-1NF
nested table, and benchmarks serialization.
"""

from repro.core import TabBiNConfig, TabBiNSerializer, corpus_texts
from repro.eval import ResultsTable
from repro.tables import table1_nested
from repro.text import TYPE_NAMES, TypeInference, WordPieceTokenizer

from .common import RESULTS_DIR


def build_serializer():
    table = table1_nested()
    tokenizer = WordPieceTokenizer.train(corpus_texts([table]), vocab_size=300)
    config = TabBiNConfig.small().with_vocab(len(tokenizer.vocab))
    return table, tokenizer, TabBiNSerializer(tokenizer, TypeInference(), config)


def render_encoding(table, tokenizer, serializer, max_rows=28):
    seq = serializer.serialize(table, "row")[0]
    out = ResultsTable(
        "Figure 3: Encoded representation of Table 1 (first tokens)",
        columns=["token", "num (m,p,f,l)", "in pos", "out pos (vr,vc,hr,hc,nr,nc)",
                 "type", "unit/nesting"],
    )
    for pos in range(min(len(seq), max_rows)):
        token = tokenizer.vocab.token(int(seq.token_ids[pos]))
        out.add(f"{pos:02d}", "token", token)
        out.add(f"{pos:02d}", "num (m,p,f,l)", tuple(int(x) for x in seq.numeric[pos]))
        out.add(f"{pos:02d}", "in pos", int(seq.cell_pos[pos]))
        out.add(f"{pos:02d}", "out pos (vr,vc,hr,hc,nr,nc)",
                tuple(int(x) for x in seq.coords[pos]))
        out.add(f"{pos:02d}", "type", TYPE_NAMES[int(seq.type_ids[pos])])
        out.add(f"{pos:02d}", "unit/nesting",
                "".join(str(int(b)) for b in seq.features[pos]))
    return out, seq


def test_fig3_encoding(benchmark):
    table, tokenizer, serializer = build_serializer()
    rendering, seq = render_encoding(table, tokenizer, serializer)
    rendering.show()
    rendering.save(RESULTS_DIR / "fig3_encoding.md")

    result = benchmark(lambda: serializer.serialize(table, "row"))
    assert result

    # Paper anchors: numbers appear as [VAL] with 20.3 -> (2,2,2,3)
    # somewhere in the nested 'OS' cell, and nested tokens carry nested
    # coordinates.
    val_id = tokenizer.vocab.val_id
    numeric_rows = [tuple(int(x) for x in seq.numeric[p])
                    for p in range(len(seq))
                    if int(seq.token_ids[p]) == val_id]
    assert (2, 2, 2, 3) in numeric_rows          # 20.3 months
    assert (seq.coords[:, 4] > 0).any()          # nested coordinates present
