"""Sharded fan-out query latency vs. a single-file index.

One synthetic corpus of seeded gaussian vectors, indexed three ways —
one big :class:`~repro.index.index.VectorIndex` and
:class:`~repro.index.sharded.ShardedIndex` layouts at each configured
shard count — then the same query batch is timed against every layout.
The sharded path must return byte-identical rankings (that equivalence
is asserted, not just measured), so the numbers isolate pure fan-out +
heap-merge overhead; ``build`` wall-clock and a ``rebalance`` timing
ride along for the ops picture.

Results are written to ``results/BENCH_sharded_query.json`` in the
shared ``BENCH_*.json`` tracking shape (benchmark name, config, one
record per op/mode) so successive runs can be diffed.

Run directly (``PYTHONPATH=src python benchmarks/bench_sharded_query.py``)
or via the smoke test in ``tests/index/test_bench_smoke.py``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.eval import ResultsTable, results_dir
from repro.index import IndexSpec, ShardedIndex, VectorIndex

SHARD_COUNTS = (2, 5)


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def run(n_vectors: int = 5000, dim: int = 64, n_queries: int = 100,
        k: int = 10, shard_counts: tuple[int, ...] = SHARD_COUNTS,
        seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n_vectors, dim))
    queries = rng.standard_normal((n_queries, dim))
    keys = [f"k{i:06d}" for i in range(n_vectors)]
    records = []

    def build_single():
        index = VectorIndex(dim=dim, seed=seed)
        index.add_batch(keys, vectors)
        return index

    seconds, single = _timed(build_single)
    records.append({"op": "build", "mode": "single", "n": n_vectors,
                    "seconds": seconds,
                    "per_sec": n_vectors / seconds if seconds else None})

    def query_all(index):
        return [index.query_vector(q, k=k) for q in queries]

    seconds, baseline = _timed(lambda: query_all(single))
    records.append({"op": "query", "mode": "single", "n": n_queries,
                    "seconds": seconds,
                    "per_sec": n_queries / seconds if seconds else None})
    want = [[(h.key, round(h.score, 9)) for h in hits] for hits in baseline]

    for n_shards in shard_counts:
        def build_sharded():
            sharded = ShardedIndex.create(
                IndexSpec(kind="vector", dim=dim, seed=seed), n_shards)
            sharded.add_batch(keys, vectors)
            return sharded

        seconds, sharded = _timed(build_sharded)
        records.append({"op": "build", "mode": f"shards={n_shards}",
                        "n": n_vectors, "seconds": seconds,
                        "per_sec": n_vectors / seconds if seconds else None})

        seconds, fanned = _timed(lambda: query_all(sharded))
        got = [[(h.key, round(h.score, 9)) for h in hits] for hits in fanned]
        if got != want:
            raise AssertionError(
                f"sharded (shards={n_shards}) rankings diverged from the "
                f"single index — fan-out merge is broken, timings are "
                f"meaningless")
        records.append({"op": "query", "mode": f"shards={n_shards}",
                        "n": n_queries, "seconds": seconds,
                        "per_sec": n_queries / seconds if seconds else None})

        seconds, moved = _timed(lambda: sharded.rebalance(n_shards + 1))
        records.append({"op": "rebalance", "mode": f"shards={n_shards}->"
                        f"{n_shards + 1}", "n": moved, "seconds": seconds,
                        "per_sec": moved / seconds if seconds else None})

    return {
        "benchmark": "sharded_query",
        "config": {"n_vectors": n_vectors, "dim": dim,
                   "n_queries": n_queries, "k": k,
                   "shard_counts": list(shard_counts), "seed": seed},
        "results": records,
    }


def render(report: dict) -> ResultsTable:
    config = report["config"]
    out = ResultsTable(
        f"Sharded query fan-out: {config['n_vectors']} vectors (dim "
        f"{config['dim']}), {config['n_queries']} queries @ k={config['k']}",
        columns=["n", "seconds", "ops/sec"])
    for record in report["results"]:
        row = f"{record['op']} {record['mode']}"
        out.add(row, "n", record["n"])
        out.add(row, "seconds", f"{record['seconds']:.3f}")
        per_sec = record["per_sec"]
        out.add(row, "ops/sec",
                f"{per_sec:.1f}" if per_sec is not None else "-")
    return out


def main() -> int:
    report = run()
    render(report).show()
    path = results_dir() / "BENCH_sharded_query.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"Wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
