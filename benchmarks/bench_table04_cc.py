"""Table 4: Column Clustering MAP/MRR — textual and numerical columns.

Paper shape: TabBiN outperforms TUTA and BioBERT on numerical columns
(largest deltas, up to 0.28 MAP) and outperforms or matches them on
textual columns; Word2Vec trails the contextual models.
"""

import pytest

from repro.baselines import make_column_embedder
from repro.eval import ResultsTable, collect_columns, column_clustering

from .common import (
    RESULTS_DIR,
    biobert,
    corpus,
    fmt,
    is_numeric_column,
    is_textual_column,
    tabbin,
    tuta,
    word2vec,
)

DATASETS = ("webtables", "covidkg", "cancerkg")


def embedders_for(name):
    return {
        "TabBiN": tabbin(name).column_embedding,
        "TUTA": tuta(name).embed_column,
        "BioBERT": make_column_embedder(biobert(name)),
        "Word2vec": make_column_embedder(word2vec(name)),
    }


def run_cc():
    columns = [f"{d} ({kind})" for d in DATASETS for kind in ("text", "num")]
    out = ResultsTable("Table 4: MAP/MRR for CC - Textual and Numerical",
                       columns=columns)
    for name in DATASETS:
        tables = list(corpus(name))
        splits = {
            "text": collect_columns(tables, predicate=is_textual_column),
            "num": collect_columns(tables, predicate=is_numeric_column),
        }
        for model_name, embed in embedders_for(name).items():
            for kind, refs in splits.items():
                result = column_clustering(tables, embed, columns=refs,
                                           max_queries=40)
                out.add(model_name, f"{name} ({kind})", fmt(result))
    return out


def test_table04_column_clustering(benchmark):
    for name in DATASETS:          # train outside the timed region
        embedders_for(name)
    table = benchmark.pedantic(run_cc, rounds=1, iterations=1)
    table.show()
    table.save(RESULTS_DIR / "table04_cc.md")

    def map_of(row, col):
        return float(table.get(row, col).split("/")[0])

    # Shape: TabBiN beats the non-structural baselines on numerical
    # columns of the BiN-rich corpora (the paper's headline CC result).
    wins = sum(
        map_of("TabBiN", f"{d} (num)") >= map_of("Word2vec", f"{d} (num)")
        for d in DATASETS
    )
    assert wins >= 2, "TabBiN should win numerical CC on most datasets"
