"""Corpus indexing throughput: per-table vs batched encoding.

Measures tables/sec for a full four-segment corpus encode through
:class:`~repro.index.store.EmbeddingStore` in two modes:

- ``per-table`` — the seed repo's lazy ``_pooled`` path, replicated
  exactly: serialize one table, run one ``encode_pooled`` forward per
  (table, segment) padded to that table's longest sequence;
- ``batch=N`` — one corpus-wide call with sequences of *all* tables
  pooled into length-sorted batches of N.

Results are written to ``results/BENCH_index_throughput.json`` in the
shared ``BENCH_*.json`` tracking shape (benchmark name, config, one
record per mode) so successive runs can be diffed.

Run directly (``PYTHONPATH=src python benchmarks/bench_index_throughput.py``)
or via the smoke test in ``tests/index/test_bench_smoke.py``.
"""

from __future__ import annotations

import json
import time

from repro.core import TabBiNConfig, TabBiNEmbedder
from repro.datasets import load_dataset
from repro.eval import ResultsTable, results_dir

BATCH_SIZES = (1, 8, 32)


def build_embedder(tables, steps: int = 0, vocab_size: int = 500,
                   seed: int = 0) -> TabBiNEmbedder:
    """An embedder sized for throughput runs (pre-training depth does not
    affect inference cost, so ``steps`` defaults to 0)."""
    embedder, _stats = TabBiNEmbedder.build(
        tables, config=TabBiNConfig.small(), steps=steps,
        vocab_size=vocab_size, seed=seed,
    )
    return embedder


def measure(embedder: TabBiNEmbedder, tables, batch_size: int | None,
            repeats: int = 1) -> dict:
    """Seconds / tables-per-sec for one full-corpus encode.

    ``batch_size=None`` selects the per-table mode; the cache is cleared
    before every repetition so each run encodes from scratch.  The best
    of ``repeats`` runs is reported (standard practice for wall-clock
    microbenchmarks).
    """
    from repro.core.config import SEGMENTS

    best = float("inf")
    for _ in range(max(repeats, 1)):
        embedder.clear_cache()
        start = time.perf_counter()
        if batch_size is None:
            for table in tables:
                for segment in SEGMENTS:
                    sequences = embedder.serializer.serialize(table, segment)
                    if sequences:
                        embedder.models[segment].encode_pooled(sequences)
        else:
            embedder.store.encode_corpus(tables, batch_size=batch_size)
        best = min(best, time.perf_counter() - start)
    mode = "per-table" if batch_size is None else f"batch={batch_size}"
    return {"mode": mode, "batch_size": batch_size, "seconds": best,
            "tables_per_sec": len(tables) / best if best > 0 else float("inf")}


def run(n_tables: int = 16, steps: int = 0, vocab_size: int = 500,
        seed: int = 0, batch_sizes: tuple[int, ...] = BATCH_SIZES,
        repeats: int = 2, dataset: str = "cancerkg") -> dict:
    """Full benchmark: per-table baseline plus each batched size."""
    tables = load_dataset(dataset, n_tables=n_tables, seed=seed)
    embedder = build_embedder(tables, steps=steps, vocab_size=vocab_size,
                              seed=seed)
    results = [measure(embedder, tables, None, repeats=repeats)]
    for size in batch_sizes:
        results.append(measure(embedder, tables, size, repeats=repeats))
    return {
        "benchmark": "index_throughput",
        "config": {"dataset": dataset, "n_tables": n_tables,
                   "hidden": embedder.hidden, "vocab_size": vocab_size,
                   "repeats": repeats},
        "results": results,
    }


def render(report: dict) -> ResultsTable:
    config = report["config"]
    out = ResultsTable(
        f"Index throughput: {config['n_tables']} {config['dataset']} tables, "
        f"H={config['hidden']}", columns=["seconds", "tables/sec"])
    for record in report["results"]:
        out.add(record["mode"], "seconds", f"{record['seconds']:.2f}")
        out.add(record["mode"], "tables/sec", f"{record['tables_per_sec']:.2f}")
    return out


def main() -> int:
    report = run()
    render(report).show()
    path = results_dir() / "BENCH_index_throughput.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"Wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
