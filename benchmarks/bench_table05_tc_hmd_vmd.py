"""Table 5: TC — tables with HMD vs HMD+VMD, numerical content, nesting.

Paper shape: TabBiN beats TUTA on nested-table clustering (ΔMAP ~0.17 on
CancerKG) and on HMD tables (ΔMAP ~0.14 on CovidKG); the structural
models beat the text baselines on these non-relational slices.
"""

from repro.baselines import make_table_embedder
from repro.eval import ResultsTable, table_clustering

from .common import RESULTS_DIR, biobert, corpus, fmt, tabbin, tuta, word2vec

DATASETS = ("covidkg", "cancerkg")


def slices_of(tables):
    return {
        "HMD only": [i for i, t in enumerate(tables)
                     if t.has_hmd and not t.has_vmd],
        "HMD+VMD": [i for i, t in enumerate(tables) if t.has_vmd],
        ">80% num": [i for i, t in enumerate(tables)
                     if t.numeric_fraction() > 0.8],
    }


def embedders_for(name, nested_rich=False):
    return {
        "TabBiN": tabbin(name, nested_rich=nested_rich).table_embedding,
        "TUTA": tuta(name, nested_rich=nested_rich).embed_table,
        "BioBERT": make_table_embedder(biobert(name)),
        "Word2vec": make_table_embedder(word2vec(name)),
    }


def run_tc():
    columns = [f"{d} ({s})" for d in DATASETS
               for s in ("HMD only", "HMD+VMD", ">80% num")]
    columns += ["cancerkg (nested)"]
    out = ResultsTable(
        "Table 5: MAP/MRR for TC - HMD vs HMD/VMD, numerical, nesting",
        columns=columns,
    )
    for name in DATASETS:
        tables = list(corpus(name))
        for model_name, embed in embedders_for(name).items():
            for slice_name, ids in slices_of(tables).items():
                if len(ids) < 4:
                    continue
                result = table_clustering(tables, embed, tables=ids)
                out.add(model_name, f"{name} ({slice_name})", fmt(result))
    # Nested slice: nesting-rich CancerKG variant (see common.corpus).
    nested_tables = list(corpus("cancerkg", nested_rich=True))
    nested_ids = [i for i, t in enumerate(nested_tables) if t.has_nesting]
    for model_name, embed in embedders_for("cancerkg", nested_rich=True).items():
        result = table_clustering(nested_tables, embed, tables=nested_ids)
        out.add(model_name, "cancerkg (nested)", fmt(result))
    return out


def test_table05_tc_hmd_vmd_nesting(benchmark):
    for name in DATASETS:
        embedders_for(name)
    embedders_for("cancerkg", nested_rich=True)
    table = benchmark.pedantic(run_tc, rounds=1, iterations=1)
    table.show()
    table.save(RESULTS_DIR / "table05_tc_hmd_vmd.md")

    def map_of(row, col):
        return float(table.get(row, col).split("/")[0])

    # Shape: TabBiN is competitive with TUTA on the nested slice.
    assert map_of("TabBiN", "cancerkg (nested)") >= \
        map_of("TUTA", "cancerkg (nested)") - 0.1
