"""Table 3: Word2vec dimensionality sweep — training time vs MAP/MRR.

Paper finding: no notable accuracy difference above dim 300, while
training time keeps growing; the paper therefore fixes dim = 300.  At
bench scale the saturation point is lower but the shape is the same:
accuracy plateaus with dimension while training time rises
monotonically.
"""

from repro.baselines import Word2Vec, corpus_tuples, make_column_embedder, make_table_embedder
from repro.eval import ResultsTable, collect_columns, column_clustering, table_clustering

from .common import RESULTS_DIR, corpus, fmt, is_textual_column

DIMS = (25, 50, 100, 200)


def run_sweep():
    tables = list(corpus("cancerkg"))
    texts = corpus_tuples(tables)
    string_columns = collect_columns(tables, predicate=is_textual_column)
    out = ResultsTable(
        "Table 3: Word2vec dims - train time vs MAP/MRR (CancerKG strings)",
        columns=["train_s", "CC MAP/MRR", "TC MAP/MRR"],
    )
    for dim in DIMS:
        model = Word2Vec(dim=dim, window=3, seed=0).train(texts, epochs=3)
        cc = column_clustering(tables, make_column_embedder(model),
                               columns=string_columns, max_queries=40)
        tc = table_clustering(tables, make_table_embedder(model))
        out.add(f"dim={dim}", "train_s", f"{model.train_seconds:.2f}")
        out.add(f"dim={dim}", "CC MAP/MRR", fmt(cc))
        out.add(f"dim={dim}", "TC MAP/MRR", fmt(tc))
    return out


def test_table03_word2vec_dimensionality(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table.show()
    table.save(RESULTS_DIR / "table03_w2v_dims.md")
    # Shape checks: accuracy plateaus with dimension (paper: no notable
    # difference past the chosen dim) while training cost does not drop.
    maps = [float(table.get(f"dim={d}", "CC MAP/MRR").split("/")[0])
            for d in DIMS]
    assert abs(maps[-1] - maps[-2]) < 0.2
    times = [float(table.get(f"dim={d}", "train_s")) for d in DIMS]
    assert times[-1] >= times[0] * 0.8
