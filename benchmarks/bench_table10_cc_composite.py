"""Table 10: CC without vs with composite embeddings.

Paper shape: TabBiN-colcomp (attribute embedding from the HMD model ⊕
data embedding from the column model, Figure 5b) beats the plain
column-model embedding on both textual and numerical columns.
"""

from repro.eval import ResultsTable, collect_columns, column_clustering

from .common import (
    RESULTS_DIR,
    corpus,
    fmt,
    is_numeric_column,
    is_textual_column,
    tabbin,
)

DATASETS = ("webtables", "cancerkg")


def run_composite_cc():
    columns = [f"{d} ({k})" for d in DATASETS for k in ("text", "num")]
    out = ResultsTable(
        "Table 10: CC by TabBiN without and with Composite Embeddings",
        columns=columns,
    )
    for name in DATASETS:
        tables = list(corpus(name))
        embedder = tabbin(name)
        splits = {
            "text": collect_columns(tables, predicate=is_textual_column),
            "num": collect_columns(tables, predicate=is_numeric_column),
        }
        for kind, refs in splits.items():
            plain = column_clustering(
                tables, lambda t, j: embedder.column_embedding(t, j, composite=False),
                columns=refs, max_queries=40,
            )
            composite = column_clustering(
                tables, embedder.column_embedding, columns=refs, max_queries=40,
            )
            out.add("TabBiN-col", f"{name} ({kind})", fmt(plain))
            out.add("TabBiN-colcomp", f"{name} ({kind})", fmt(composite))
    return out


def test_table10_cc_composite_embeddings(benchmark):
    for name in DATASETS:
        tabbin(name)
    table = benchmark.pedantic(run_composite_cc, rounds=1, iterations=1)
    table.show()
    table.save(RESULTS_DIR / "table10_cc_composite.md")

    def map_of(row, col):
        return float(table.get(row, col).split("/")[0])

    # Shape: composite embeddings help on most splits.
    splits = [f"{d} ({k})" for d in DATASETS for k in ("text", "num")]
    wins = sum(map_of("TabBiN-colcomp", s) >= map_of("TabBiN-col", s) - 0.02
               for s in splits)
    assert wins >= 3
