"""Table 12: ablation study on Column Clustering.

TabBiN_1 removes the visibility matrix, TabBiN_2 type inference,
TabBiN_3 the units/nesting features, TabBiN_4 the bi-dimensional
coordinates (Section 4.6).  Paper shape: every ablation costs MAP, the
visibility matrix most (drops up to 0.25 on CC).
"""

from repro.eval import ResultsTable, collect_columns, column_clustering

from .common import (
    RESULTS_DIR,
    corpus,
    fmt,
    is_numeric_column,
    is_textual_column,
    tabbin,
)

DATASET = "cancerkg"
ABLATIONS = (
    ("TabBiN (full)", None),
    ("TabBiN_1 (-visibility)", "visibility"),
    ("TabBiN_2 (-type)", "type"),
    ("TabBiN_3 (-units/nesting)", "units_nesting"),
    ("TabBiN_4 (-coords)", "coords"),
)


def run_ablation_cc():
    tables = list(corpus(DATASET))
    splits = {
        "text": collect_columns(tables, predicate=is_textual_column),
        "num": collect_columns(tables, predicate=is_numeric_column),
    }
    out = ResultsTable(
        "Table 12: MAP/MRR for Ablation Study on CC (CancerKG)",
        columns=["text", "num"],
    )
    for label, ablation in ABLATIONS:
        embedder = tabbin(DATASET, ablation=ablation)
        for kind, refs in splits.items():
            result = column_clustering(tables, embedder.column_embedding,
                                       columns=refs, max_queries=40)
            out.add(label, kind, fmt(result))
    return out


def test_table12_ablation_cc(benchmark):
    for _label, ablation in ABLATIONS:
        tabbin(DATASET, ablation=ablation)
    table = benchmark.pedantic(run_ablation_cc, rounds=1, iterations=1)
    table.show()
    table.save(RESULTS_DIR / "table12_ablation_cc.md")

    def map_of(row, col):
        return float(table.get(row, col).split("/")[0])

    # Shape: the full model is at or near the top on both splits.
    for kind in ("text", "num"):
        best_ablated = max(map_of(label, kind) for label, a in ABLATIONS if a)
        assert map_of("TabBiN (full)", kind) >= best_ablated - 0.15
