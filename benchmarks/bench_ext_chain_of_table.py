"""Extension bench: Chain-of-Table prompting (the paper's future work).

Section 4.7 names "more advanced prompting algorithms [72, 82] for
complex tables" as the authors' next research direction; [82] is
Chain-of-Table.  This bench implements and measures that direction: the
iterative focus-operation chain of
:class:`repro.baselines.prompting.ChainOfTableLLM` on top of the plain
(non-RAG) simulated LLMs, against their single-shot and RAG variants.

Expected shape: CoT improves the plain LLM's MAP (better deep ranking
through progressively focused candidate pools) while RAG remains the
stronger retrieval fix — the two are complementary.
"""

from repro.baselines import ChainOfTableLLM, SimulatedLLM, llm_column_clustering
from repro.eval import ResultsTable

from .common import RESULTS_DIR, corpus, fmt

DATASET = "cancerkg"
PROFILES = ("llama-2", "gpt-3.5")


def run_cot():
    tables = list(corpus(DATASET))
    out = ResultsTable(
        "Extension: Chain-of-Table prompting on CC (CancerKG)",
        columns=["plain", "+CoT", "+RAG"],
    )
    for profile in PROFILES:
        plain = SimulatedLLM(profile, seed=0)
        cot = ChainOfTableLLM(SimulatedLLM(profile, seed=0))
        ragged = SimulatedLLM(profile, use_rag=True, seed=0)
        out.add(profile, "plain",
                fmt(llm_column_clustering(tables, plain, max_queries=20)))
        out.add(profile, "+CoT",
                fmt(llm_column_clustering(tables, cot, max_queries=20)))
        out.add(profile, "+RAG",
                fmt(llm_column_clustering(tables, ragged, max_queries=20)))
    return out


def test_ext_chain_of_table(benchmark):
    table = benchmark.pedantic(run_cot, rounds=1, iterations=1)
    table.show()
    table.save(RESULTS_DIR / "ext_chain_of_table.md")

    def map_of(row, col):
        return float(table.get(row, col).split("/")[0])

    for profile in PROFILES:
        assert map_of(profile, "+CoT") >= map_of(profile, "plain") - 0.05
