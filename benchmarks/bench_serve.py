"""Serving throughput: micro-batching vs one-request-per-GEMM dispatch.

One synthetic corpus of seeded gaussian vectors is saved as a single
``.npz`` and as sharded layouts, then served by
:class:`~repro.serve.ServerThread` while ``n_clients`` threads hammer
``POST /query`` with single-query requests over keep-alive connections
— the workload micro-batching exists for.  Each layout runs twice:

- ``per-request`` — ``max_batch=1, max_wait_ms=0``: every request is
  its own ``query_many`` call, the dispatch a naive server would do;
- ``micro-batch(w)`` — ``max_batch=64`` with a ``w``-millisecond
  window: concurrent requests coalesce into shared GEMMs.

Every served ranking is asserted identical to the offline
``open_index().query_many`` result (JSON round-trips floats exactly),
so the QPS numbers compare correct servers only.  Cold-open timings
for eager vs memory-mapped loads of each layout are recorded too —
the mmap rows are why ``repro.cli serve`` maps by default.

Run directly (``PYTHONPATH=src python benchmarks/bench_serve.py``) or
via the smoke test in ``tests/serve/test_serve_bench_smoke.py``.

``--zipfian`` runs the *result-cache* workload instead (→
``results/BENCH_cache.json``): a zipfian (s≈1.1) request stream over a
small query pool — production traffic's shape — served with the cache
on vs off, plus a uniform stream (the cache's worst case) and a
near-duplicate jitter stream (every request a fresh vector that hashes
to a cached band-key tuple, so the semantic tier carries the load).
Every stream's served rankings are asserted identical to offline
``query_many`` *before* any timing is recorded.

``--prefork`` runs the *pre-fork fleet* workload instead (→
``results/BENCH_prefork.json``): ``serve --workers N`` booted through
the real CLI at fleet sizes 1/2/4, each gated on the same served ≡
offline equivalence before timing, with summed worker RSS and PSS
from ``/proc`` recording the mmap page-sharing story.

NB: on a single-core box the micro-batch win comes from shaving
per-request Python/GEMM dispatch overhead, not from parallelism; both
effects grow with real traffic and real hardware.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from pathlib import Path

import numpy as np

from repro.eval import ResultsTable, results_dir
from repro.index import IndexSpec, ShardedIndex, VectorIndex, open_index
from repro.serve import ServerThread

SHARD_COUNTS = (1, 5)
WINDOWS_MS = (1.0, 4.0)


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def _save_layout(root: Path, keys, vectors, n_shards: int, seed: int):
    dim = vectors.shape[1]
    if n_shards == 1:
        index = VectorIndex(dim=dim, seed=seed)
        index.add_batch(keys, vectors)
        return index.save(root / "single.npz")
    sharded = ShardedIndex.create(
        IndexSpec(kind="vector", dim=dim, seed=seed), n_shards)
    sharded.add_batch(keys, vectors)
    return sharded.save(root / f"sharded-{n_shards}")


def _hammer(port: int, queries: np.ndarray, k: int, n_clients: int,
            want: list) -> float:
    """Fire every query as its own request from ``n_clients`` keep-alive
    client threads; assert each response equals the offline ranking;
    return elapsed wall seconds."""
    slices = [list(range(c, len(queries), n_clients))
              for c in range(n_clients)]
    failures: list[str] = []

    def client(rows: list[int]) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            for q in rows:
                body = json.dumps({"vector": queries[q].tolist(),
                                   "k": k}).encode()
                conn.request("POST", "/query", body=body,
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                payload = json.loads(response.read())
                if response.status != 200:
                    failures.append(f"query {q}: status {response.status}")
                    continue
                got = [(hit["key"], hit["score"])
                       for hit in payload["hits"]]
                if got != want[q]:
                    failures.append(f"query {q}: served ranking diverged")
        finally:
            conn.close()

    threads = [threading.Thread(target=client, args=(rows,))
               for rows in slices if rows]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if failures:
        raise AssertionError(
            f"served rankings diverged from offline query_many — the "
            f"server is broken, timings are meaningless: {failures[:3]}")
    return elapsed


def run(n_vectors: int = 20000, dim: int = 64, n_queries: int = 240,
        k: int = 10, n_clients: int = 8,
        shard_counts: tuple[int, ...] = SHARD_COUNTS,
        windows_ms: tuple[float, ...] = WINDOWS_MS,
        seed: int = 0, workdir: str | Path | None = None) -> dict:
    import tempfile

    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n_vectors, dim))
    queries = rng.standard_normal((n_queries, dim))
    keys = [f"k{i:06d}" for i in range(n_vectors)]
    records = []

    with tempfile.TemporaryDirectory() as scratch:
        root = Path(workdir) if workdir is not None else Path(scratch)
        for n_shards in shard_counts:
            layout = "single" if n_shards == 1 else f"shards={n_shards}"
            path = _save_layout(root, keys, vectors, n_shards, seed)

            seconds, offline = _timed(lambda: open_index(path))
            records.append({"op": "open", "mode": "eager", "layout": layout,
                            "n": n_vectors, "seconds": seconds, "qps": None})
            seconds, served_index = _timed(
                lambda: open_index(path, mmap=True))
            records.append({"op": "open", "mode": "mmap", "layout": layout,
                            "n": n_vectors, "seconds": seconds, "qps": None})

            want = [[(hit.key, hit.score) for hit in hits]
                    for hits in offline.query_many(queries, k=k)]

            modes = [("per-request", dict(max_batch=1, max_wait_ms=0.0))]
            modes += [(f"micro-batch(w={window:g}ms)",
                       dict(max_batch=64, max_wait_ms=window))
                      for window in windows_ms]
            for mode, knobs in modes:
                with ServerThread(served_index, **knobs) as handle:
                    seconds = _hammer(handle.port, queries, k, n_clients,
                                      want)
                    snapshot = handle.server.stats.snapshot()
                records.append({
                    "op": "serve", "mode": mode, "layout": layout,
                    "n": n_queries, "seconds": seconds,
                    "qps": n_queries / seconds if seconds else None,
                    "mean_batch": snapshot["batch"]["mean_size"],
                    "p99_ms": snapshot["latency_ms"]["p99"],
                })

    return {
        "benchmark": "serve",
        "config": {"n_vectors": n_vectors, "dim": dim,
                   "n_queries": n_queries, "k": k, "n_clients": n_clients,
                   "shard_counts": list(shard_counts),
                   "windows_ms": list(windows_ms), "seed": seed},
        "results": records,
    }


def _zipfian_stream(rng: np.random.Generator, pool_size: int, length: int,
                    s: float) -> np.ndarray:
    """``length`` pool indices drawn zipfian: P(rank r) ∝ 1/r^s."""
    weights = 1.0 / np.arange(1, pool_size + 1) ** s
    return rng.choice(pool_size, size=length, p=weights / weights.sum())


def _cache_stats(port: int) -> dict:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", "/stats")
        payload = json.loads(conn.getresponse().read())
    finally:
        conn.close()
    return payload["indexes"]["default"]["cache"]


def run_cache(n_vectors: int = 20000, dim: int = 64, pool_size: int = 240,
              n_requests: int = 1200, k: int = 10, n_clients: int = 8,
              zipf_s: float = 1.1, cache_entries: int = 64,
              shard_counts: tuple[int, ...] = SHARD_COUNTS,
              seed: int = 0, workdir: str | Path | None = None) -> dict:
    """The result-cache workload: zipfian vs uniform vs near-duplicate
    request streams, cache on vs off, equivalence asserted before any
    timing (``_hammer`` refuses to return timings for a wrong server).

    The cache is deliberately smaller than the query pool
    (``cache_entries`` < ``pool_size``) so the distribution matters: a
    zipfian stream keeps its hot head resident while a uniform stream
    churns the LRU.
    """
    import tempfile

    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n_vectors, dim))
    pool = rng.standard_normal((pool_size, dim))
    keys = [f"k{i:06d}" for i in range(n_vectors)]
    records = []

    streams = {
        f"zipfian(s={zipf_s:g})": pool[_zipfian_stream(rng, pool_size,
                                                       n_requests, zipf_s)],
        "uniform": pool[rng.integers(0, pool_size, size=n_requests)],
        # Near-duplicates: every request is a *fresh* vector (exact tier
        # can never hit) one ulp-ish away from a pool query, so it
        # hashes to the same band keys and rides the semantic tier.
        "near-dupe": (pool[_zipfian_stream(rng, pool_size, n_requests,
                                           zipf_s)]
                      + rng.normal(scale=1e-9, size=(n_requests, dim))),
    }

    with tempfile.TemporaryDirectory() as scratch:
        root = Path(workdir) if workdir is not None else Path(scratch)
        for n_shards in shard_counts:
            layout = "single" if n_shards == 1 else f"shards={n_shards}"
            path = _save_layout(root, keys, vectors, n_shards, seed)
            offline = open_index(path)
            served_index = open_index(path, mmap=True)
            for workload, stream in streams.items():
                want = [[(hit.key, hit.score) for hit in hits]
                        for hits in offline.query_many(stream, k=k)]
                for mode, cache_size in (("no-cache", 0),
                                         ("cached", cache_entries)):
                    with ServerThread(served_index, max_batch=64,
                                      max_wait_ms=1.0,
                                      cache_size=cache_size) as handle:
                        seconds = _hammer(handle.port, stream, k, n_clients,
                                          want)
                        cache = (_cache_stats(handle.port)
                                 if cache_size else None)
                    record = {
                        "op": "serve", "layout": layout,
                        "workload": workload, "mode": mode,
                        "n": n_requests, "seconds": seconds,
                        "qps": n_requests / seconds if seconds else None,
                    }
                    if cache is not None:
                        served = (cache["exact_hits"]
                                  + cache["semantic_hits"]
                                  + cache["misses"])
                        record["exact_hit_rate"] = (cache["exact_hits"]
                                                    / served)
                        record["semantic_hit_rate"] = (
                            cache["semantic_hits"] / served)
                        record["hit_rate"] = cache["hit_rate"]
                    records.append(record)

    return {
        "benchmark": "serve-cache",
        "config": {"n_vectors": n_vectors, "dim": dim,
                   "pool_size": pool_size, "n_requests": n_requests,
                   "k": k, "n_clients": n_clients, "zipf_s": zipf_s,
                   "cache_entries": cache_entries,
                   "shard_counts": list(shard_counts), "seed": seed},
        "results": records,
    }


def _fleet_mem_mb(pids: list[int]) -> dict:
    """Summed resident memory of ``pids`` from ``/proc``: ``rss_mb``
    (naive sum — double-counts pages shared between workers) and
    ``pss_mb`` (proportional set size — each shared page split across
    its mappers, the honest fleet total).  ``None`` where the platform
    lacks the files."""
    rss_kb, pss_kb, pss_seen = 0, 0, False
    for pid in pids:
        try:
            with open(f"/proc/{pid}/status") as handle:
                for line in handle:
                    if line.startswith("VmRSS:"):
                        rss_kb += int(line.split()[1])
                        break
        except OSError:
            return {"rss_mb": None, "pss_mb": None}
        try:
            with open(f"/proc/{pid}/smaps_rollup") as handle:
                for line in handle:
                    if line.startswith("Pss:"):
                        pss_kb += int(line.split()[1])
                        pss_seen = True
                        break
        except OSError:
            pass
    return {"rss_mb": rss_kb / 1024.0,
            "pss_mb": pss_kb / 1024.0 if pss_seen else None}


def run_prefork(n_vectors: int = 20000, dim: int = 64,
                n_queries: int = 240, k: int = 10, n_clients: int = 8,
                worker_counts: tuple[int, ...] = (1, 2, 4),
                n_shards: int = 5, seed: int = 0,
                workdir: str | Path | None = None) -> dict:
    """Pre-fork serving (``serve --workers N``) at each fleet size.

    Each fleet boots through the real CLI, exactly as an operator
    would.  Before any timing, a full equivalence pass asserts every
    ranking served by the fleet — whatever worker the kernel hands
    each connection to — is bit-identical to the offline
    ``query_many`` result; ``_hammer`` refuses to return timings
    otherwise.  The timed pass then runs with the result cache OFF so
    the numbers measure dispatch + GEMM, not cache hits, and the
    per-process memory is read from ``/proc`` (RSS naively summed,
    plus PSS, which shows the mmap page-sharing across workers).

    Honesty note recorded in the report: on a single-CPU container the
    workers serialize on the one core, so QPS stays flat or dips as
    workers grow (context-switch overhead with zero added parallelism)
    — the fleet sizes are exercised for correctness and memory shape
    there, not speedup.
    """
    import os
    import signal
    import subprocess
    import sys
    import tempfile

    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n_vectors, dim))
    queries = rng.standard_normal((n_queries, dim))
    keys = [f"k{i:06d}" for i in range(n_vectors)]
    records = []

    with tempfile.TemporaryDirectory() as scratch:
        root = Path(workdir) if workdir is not None else Path(scratch)
        path = _save_layout(root, keys, vectors, n_shards, seed)
        offline = open_index(path)
        want = [[(hit.key, hit.score) for hit in hits]
                for hits in offline.query_many(queries, k=k)]

        env = dict(os.environ)
        src = Path(__file__).resolve().parents[1] / "src"
        env["PYTHONPATH"] = (str(src) + os.pathsep
                             + env.get("PYTHONPATH", ""))
        for workers in worker_counts:
            process = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "serve", str(path),
                 "--port", "0", "--workers", str(workers),
                 "--max-batch", "64", "--max-wait-ms", "1",
                 "--no-cache"],
                env=env, stdout=subprocess.PIPE,
                stderr=subprocess.PIPE, text=True)
            try:
                banner = process.stdout.readline()
                port = int(banner.split("http://127.0.0.1:")[1]
                           .split()[0])
                deadline = time.perf_counter() + 30
                while time.perf_counter() < deadline:
                    try:
                        conn = http.client.HTTPConnection(
                            "127.0.0.1", port, timeout=2)
                        conn.request("GET", "/healthz")
                        ok = conn.getresponse().status == 200
                        conn.close()
                        if ok:
                            break
                    except OSError:
                        time.sleep(0.05)
                # Equivalence gate (and warm-up): every fleet member's
                # rankings must match offline before we time anything.
                _hammer(port, queries, k, n_clients, want)
                seconds = _hammer(port, queries, k, n_clients, want)

                if workers > 1:
                    conn = http.client.HTTPConnection("127.0.0.1", port,
                                                      timeout=30)
                    conn.request("GET", "/stats")
                    stats = json.loads(conn.getresponse().read())
                    conn.close()
                    pids = [section["pid"] for section
                            in stats["workers"].values()]
                else:
                    pids = [process.pid]
                memory = _fleet_mem_mb(pids)
                records.append({
                    "op": "serve", "mode": f"prefork(workers={workers})",
                    "layout": f"shards={n_shards}", "n": n_queries,
                    "workers": workers, "seconds": seconds,
                    "qps": n_queries / seconds if seconds else None,
                    "rss_mb": memory["rss_mb"],
                    "pss_mb": memory["pss_mb"],
                })
            finally:
                process.send_signal(signal.SIGTERM)
                _stdout, stderr = process.communicate(timeout=60)
            if process.returncode != 0:
                raise AssertionError(
                    f"fleet (workers={workers}) exited "
                    f"{process.returncode}: {stderr[-500:]}")

    return {
        "benchmark": "serve-prefork",
        "config": {"n_vectors": n_vectors, "dim": dim,
                   "n_queries": n_queries, "k": k,
                   "n_clients": n_clients, "n_shards": n_shards,
                   "worker_counts": list(worker_counts), "seed": seed,
                   "cpus": os.cpu_count()},
        "note": ("equivalence asserted before timing: every ranking "
                 "served by any worker is bit-identical to offline "
                 "query_many; on a 1-CPU container QPS stays flat or "
                 "dips as workers grow (they serialize on the one core "
                 "and pay context-switch overhead) — fleet sizes "
                 "exercise correctness and memory shape there, not "
                 "speedup; PSS < summed RSS is the mmap page-sharing "
                 "across workers"),
        "results": records,
    }


def render_prefork(report: dict) -> ResultsTable:
    config = report["config"]
    out = ResultsTable(
        f"Pre-fork serving: {config['n_vectors']} vectors (dim "
        f"{config['dim']}), {config['n_queries']} queries @ "
        f"k={config['k']}, {config['n_clients']} clients, "
        f"{config['cpus']} cpu(s)",
        columns=["seconds", "qps", "rss MB", "pss MB"])
    for rec in report["results"]:
        row = f"{rec['layout']} {rec['mode']}"
        out.add(row, "seconds", f"{rec['seconds']:.3f}")
        out.add(row, "qps", f"{rec['qps']:.1f}" if rec["qps"] else "-")
        if rec.get("rss_mb") is not None:
            out.add(row, "rss MB", f"{rec['rss_mb']:.1f}")
        if rec.get("pss_mb") is not None:
            out.add(row, "pss MB", f"{rec['pss_mb']:.1f}")
    return out


def render_cache(report: dict) -> ResultsTable:
    config = report["config"]
    out = ResultsTable(
        f"Result cache: {config['n_vectors']} vectors (dim "
        f"{config['dim']}), {config['n_requests']} requests over a "
        f"{config['pool_size']}-query pool @ k={config['k']}, "
        f"{config['n_clients']} clients, {config['cache_entries']}-entry "
        "cache",
        columns=["seconds", "qps", "exact hits", "semantic hits"])
    for rec in report["results"]:
        row = f"{rec['layout']} {rec['workload']} {rec['mode']}"
        out.add(row, "seconds", f"{rec['seconds']:.3f}")
        out.add(row, "qps", f"{rec['qps']:.1f}" if rec["qps"] else "-")
        if "exact_hit_rate" in rec:
            out.add(row, "exact hits", f"{rec['exact_hit_rate']:.1%}")
            out.add(row, "semantic hits",
                    f"{rec['semantic_hit_rate']:.1%}")
    return out


def render(report: dict) -> ResultsTable:
    config = report["config"]
    out = ResultsTable(
        f"Retrieval serving: {config['n_vectors']} vectors (dim "
        f"{config['dim']}), {config['n_queries']} queries @ "
        f"k={config['k']}, {config['n_clients']} clients",
        columns=["seconds", "qps", "mean batch", "p99 ms"])
    for rec in report["results"]:
        row = f"{rec['layout']} {rec['op']} {rec['mode']}"
        out.add(row, "seconds", f"{rec['seconds']:.3f}")
        out.add(row, "qps", f"{rec['qps']:.1f}" if rec["qps"] else "-")
        if rec.get("mean_batch") is not None:
            out.add(row, "mean batch", f"{rec['mean_batch']:.1f}")
        if rec.get("p99_ms") is not None:
            out.add(row, "p99 ms", f"{rec['p99_ms']:.2f}")
    return out


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--zipfian", action="store_true",
                        help="run the result-cache workload (zipfian/"
                             "uniform/near-dupe streams, cache on vs off) "
                             "instead of the dispatch benchmark")
    parser.add_argument("--prefork", action="store_true",
                        help="run the pre-fork fleet workload (serve "
                             "--workers at 1/2/4, equivalence-gated, "
                             "QPS + RSS/PSS per fleet size) instead of "
                             "the dispatch benchmark")
    args = parser.parse_args(argv)
    if args.prefork:
        report = run_prefork()
        render_prefork(report).show()
        path = results_dir() / "BENCH_prefork.json"
    elif args.zipfian:
        report = run_cache()
        render_cache(report).show()
        path = results_dir() / "BENCH_cache.json"
    else:
        report = run()
        render(report).show()
        path = results_dir() / "BENCH_serve.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"Wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
