"""Table 8: Entity Clustering MAP/MRR across models and datasets.

Paper shape: TabBiN attains the highest MAP across all datasets for EC
(beating TUTA by small margins, text baselines by larger ones).
"""

from repro.baselines import make_entity_embedder
from repro.eval import ResultsTable, collect_entities, entity_clustering

from .common import RESULTS_DIR, biobert, corpus, fmt, tabbin, tuta, word2vec

DATASETS = ("webtables", "covidkg", "cancerkg", "saus", "cius")


def embedders_for(name):
    return {
        "TabBiN": tabbin(name).entity_embedding,
        "TUTA": tuta(name).embed_text,
        "BioBERT": make_entity_embedder(biobert(name)),
        "Word2vec": make_entity_embedder(word2vec(name)),
    }


def run_ec():
    out = ResultsTable("Table 8: MAP/MRR for EC", columns=list(DATASETS))
    for name in DATASETS:
        entities = collect_entities(list(corpus(name)), max_per_type=25)
        for model_name, embed in embedders_for(name).items():
            result = entity_clustering(entities, embed, max_queries=30)
            out.add(model_name, name, fmt(result))
    return out


def test_table08_entity_clustering(benchmark):
    for name in DATASETS:
        embedders_for(name)
    table = benchmark.pedantic(run_ec, rounds=1, iterations=1)
    table.show()
    table.save(RESULTS_DIR / "table08_ec.md")

    def map_of(row, col):
        return float(table.get(row, col).split("/")[0])

    # Shape: TabBiN attains top-or-near-top EC MAP on most datasets.
    wins = sum(
        map_of("TabBiN", d) >= max(map_of(m, d) for m in
                                   ("TUTA", "BioBERT", "Word2vec")) - 0.1
        for d in DATASETS
    )
    assert wins >= 3
