"""Shared benchmark harness: corpora, cached models, bench config.

Every benchmark file reproduces one table or figure of the paper.  Model
pre-training is expensive, so trained models are memoized here and shared
across benchmark files within one pytest session (the ablation models
trained for Table 12 are reused by Table 13, etc.).

Scale notes: the paper trains H=768 encoders for 50k steps on 20k-44k
tables per corpus; this harness trains H=36 encoders for ~80 steps on
24-table corpora so the full suite completes in minutes on CPU.  The
*relative* results (who wins, roughly by how much, where the ablations
hurt) are the reproduction target, not absolute MAP values.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

from repro.baselines import BioBERTLike, TutaEmbedder, Word2Vec, corpus_tuples
from repro.core import TabBiNConfig, TabBiNEmbedder
from repro.datasets import PROFILES, CorpusGenerator
from repro.eval import results_dir

#: Bench-scale encoder config (hidden divisible by 12; heads divide 36).
BENCH_CONFIG = TabBiNConfig(
    hidden=36, num_layers=1, num_heads=3, intermediate=144, dropout=0.1,
    max_seq_len=96, max_cell_tokens=16, max_position=64, batch_size=6,
)
N_TABLES = 24
STEPS = 80
VOCAB = 700
SEED = 0

DATASETS = ("webtables", "covidkg", "cancerkg", "saus", "cius")

#: Where the per-table markdown artifacts land (linked by EXPERIMENTS.md).
RESULTS_DIR = results_dir()


@lru_cache(maxsize=None)
def corpus(name: str, n_tables: int = N_TABLES, seed: int = SEED,
           nested_rich: bool = False):
    """A seeded corpus; ``nested_rich`` raises the nesting rate so the
    nested-tables evaluation slice has enough members at bench scale
    (the paper's corpora have thousands of nested tables; a 24-table
    corpus at the documented 10% rate would have two)."""
    profile = PROFILES[name].scaled(n_tables)
    if nested_rich:
        profile = replace(profile, p_nested=0.6)
    return tuple(CorpusGenerator(profile, seed=seed).generate())


@lru_cache(maxsize=None)
def tabbin(name: str, ablation: str | None = None, steps: int = STEPS,
           nested_rich: bool = False) -> TabBiNEmbedder:
    """Pre-trained TabBiN (optionally with one Section-4.6 ablation)."""
    config = BENCH_CONFIG if ablation is None else BENCH_CONFIG.ablate(ablation)
    embedder, _stats = TabBiNEmbedder.build(
        list(corpus(name, nested_rich=nested_rich)), config=config,
        steps=steps, vocab_size=VOCAB, seed=SEED,
    )
    return embedder


@lru_cache(maxsize=None)
def tuta(name: str, nested_rich: bool = False) -> TutaEmbedder:
    return TutaEmbedder.build(
        list(corpus(name, nested_rich=nested_rich)), steps=STEPS, hidden=36,
        num_layers=1, num_heads=3, vocab_size=VOCAB, max_seq_len=96,
        batch_size=6, seed=SEED,
    )


@lru_cache(maxsize=None)
def biobert(name: str, include_captions: bool = False) -> BioBERTLike:
    return BioBERTLike.from_tables(
        list(corpus(name)), steps=STEPS, include_captions=include_captions,
        hidden=36, vocab_size=VOCAB, seed=SEED,
    )


@lru_cache(maxsize=None)
def word2vec(name: str, dim: int = 48) -> Word2Vec:
    model = Word2Vec(dim=dim, window=3, seed=SEED)
    return model.train(corpus_tuples(list(corpus(name))), epochs=3)


# ----------------------------------------------------------------------
# Column predicates used by the textual/numerical splits of Tables 4/10/12
# ----------------------------------------------------------------------
def is_numeric_column(table, j) -> bool:
    cells = [c for c in table.column(j) if c.text]
    return bool(cells) and sum(c.is_numeric for c in cells) / len(cells) >= 0.5


def is_textual_column(table, j) -> bool:
    return not is_numeric_column(table, j)


def fmt(result) -> str:
    """Render a TaskResult as the paper's 'MAP/MRR' cells."""
    return f"{result.map_at_k:.2f}/{result.mrr_at_k:.2f}"
