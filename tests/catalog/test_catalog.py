"""Catalog manifest: round-trips, invariants, one-clear-error loads.

The manifest follows the persistence discipline the index backends
established: a load either succeeds or raises **one ValueError** naming
the file and the problem (``FileNotFoundError`` only for "nothing at
this path"), and every invariant `load` enforces — unique names, at
most one default, known kinds — holds for catalogs built in memory
too, so a catalog that saved can always be loaded.
"""

import json

import pytest

from repro.catalog import CATALOG_NAME, CATALOG_VERSION, Catalog, CatalogEntry


def entry(name="tables", path="tables.npz", kind="table", **kwargs):
    return CatalogEntry(name=name, path=path, kind=kind, **kwargs)


class TestRoundTrip:
    def test_save_load_preserves_entries_and_default(self, tmp_path):
        catalog = Catalog(root=tmp_path)
        catalog.add(entry("tables", kind="table"))
        catalog.add(entry("columns", "columns", kind="column",
                          model_id="ckpt-1", default=True))
        written = catalog.save()
        assert written == tmp_path / CATALOG_NAME
        loaded = Catalog.load(tmp_path)
        assert [e.name for e in loaded] == ["tables", "columns"]
        assert loaded.default_name == "columns"
        got = loaded.entries["columns"]
        assert (got.path, got.kind, got.model_id) == ("columns", "column",
                                                      "ckpt-1")

    def test_manifest_is_versioned_stable_json(self, tmp_path):
        catalog = Catalog([entry()], root=tmp_path)
        catalog.save()
        manifest = json.loads((tmp_path / CATALOG_NAME).read_text())
        assert manifest["catalog_version"] == CATALOG_VERSION
        assert manifest["entries"][0]["name"] == "tables"
        # Indented + newline-terminated: the file is meant to live in
        # version control with readable diffs.
        text = (tmp_path / CATALOG_NAME).read_text()
        assert text.endswith("\n") and "\n  " in text

    def test_catalog_directory_is_relocatable(self, tmp_path):
        import shutil

        old = tmp_path / "old"
        catalog = Catalog([entry()], root=old)
        catalog.save()
        new = tmp_path / "moved"
        shutil.move(old, new)
        loaded = Catalog.load(new)
        resolved = loaded.resolve_path(loaded.entries["tables"])
        assert resolved == new / "tables.npz"

    def test_absolute_paths_pass_through(self, tmp_path):
        catalog = Catalog([entry(path="/abs/tables.npz")], root=tmp_path)
        resolved = catalog.resolve_path(catalog.entries["tables"])
        assert str(resolved) == "/abs/tables.npz"

    def test_load_accepts_dir_or_manifest_file(self, tmp_path):
        Catalog([entry()], root=tmp_path).save()
        assert Catalog.load(tmp_path).default_name == "tables"
        assert Catalog.load(tmp_path / CATALOG_NAME).default_name == "tables"


class TestInvariants:
    def test_duplicate_names_are_rejected(self):
        catalog = Catalog([entry()])
        with pytest.raises(ValueError, match="already has an entry named"):
            catalog.add(entry())

    def test_second_default_is_rejected(self):
        catalog = Catalog([entry(default=True)])
        with pytest.raises(ValueError, match="only one entry may be"):
            catalog.add(entry("columns", default=True))

    def test_default_falls_back_to_first_entry(self):
        catalog = Catalog([entry("a"), entry("b")])
        assert catalog.default_name == "a"
        assert Catalog().default_name is None

    def test_set_default_moves_the_flag(self):
        catalog = Catalog([entry("a", default=True), entry("b")])
        assert catalog.set_default("b") == "a"
        assert catalog.default_name == "b"
        assert not catalog.entries["a"].default
        with pytest.raises(KeyError):
            catalog.set_default("nope")

    def test_in_memory_entries_cannot_be_persisted(self, tmp_path):
        catalog = Catalog(root=tmp_path)
        catalog.add(CatalogEntry(name="live", path=None, kind="vector"))
        with pytest.raises(ValueError, match="in-memory only"):
            catalog.save()
        with pytest.raises(ValueError, match="no path to resolve"):
            catalog.resolve_path(catalog.entries["live"])

    def test_rootless_catalog_needs_an_explicit_save_path(self):
        with pytest.raises(ValueError, match="no root"):
            Catalog([entry()]).save()


class TestHandlesSniffing:
    def test_recognises_catalog_dir_and_manifest_file(self, tmp_path):
        Catalog([entry()], root=tmp_path).save()
        assert Catalog.handles(tmp_path)
        assert Catalog.handles(tmp_path / CATALOG_NAME)

    def test_rejects_non_catalogs(self, tmp_path):
        assert not Catalog.handles(tmp_path)
        assert not Catalog.handles(tmp_path / "missing")
        (tmp_path / "index.npz").write_bytes(b"x")
        assert not Catalog.handles(tmp_path / "index.npz")


class TestLoadErrors:
    """Every malformed manifest is one ValueError naming the file and
    the problem; only a missing file is FileNotFoundError."""

    def write(self, tmp_path, payload) -> str:
        path = tmp_path / CATALOG_NAME
        path.write_text(payload if isinstance(payload, str)
                        else json.dumps(payload))
        return str(path)

    def test_missing_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no catalog at"):
            Catalog.load(tmp_path / "nowhere")

    @pytest.mark.parametrize("payload, problem", [
        ("{nope", "not valid JSON"),
        ("[]", "must be a JSON object"),
        ({"catalog_version": "x", "entries": []},
         "'catalog_version' must be a positive integer"),
        ({"catalog_version": CATALOG_VERSION + 1, "entries": []},
         f"this build reads up to v{CATALOG_VERSION}"),
        ({"catalog_version": 1}, "missing the required 'entries' list"),
        ({"entries": ["x"]}, "entry 0 must be an object"),
        ({"entries": [{"path": "p", "kind": "vector"}]},
         "entry 0 needs a non-empty string 'name'"),
        ({"entries": [{"name": "a", "kind": "vector"}]},
         "entry 'a' needs a non-empty string 'path'"),
        ({"entries": [{"name": "a", "path": "p", "kind": "nope"}]},
         "entry 'a'"),
        ({"entries": [{"name": "a", "path": "p", "kind": "vector",
                       "model_id": 7}]},
         "'model_id' must be a string or null"),
        ({"entries": [{"name": "a", "path": "p", "kind": "vector",
                       "default": "yes"}]},
         "'default' must be a boolean"),
        ({"entries": [{"name": "a", "path": "p", "kind": "vector"},
                      {"name": "a", "path": "q", "kind": "vector"}]},
         "already has an entry named 'a'"),
        ({"entries": [{"name": "a", "path": "p", "kind": "vector",
                       "default": True},
                      {"name": "b", "path": "q", "kind": "vector",
                       "default": True}]},
         "only one entry may be the default"),
    ])
    def test_each_failure_is_one_clear_error(self, tmp_path, payload,
                                             problem):
        where = self.write(tmp_path, payload)
        with pytest.raises(ValueError) as caught:
            Catalog.load(tmp_path)
        message = str(caught.value)
        assert problem in message
        assert where in message, "the error must name the manifest file"
