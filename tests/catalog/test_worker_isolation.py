"""Per-worker independence of catalog handles — the invariant the
pre-fork tier (``serve --workers N``, :mod:`repro.serve.prefork`)
leans on.

Each pre-fork worker builds its own :class:`CatalogHandle` after the
fork, so caches, dispatchers, LRU-eviction state, and counters must be
strictly per-handle: nothing one "worker" does may leak into another.
These tests run two handles/servers over the *same saved layout* in
one process — a strictly harsher setting than fork (where copy-on-
write separates even accidental sharing) — and pin that the only thing
the two have in common is the read-only bytes on disk.
"""

from __future__ import annotations

import json

from catutil import make_corpus, save_layout, write_catalog

from repro.catalog import Catalog, CatalogHandle
from repro.serve import ServerThread

from urllib import request as urllib_request

DIM = 12


def _post_query(port: int, payload: dict) -> dict:
    req = urllib_request.Request(
        f"http://127.0.0.1:{port}/query",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib_request.urlopen(req, timeout=30) as response:
        return json.loads(response.read())


def _stats(port: int) -> dict:
    with urllib_request.urlopen(f"http://127.0.0.1:{port}/stats",
                                timeout=30) as response:
        return json.loads(response.read())


def _two_handles(tmp_path) -> tuple[CatalogHandle, CatalogHandle]:
    keys, vectors = make_corpus(n=60, dim=DIM, seed=5)
    path = save_layout(tmp_path, keys, vectors, 2, seed=5, name="shared")
    catalog = write_catalog(tmp_path, {"shared": path}, default="shared")
    return (CatalogHandle(Catalog.load(tmp_path)),
            CatalogHandle(Catalog.load(tmp_path)))


class TestHandleIndependence:
    def test_slots_and_state_are_disjoint_objects(self, tmp_path):
        a, b = _two_handles(tmp_path)
        slot_a = a.get("shared")
        assert slot_a.open
        # Opening through A opened nothing in B.
        assert not b.open_slots()
        slot_b = b.get("shared")
        assert slot_a is not slot_b
        assert slot_a.index is not slot_b.index
        assert slot_a.stats is not slot_b.stats
        # ...while both serve the same bytes.
        assert len(slot_a.index) == len(slot_b.index)

    def test_eviction_in_one_handle_leaves_the_other_open(self, tmp_path):
        """One worker's LRU decision must never close a sibling's
        index: evicting in handle A leaves handle B's slot open and
        serving."""
        a, b = _two_handles(tmp_path)
        slot_a = a.get("shared")
        slot_b = b.get("shared")
        assert a.evict("shared")
        assert not slot_a.open
        assert slot_b.open
        assert len(slot_b.index) == 60
        # And reopening in A is A's own second open, invisible to B.
        a.get("shared")
        assert slot_a.stats.opens == 2
        assert slot_b.stats.opens == 1


class TestServedWorkerIsolation:
    def test_caches_and_counters_never_leak_across_workers(self, tmp_path):
        """Two in-process servers over one saved layout — the same
        shape as two pre-fork workers mmapping one index.  An exact
        repeat inside worker A hits A's cache; the *same* query's
        first arrival at worker B is a miss: no shared cache, no
        shared counters, no cross-talk."""
        keys, vectors = make_corpus(n=60, dim=DIM, seed=7)
        path = save_layout(tmp_path, keys, vectors, 2, seed=7,
                           name="shared")
        from repro.index import open_index

        query = {"vector": vectors[0].tolist(), "k": 5}
        with ServerThread(open_index(path), max_wait_ms=0.5) as worker_a, \
                ServerThread(open_index(path), max_wait_ms=0.5) as worker_b:
            first_a = _post_query(worker_a.port, query)
            repeat_a = _post_query(worker_a.port, query)
            first_b = _post_query(worker_b.port, query)

            assert first_a == repeat_a == first_b  # same bytes served

            cache_a = next(iter(
                _stats(worker_a.port)["indexes"].values()))["cache"]
            cache_b = next(iter(
                _stats(worker_b.port)["indexes"].values()))["cache"]
        # A: one miss then one exact hit.  B: its OWN first miss — a
        # shared cache would have made it a hit.
        assert cache_a["misses"] == 1 and cache_a["exact_hits"] == 1
        assert cache_b["misses"] == 1 and cache_b["exact_hits"] == 0
        # Counters are per-worker too: neither saw the other's traffic.
        assert cache_a["exact_hits"] + cache_a["misses"] == 2
        assert cache_b["exact_hits"] + cache_b["misses"] == 1
