"""Handle lifecycle: lazy opens, LRU eviction, reopen ≡ first-open.

Eviction is supposed to be *purely a cache decision*: because entries
open memory-mapped, closing and reopening an index must change nothing
a caller can observe except the open/closed flag and the counters.
The property test pins that across layouts (1/2/5 shards) × mmap
on/off with tie-dense corpora — the regime where a reopen that lost
insertion order or shard assignment would scramble a ranking.
"""

import pytest
from catutil import make_corpus, save_layout, write_catalog
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.catalog import Catalog, CatalogEntry, CatalogHandle
from repro.index import VectorIndex, open_index

DIM = 12


def two_entry_handle(tmp_path, n_shards=1, **kwargs) -> CatalogHandle:
    layouts = {}
    for position, name in enumerate(("alpha", "beta", "gamma")):
        keys, vectors = make_corpus(n=45, dim=DIM, seed=position)
        layouts[name] = save_layout(tmp_path, keys, vectors, n_shards,
                                    seed=position, name=name)
    catalog = write_catalog(tmp_path, layouts, default="alpha")
    return CatalogHandle(catalog, **kwargs)


class TestLazyOpen:
    def test_nothing_opens_until_routed_to(self, tmp_path):
        handle = two_entry_handle(tmp_path)
        assert not handle.open_slots()
        slot = handle.get("beta")
        assert slot.open and slot.stats.opens == 1
        assert [s.name for s in handle.open_slots()] == ["beta"]

    def test_none_routes_to_the_default(self, tmp_path):
        handle = two_entry_handle(tmp_path)
        assert handle.get().name == "alpha"

    def test_unknown_name_is_key_error(self, tmp_path):
        handle = two_entry_handle(tmp_path)
        with pytest.raises(KeyError):
            handle.get("nope")

    def test_repeated_gets_do_not_reopen(self, tmp_path):
        handle = two_entry_handle(tmp_path)
        first = handle.get("alpha")
        again = handle.get("alpha")
        assert again is first and again.index is first.index
        assert first.stats.opens == 1

    def test_empty_catalog_is_rejected_with_a_hint(self, tmp_path):
        with pytest.raises(ValueError, match="catalog add"):
            CatalogHandle(Catalog(root=tmp_path))

    def test_bad_max_open_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_open"):
            two_entry_handle(tmp_path, max_open=0)

    def test_bad_dispatch_knobs_fail_eagerly(self, tmp_path):
        handle = two_entry_handle(tmp_path)
        with pytest.raises(ValueError, match="max_batch"):
            handle.configure_dispatch(max_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            handle.configure_dispatch(max_wait_ms=-1)
        with pytest.raises(ValueError, match="jobs"):
            handle.configure_dispatch(jobs=0)


class TestLruEviction:
    def test_cap_evicts_least_recently_used(self, tmp_path):
        handle = two_entry_handle(tmp_path, max_open=2)
        handle.get("alpha")
        handle.get("beta")
        handle.get("alpha")          # beta is now the LRU
        handle.get("gamma")          # over cap: beta goes
        open_names = {slot.name for slot in handle.open_slots()}
        assert open_names == {"alpha", "gamma"}
        assert handle.slots["beta"].stats.evictions == 1
        assert handle.slots["beta"].dispatcher is None

    def test_reopen_counts_a_second_open(self, tmp_path):
        handle = two_entry_handle(tmp_path, max_open=1)
        handle.get("alpha")
        handle.get("beta")
        slot = handle.get("alpha")
        assert slot.stats.opens == 2
        assert slot.stats.evictions == 1

    def test_stats_survive_eviction(self, tmp_path):
        handle = two_entry_handle(tmp_path, max_open=1)
        slot = handle.get("alpha")
        slot.stats.record_queries(7)
        handle.get("beta")
        assert not handle.slots["alpha"].open
        assert handle.slots["alpha"].stats.queries_total == 7

    def test_no_cap_means_no_eviction(self, tmp_path):
        handle = two_entry_handle(tmp_path)
        for name in ("alpha", "beta", "gamma"):
            handle.get(name)
        assert len(handle.open_slots()) == 3

    def test_busy_slots_are_never_evicted(self, tmp_path):
        """A slot whose dispatcher has work in flight rides out the cap
        (temporary over-cap) instead of being closed under a GEMM."""
        class BusyDispatcher:
            n_pending = 1
            n_inflight = 0

        handle = two_entry_handle(tmp_path, max_open=1)
        busy = handle.get("alpha")
        busy.dispatcher = BusyDispatcher()
        other = handle.get("beta")
        assert busy.open and other.open        # over cap, by design
        assert not handle.evict("alpha")       # explicit evict refuses too
        busy.dispatcher = None
        handle.get("gamma")                    # idle now: cap re-asserts
        assert not handle.slots["alpha"].open or \
            not handle.slots["beta"].open

    def test_explicit_evict(self, tmp_path):
        handle = two_entry_handle(tmp_path)
        handle.get("alpha")
        assert handle.evict("alpha") is True
        assert handle.evict("alpha") is False   # already closed


class TestBareIndexWrapper:
    def test_for_index_pins_a_preopened_single_entry(self):
        keys, vectors = make_corpus(n=30, dim=DIM, seed=9)
        index = VectorIndex(dim=DIM, seed=0)
        index.add_batch(keys, vectors)
        handle = CatalogHandle.for_index(index)
        slot = handle.get()
        assert slot.index is index and slot.pinned
        assert handle.default_name == "default"
        assert len(handle) == 1

    def test_pinned_slot_is_never_evicted(self):
        keys, vectors = make_corpus(n=30, dim=DIM, seed=9)
        index = VectorIndex(dim=DIM, seed=0)
        index.add_batch(keys, vectors)
        handle = CatalogHandle.for_index(index)
        assert handle.evict("default") is False
        assert handle.get().index is index


class TestStaleCatalogErrors:
    def test_kind_mismatch_names_the_stale_catalog(self, tmp_path):
        keys, vectors = make_corpus(n=30, dim=DIM, seed=1)
        path = save_layout(tmp_path, keys, vectors, 1)
        catalog = Catalog([CatalogEntry(name="x", path=path.name,
                                        kind="table")], root=tmp_path)
        handle = CatalogHandle(catalog)
        with pytest.raises(ValueError, match="catalog is stale"):
            handle.get("x")

    def test_model_mismatch_names_the_stale_catalog(self, tmp_path):
        keys, vectors = make_corpus(n=30, dim=DIM, seed=1)
        index = VectorIndex(dim=DIM, seed=0)
        index.model_id = "ckpt-new"
        index.add_batch(keys, vectors)
        index.save(tmp_path / "index.npz")
        catalog = Catalog([CatalogEntry(name="x", path="index.npz",
                                        kind="vector",
                                        model_id="ckpt-old")],
                          root=tmp_path)
        with pytest.raises(ValueError, match="catalog is stale"):
            CatalogHandle(catalog).get("x")

    def test_missing_layout_propagates_file_not_found(self, tmp_path):
        catalog = Catalog([CatalogEntry(name="x", path="gone.npz",
                                        kind="vector")], root=tmp_path)
        with pytest.raises(FileNotFoundError):
            CatalogHandle(catalog).get("x")


class TestReopenEqualsFirstOpen:
    """The eviction-is-only-a-cache-decision property: rankings from a
    reopened slot are identical — keys, bit-equal scores, tie order —
    to its first open *and* to an eager offline open."""

    @pytest.fixture(scope="class")
    def layouts(self, tmp_path_factory):
        """(n_shards, mmap) -> (handle factory inputs) built once; the
        hypothesis examples reuse them."""
        built = {}
        for n_shards in (1, 2, 5):
            tmp = tmp_path_factory.mktemp(f"shards{n_shards}")
            paths = {}
            for position, name in enumerate(("left", "right")):
                keys, vectors = make_corpus(n=60, dim=DIM,
                                            seed=10 + position)
                paths[name] = save_layout(tmp, keys, vectors, n_shards,
                                          seed=10 + position, name=name)
            catalog = write_catalog(tmp, paths, default="left")
            built[n_shards] = (catalog, paths)
        return built

    @settings(max_examples=30, deadline=None)
    @given(n_shards=st.sampled_from([1, 2, 5]), mmap=st.booleans(),
           seed=st.integers(0, 2**16), k=st.integers(1, 8),
           churn=st.lists(st.sampled_from(["left", "right"]),
                          min_size=2, max_size=8))
    def test_rankings_survive_eviction_churn(self, layouts, n_shards, mmap,
                                             seed, k, churn):
        catalog, paths = layouts[n_shards]
        rng = np.random.default_rng(seed)
        queries = rng.standard_normal((3, DIM))
        handle = CatalogHandle(catalog, mmap=mmap, max_open=1)

        def rankings(name):
            hits_lists = handle.get(name).index.query_many(queries, k=k)
            return [[(hit.key, hit.score) for hit in hits]
                    for hits in hits_lists]

        # Eager offline truth (never evicted, never mmapped).
        want = {name: [[(hit.key, hit.score) for hit in hits]
                       for hits in open_index(path).query_many(queries, k=k)]
                for name, path in paths.items()}
        first = {name: rankings(name) for name in ("left", "right")}
        assert first == want
        # Churn: with max_open=1 every alternation is an evict+reopen.
        for name in churn:
            assert rankings(name) == want[name]
        opens = sum(handle.slots[name].stats.opens
                    for name in ("left", "right"))
        assert opens >= 2, "the churn must actually have reopened"
