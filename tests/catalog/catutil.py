"""Shared helpers for the catalog test layer.

Same corpus discipline as the serving tests: seeded gaussian vectors
with duplicate rows (dense score ties), saved as either layout, so a
handle that reopened the wrong thing — or reopened the right thing
differently — cannot hide behind unique scores.
"""

from __future__ import annotations

import numpy as np

from repro.catalog import Catalog, CatalogEntry
from repro.index import IndexSpec, ShardedIndex, VectorIndex

#: Each distinct vector appears this many times (distinct keys).
DUP_EVERY = 3


def make_corpus(n: int = 120, dim: int = 12, seed: int = 0):
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(((n + DUP_EVERY - 1) // DUP_EVERY, dim))
    vectors = np.repeat(base, DUP_EVERY, axis=0)[:n]
    return [f"t{i:05d}" for i in range(n)], vectors


def save_layout(tmp_path, keys, vectors, n_shards: int, seed: int = 0,
                name: str = "index"):
    """Persist as a single ``.npz`` (``n_shards == 1``) or a sharded
    directory; returns the saved path."""
    dim = vectors.shape[1]
    if n_shards == 1:
        index = VectorIndex(dim=dim, seed=seed)
        index.add_batch(keys, vectors)
        return index.save(tmp_path / f"{name}.npz")
    sharded = ShardedIndex.create(
        IndexSpec(kind="vector", dim=dim, seed=seed), n_shards)
    sharded.add_batch(keys, vectors)
    return sharded.save(tmp_path / name)


def write_catalog(root, layouts: dict[str, object],
                  default: str | None = None) -> Catalog:
    """A saved catalog whose entries point at ``layouts`` (name ->
    already-saved path inside ``root``)."""
    catalog = Catalog(root=root)
    for name, path in layouts.items():
        catalog.add(CatalogEntry(name=name,
                                 path=str(path.relative_to(root)),
                                 kind="vector", default=name == default))
    catalog.save()
    return catalog
