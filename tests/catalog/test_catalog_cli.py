"""`repro.cli catalog init/add/list`: the catalog's command-line face.

`add` is the interesting one: it reads the entry's kind and checkpoint
from the saved layout itself (manifest/payload peek, no vector data),
so a catalog written by the CLI can never disagree with the indexes it
names — and every failure keeps the stderr + exit-2 contract the other
lifecycle commands follow.
"""

import json

import pytest
from catutil import make_corpus, save_layout

from repro.catalog import CATALOG_NAME, Catalog
from repro.cli import main
from repro.index import VectorIndex


@pytest.fixture()
def saved_index(tmp_path):
    keys, vectors = make_corpus(n=30, dim=8, seed=2)
    return save_layout(tmp_path, keys, vectors, 1)


class TestInit:
    def test_init_writes_an_empty_catalog(self, tmp_path, capsys):
        target = tmp_path / "cat"
        assert main(["catalog", "init", str(target)]) == 0
        assert "Initialised empty catalog" in capsys.readouterr().out
        assert len(Catalog.load(target)) == 0

    def test_init_refuses_to_clobber(self, tmp_path, capsys):
        target = tmp_path / "cat"
        assert main(["catalog", "init", str(target)]) == 0
        assert main(["catalog", "init", str(target)]) == 2
        assert "already exists" in capsys.readouterr().err


class TestAdd:
    def test_add_records_kind_and_model_from_the_layout(self, tmp_path,
                                                        capsys):
        keys, vectors = make_corpus(n=24, dim=8, seed=3)
        index = VectorIndex(dim=8, seed=0)
        index.model_id = "ckpt-xyz"
        index.add_batch(keys, vectors)
        index.save(tmp_path / "vecs.npz")
        assert main(["catalog", "init", str(tmp_path)]) == 0
        assert main(["catalog", "add", str(tmp_path), "--name", "vecs",
                     "--path", "vecs.npz", "--default"]) == 0
        out = capsys.readouterr().out
        assert "Added 'vecs'" in out and "(default)" in out
        entry = Catalog.load(tmp_path).entries["vecs"]
        assert entry.kind == "vector"
        assert entry.model_id == "ckpt-xyz"
        assert entry.default

    def test_add_to_sharded_layout_and_second_entry(self, tmp_path):
        keys, vectors = make_corpus(n=40, dim=8, seed=4)
        save_layout(tmp_path, keys, vectors, 3, name="sharded")
        save_layout(tmp_path, keys, vectors, 1, name="single")
        assert main(["catalog", "init", str(tmp_path)]) == 0
        assert main(["catalog", "add", str(tmp_path), "--name", "a",
                     "--path", "sharded"]) == 0
        assert main(["catalog", "add", str(tmp_path), "--name", "b",
                     "--path", "single.npz"]) == 0
        catalog = Catalog.load(tmp_path)
        assert set(e.name for e in catalog) == {"a", "b"}
        assert catalog.default_name == "a"   # first entry, no explicit flag

    def test_default_flag_moves_the_default(self, tmp_path, saved_index):
        assert main(["catalog", "init", str(tmp_path)]) == 0
        assert main(["catalog", "add", str(tmp_path), "--name", "a",
                     "--path", "index.npz", "--default"]) == 0
        keys, vectors = make_corpus(n=20, dim=8, seed=5)
        save_layout(tmp_path, keys, vectors, 1, name="other")
        assert main(["catalog", "add", str(tmp_path), "--name", "b",
                     "--path", "other.npz", "--default"]) == 0
        assert Catalog.load(tmp_path).default_name == "b"

    def test_add_without_init_hints_at_init(self, tmp_path, capsys):
        assert main(["catalog", "add", str(tmp_path / "nope"),
                     "--name", "x", "--path", "y.npz"]) == 2
        assert "catalog init" in capsys.readouterr().err

    def test_add_missing_layout_is_exit_2_with_resolution_hint(
            self, tmp_path, capsys):
        assert main(["catalog", "init", str(tmp_path)]) == 0
        assert main(["catalog", "add", str(tmp_path), "--name", "x",
                     "--path", "gone.npz"]) == 2
        err = capsys.readouterr().err
        assert "cannot add 'x'" in err
        assert "resolve against the catalog directory" in err

    def test_add_duplicate_name_is_exit_2(self, tmp_path, saved_index,
                                          capsys):
        assert main(["catalog", "init", str(tmp_path)]) == 0
        args = ["catalog", "add", str(tmp_path), "--name", "x",
                "--path", "index.npz"]
        assert main(args) == 0
        assert main(args) == 2
        assert "already has an entry named" in capsys.readouterr().err

    def test_add_corrupt_layout_is_exit_2(self, tmp_path, capsys):
        assert main(["catalog", "init", str(tmp_path)]) == 0
        (tmp_path / "junk.npz").write_bytes(b"not an archive")
        assert main(["catalog", "add", str(tmp_path), "--name", "x",
                     "--path", "junk.npz"]) == 2
        assert "cannot add 'x'" in capsys.readouterr().err


class TestList:
    def test_list_shows_specs_and_default_marker(self, tmp_path,
                                                 saved_index, capsys):
        assert main(["catalog", "init", str(tmp_path)]) == 0
        assert main(["catalog", "add", str(tmp_path), "--name", "vecs",
                     "--path", "index.npz", "--default"]) == 0
        capsys.readouterr()
        assert main(["catalog", "list", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 entry" in out
        assert "* vecs" in out
        assert "kind=vector dim=8" in out and "format=v" in out

    def test_list_marks_unreadable_entries_without_failing(self, tmp_path,
                                                           saved_index,
                                                           capsys):
        assert main(["catalog", "init", str(tmp_path)]) == 0
        assert main(["catalog", "add", str(tmp_path), "--name", "vecs",
                     "--path", "index.npz"]) == 0
        saved_index.unlink()
        capsys.readouterr()
        assert main(["catalog", "list", str(tmp_path)]) == 0
        assert "UNREADABLE" in capsys.readouterr().out

    def test_list_without_catalog_is_exit_2(self, tmp_path, capsys):
        assert main(["catalog", "list", str(tmp_path)]) == 2
        assert "catalog init" in capsys.readouterr().err

    def test_list_broken_manifest_is_exit_2(self, tmp_path, capsys):
        (tmp_path / CATALOG_NAME).write_text(json.dumps({"entries": "x"}))
        assert main(["catalog", "list", str(tmp_path)]) == 2
        assert "entries" in capsys.readouterr().err
