"""Smoke test for the catalog-serving benchmark harness.

Runs ``benchmarks/bench_catalog.py`` at a miniature configuration —
the harness asserts every served ranking (direct, routed, and under
eviction churn) equals the offline ``query_many`` result, so passing
here means the equivalences held against a real server.  The <5%
routing-overhead budget is deliberately *not* asserted at smoke scale
(single-core CI noise); the tracked ``results/BENCH_catalog.json``
carries the full-scale measurement against its recorded budget.
"""

import importlib.util
import json
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


def load_module(name: str):
    spec = importlib.util.spec_from_file_location(name,
                                                  BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_catalog_smoke(tmp_path):
    bench = load_module("bench_catalog")
    report = bench.run(n_vectors=200, dim=16, n_queries=24, k=5,
                       n_clients=2, workdir=tmp_path)
    assert report["benchmark"] == "catalog"
    modes = [(r["op"], r["mode"]) for r in report["results"]]
    assert modes == [("route-overhead", "direct"),
                     ("route-overhead", "routed"),
                     ("alternating", "max_open=1"),
                     ("alternating", "max_open=2")]
    for record in report["results"]:
        assert record["seconds"] >= 0 and record["qps"] > 0
    routed = next(r for r in report["results"] if r["mode"] == "routed")
    assert routed["budget_pct"] == 5.0
    assert isinstance(routed["overhead_pct"], float)
    capped = next(r for r in report["results"]
                  if r["mode"] == "max_open=1")
    roomy = next(r for r in report["results"]
                 if r["mode"] == "max_open=2")
    # Cache behaviour, not speed: the cap-1 run must actually have
    # churned, and with room for both entries nothing is evicted after
    # the two boot opens.
    assert capped["evictions"] >= 1
    assert capped["opens"] >= 3
    assert roomy["evictions"] == 0
    assert roomy["opens"] == 2
    # JSON-serializable, as the BENCH_*.json tracking requires.
    (tmp_path / "BENCH_catalog.json").write_text(json.dumps(report))
    text = bench.render(report).to_text()
    assert "route-overhead" in text and "max_open=1" in text
