"""Multi-process ``encode_corpus``: equivalence with the serial path.

The contract is *same results as serial* — not merely close: the worker
scatter ships the exact batches the serial path builds and gathers them
back in order, so every pooled vector, every ``CellRef``, and every
``StoreStats`` counter must be bit-identical.
"""

import numpy as np
import pytest

from repro.core import TabBiNConfig, TabBiNEmbedder
from repro.datasets import load_dataset
from repro.index import default_workers
from repro.tables import Table


@pytest.fixture(scope="module")
def big_corpus():
    return load_dataset("cancerkg", n_tables=30, seed=1)


@pytest.fixture(scope="module")
def big_embedder(big_corpus):
    emb, _stats = TabBiNEmbedder.build(
        big_corpus, config=TabBiNConfig.tiny(), steps=0, vocab_size=300,
        seed=1,
    )
    return emb


def snapshot(store):
    """Deep copy of the cache + stats for cross-run comparison."""
    cache = {key: [(ref, vector.copy()) for ref, vector in entry]
             for key, entry in store._cache.items()}
    return cache, store.stats.as_dict()


def assert_identical(a, b):
    cache_a, stats_a = a
    cache_b, stats_b = b
    assert stats_a == stats_b
    assert set(cache_a) == set(cache_b)
    for key in cache_a:
        entry_a, entry_b = cache_a[key], cache_b[key]
        assert len(entry_a) == len(entry_b)
        for (ref_a, vec_a), (ref_b, vec_b) in zip(entry_a, entry_b):
            assert ref_a == ref_b
            assert vec_a.dtype == vec_b.dtype
            assert (vec_a == vec_b).all()      # bit-identical, not allclose


class TestWorkersEquivalence:
    def test_workers2_bit_identical_on_30_tables(self, big_embedder,
                                                 big_corpus):
        assert len(big_corpus) == 30
        big_embedder.clear_cache()
        encoded_serial = big_embedder.precompute(big_corpus, batch_size=8)
        serial = snapshot(big_embedder.store)
        big_embedder.clear_cache()
        encoded_parallel = big_embedder.precompute(big_corpus, batch_size=8,
                                                   workers=2)
        parallel = snapshot(big_embedder.store)
        assert encoded_serial == encoded_parallel
        assert_identical(serial, parallel)

    def test_workers1_never_spawns_a_pool(self, big_embedder, big_corpus,
                                          monkeypatch):
        import repro.index.store as store_module

        def boom(*args, **kwargs):
            raise AssertionError("workers=1 must stay in-process")

        monkeypatch.setattr(store_module, "ProcessPoolExecutor", boom)
        big_embedder.clear_cache()
        big_embedder.precompute(big_corpus[:2], workers=1)

    def test_embeddings_downstream_match(self, big_embedder, big_corpus):
        """End to end: composite table embeddings from a parallel encode
        equal the serial ones."""
        big_embedder.clear_cache()
        big_embedder.precompute(big_corpus, workers=2)
        parallel = [big_embedder.table_embedding(t, variant="tblcomp1")
                    for t in big_corpus[:5]]
        big_embedder.clear_cache()
        big_embedder.precompute(big_corpus)
        serial = [big_embedder.table_embedding(t, variant="tblcomp1")
                  for t in big_corpus[:5]]
        for a, b in zip(parallel, serial):
            assert (a == b).all()


class TestDegenerateCases:
    def test_empty_corpus(self, big_embedder):
        big_embedder.clear_cache()
        assert big_embedder.store.encode_corpus([], workers=2) == 0
        assert len(big_embedder.store) == 0

    def test_single_table(self, big_embedder, big_corpus):
        big_embedder.clear_cache()
        encoded = big_embedder.store.encode_corpus(big_corpus[:1], workers=2)
        assert encoded == 4                    # one table, four segments
        serial_entries = len(big_embedder.store)
        big_embedder.clear_cache()
        big_embedder.store.encode_corpus(big_corpus[:1])
        assert len(big_embedder.store) == serial_entries

    def test_duplicate_fingerprints_encoded_once(self, big_embedder):
        big_embedder.clear_cache()
        t1 = Table("dup", [["a", "b"]], [["1", "2"]])
        t2 = Table("dup", [["a", "b"]], [["1", "2"]])
        assert t1 is not t2
        encoded = big_embedder.store.encode_corpus([t1, t2] * 3,
                                                   segments=("row",),
                                                   workers=2)
        assert encoded == 1
        assert big_embedder.store.stats.tables_encoded == 1

    def test_already_cached_corpus_is_noop(self, big_embedder, big_corpus):
        big_embedder.clear_cache()
        big_embedder.precompute(big_corpus[:3], workers=2)
        assert big_embedder.precompute(big_corpus[:3], workers=2) == 0

    def test_invalid_workers_rejected(self, big_embedder, big_corpus):
        with pytest.raises(ValueError):
            big_embedder.store.encode_corpus(big_corpus[:1], workers=0)
        with pytest.raises(ValueError):
            big_embedder.store.encode_corpus(big_corpus[:1], workers=-2)


def test_default_workers_is_positive():
    assert default_workers() >= 1
