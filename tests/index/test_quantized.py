"""Quantized int8 tier: exact-equivalence, recall, and lifecycle.

The tier's whole contract is *rankings never change*: the int8
shortlist is a prefilter in front of the existing exact einsum rerank,
so every quantized query must reproduce the unquantized ranking bit
for bit — across both layouts, mmap on/off, shard counts, duplicate-
vector tie-dense corpora, and k values straddling the brute-force
fallback boundary.  The property layer (hypothesis) drives exactly
that grid.

The lifecycle layer pins the freshness invariant: an attached sidecar
is *always* consistent with the fp vectors — add/remove/compact/merge/
rebalance either extend it in lockstep or rebuild it, and ``save()``
writes it iff present, so stale int8 next to mutated fp vectors is
structurally impossible.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import IndexSpec, ShardedIndex, VectorIndex, open_index
from repro.retrieval import (
    MARGIN,
    OVERFETCH,
    approx_scores,
    quantize_rows,
    shortlist_size,
    tie_inclusive_cut,
)

DIM = 16


def tie_dense_corpus(n, dim=DIM, seed=0, dup_every=3):
    """Vectors where every ``dup_every``-th row repeats — byte-equal
    duplicates produce exact score ties, the hardest case for any
    shortlist cut."""
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(((n + dup_every - 1) // dup_every, dim))
    return np.repeat(base, dup_every, axis=0)[:n]


def rankings(index, queries, k):
    return [[(hit.key, hit.score) for hit in hits]
            for hits in index.query_many(queries, k=k)]


def assert_sidecar_fresh(index):
    """The attached sidecar equals a from-scratch requantization of the
    current fp vectors (the freshness invariant)."""
    shards = getattr(index, "shards", [index])
    for shard in shards:
        vectors = (np.stack(shard.lsh._vectors) if len(shard.lsh)
                   else np.zeros((0, shard.dim)))
        want = quantize_rows(vectors)
        got = shard.lsh.quantized_arrays()
        for got_arr, want_arr in zip(got, want):
            assert np.array_equal(got_arr, want_arr)


class TestKernels:
    def test_shortlist_size(self):
        assert shortlist_size(10) == max(10 * OVERFETCH, 10 + MARGIN)
        assert shortlist_size(100, overfetch=4, margin=32) == 400
        assert shortlist_size(3, overfetch=2, margin=32) == 35
        assert shortlist_size(1, overfetch=1, margin=0) == 1

    @pytest.mark.parametrize("kwargs", [
        {"k": 0}, {"k": -1},
        {"k": 5, "overfetch": 0},
        {"k": 5, "margin": -1},
    ])
    def test_shortlist_size_validates(self, kwargs):
        with pytest.raises(ValueError):
            shortlist_size(**kwargs)

    def test_quantize_rows_shapes_and_dtypes(self):
        matrix = np.random.default_rng(0).standard_normal((7, DIM))
        q8, scales, norms = quantize_rows(matrix)
        assert q8.shape == matrix.shape and q8.dtype == np.int8
        assert scales.shape == (7,) and scales.dtype == np.float32
        assert norms.shape == (7,) and norms.dtype == np.float32
        # Symmetric quantization saturates at ±127 and reconstructs
        # each component to within half a quantization step.
        assert np.abs(q8).max() <= 127
        err = np.abs(matrix - q8.astype(float) * scales[:, None].astype(float))
        assert (err <= scales[:, None] / 2 + 1e-12).all()

    def test_duplicate_rows_quantize_identically(self):
        """Byte-equal fp rows must get byte-equal int8 rows whether
        quantized together or separately — duplicate ties depend on it."""
        row = np.random.default_rng(1).standard_normal(DIM)
        bulk_q8, bulk_scales, _ = quantize_rows(np.stack([row, row, row]))
        solo_q8, solo_scales, _ = quantize_rows(row[None, :])
        assert np.array_equal(bulk_q8[0], bulk_q8[2])
        assert np.array_equal(bulk_q8[0], solo_q8[0])
        assert bulk_scales[0] == solo_scales[0]

    def test_zero_row_quantizes_to_zeros(self):
        q8, scales, norms = quantize_rows(np.zeros((1, DIM)))
        assert not q8.any() and scales[0] == 0.0 and norms[0] == 0.0

    def test_quantize_rows_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            quantize_rows(np.zeros(DIM))

    def test_approx_scores_zero_norm_scores_zero(self):
        corpus = np.vstack([np.zeros(DIM),
                            np.ones(DIM)])
        q8, scales, norms = quantize_rows(corpus)
        queries_q8, _, _ = quantize_rows(np.ones((1, DIM)))
        scores = approx_scores(q8, scales, norms, queries_q8)
        assert scores.shape == (2, 1)
        assert scores[0, 0] == 0.0
        assert scores[1, 0] > 0.0

    def test_approx_scores_order_matches_cosine_on_clean_data(self):
        """On well-separated vectors the int8 ordering matches cosine —
        the shortlist would keep any top-k even at overfetch 1."""
        rng = np.random.default_rng(2)
        corpus = rng.standard_normal((50, DIM))
        query = rng.standard_normal(DIM)
        q8, scales, norms = quantize_rows(corpus)
        queries_q8, _, _ = quantize_rows(query[None, :])
        approx = approx_scores(q8, scales, norms, queries_q8)[:, 0]
        exact = corpus @ query / np.linalg.norm(corpus, axis=1)
        # Spearman-style check: the top-5 sets agree.
        assert set(np.argsort(-approx)[:5]) == set(np.argsort(-exact)[:5])

    def test_tie_inclusive_cut_keeps_all_tied_candidates(self):
        scores = np.array([3.0, 1.0, 2.0, 2.0, 2.0, 0.5], dtype=np.float32)
        keep = tie_inclusive_cut(scores, 2)
        # m=2 lands on the 2.0 tie: every 2.0 stays in.
        assert keep.tolist() == [True, False, True, True, True, False]
        assert tie_inclusive_cut(scores, 10).all()
        with pytest.raises(ValueError):
            tie_inclusive_cut(scores, 0)


class TestEquivalence:
    def test_quantize_alone_changes_nothing(self):
        vectors = tie_dense_corpus(60)
        keys = [f"k{i}" for i in range(60)]
        plain = VectorIndex(dim=DIM, seed=0)
        plain.add_batch(keys, vectors)
        quant = VectorIndex(dim=DIM, seed=0)
        quant.add_batch(keys, vectors)
        quant.quantize()        # sidecar attached but scoring not enabled
        queries = np.vstack([vectors[:3],
                             np.random.default_rng(9).standard_normal(
                                 (3, DIM))])
        assert rankings(quant, queries, 8) == rankings(plain, queries, 8)
        assert not quant.use_quantized

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_quantized_rankings_bit_identical(self, tmp_path_factory, data):
        """The tentpole property: shards {1,2,5} × mmap on/off ×
        tie-dense corpora × k across the brute-force-fallback boundary
        — quantized rankings == unquantized, keys and scores both."""
        seed = data.draw(st.integers(0, 2**16), label="seed")
        n = data.draw(st.integers(4, 48), label="n")
        dup_every = data.draw(st.sampled_from([1, 2, 3]), label="dup_every")
        n_shards = data.draw(st.sampled_from([1, 2, 5]), label="shards")
        overfetch = data.draw(st.sampled_from([1, 2, OVERFETCH]),
                              label="overfetch")
        # margin >= MARGIN keeps the shortlist a superset of every
        # candidate pool at the k values queried below (k >= total-1,
        # so k + 32 > total): in that regime equivalence is a hard
        # guarantee, not a statistical one, and hypothesis can't
        # manufacture a near-tie that slips past a zero-slack cut.
        # Tighter shortlists that actually prune are covered by the
        # fixed-seed mmap test and the recall monitor.
        margin = data.draw(st.sampled_from([MARGIN, MARGIN + 16]),
                           label="margin")
        vectors = tie_dense_corpus(n, seed=seed, dup_every=dup_every)
        keys = [f"k{i:04d}" for i in range(n)]

        plain = ShardedIndex.create(
            IndexSpec(kind="vector", dim=DIM, seed=0), n_shards)
        plain.add_batch(keys, vectors)
        quant = ShardedIndex.create(
            IndexSpec(kind="vector", dim=DIM, seed=0), n_shards)
        quant.add_batch(keys, vectors)
        quant.quantize()
        quant.enable_quantized(overfetch=overfetch, margin=margin)

        rng = np.random.default_rng(seed + 1)
        queries = np.vstack([vectors[:2], rng.standard_normal((2, DIM))])
        total = len(plain)
        # k across the global fallback boundary — the shortlist must
        # not perturb the candidate counts that decision reads.
        for k in (max(1, total - 1), total, total + 1):
            assert rankings(quant, queries, k) == rankings(plain, queries, k)

        # Persistence: the int8 members round-trip and the reopened
        # index (both mmap modes) still matches exactly.
        tmp_path = tmp_path_factory.mktemp("quant")
        path = quant.save(tmp_path / "layout")
        for mmap in (False, True):
            reopened = open_index(path, mmap=mmap, quantized=True)
            reopened.enable_quantized(overfetch=overfetch, margin=margin)
            assert rankings(reopened, queries, max(1, total - 1)) == \
                rankings(plain, queries, max(1, total - 1))

    def test_recall_at_shortlist_never_misses_topk(self):
        """Monitor: at the default overfetch, the tie-inclusive int8
        shortlist contains every true top-k candidate (margin pinned to
        0 so the overfetch factor itself is what's being measured)."""
        rng = np.random.default_rng(7)
        corpus = tie_dense_corpus(240, seed=7)
        q8, scales, norms = quantize_rows(corpus)
        queries = rng.standard_normal((20, DIM))
        exact = (corpus @ queries.T
                 / np.linalg.norm(corpus, axis=1)[:, None])
        queries_q8, _, _ = quantize_rows(queries)
        approx = approx_scores(q8, scales, norms, queries_q8)
        k = 10
        m = shortlist_size(k, overfetch=OVERFETCH, margin=0)
        misses = 0
        for q in range(queries.shape[0]):
            keep = tie_inclusive_cut(approx[:, q], m)
            true_topk = np.argsort(-exact[:, q], kind="stable")[:k]
            misses += int(not keep[true_topk].all())
        assert misses == 0, (f"shortlist missed a true top-{k} candidate "
                             f"in {misses}/{queries.shape[0]} queries at "
                             f"overfetch={OVERFETCH}")


class TestEnableSurface:
    def test_enable_without_sidecar_names_the_retrofit(self):
        index = VectorIndex(dim=DIM, seed=0)
        with pytest.raises(ValueError, match="quantize"):
            index.enable_quantized()

    def test_enable_validates_knobs(self):
        index = VectorIndex(dim=DIM, seed=0)
        index.quantize()
        with pytest.raises(ValueError):
            index.enable_quantized(overfetch=0)
        with pytest.raises(ValueError):
            index.enable_quantized(margin=-1)
        index.enable_quantized(overfetch=1, margin=0)
        assert index.use_quantized
        index.disable_quantized()
        assert index.quantized and not index.use_quantized

    def test_sharded_enable_rejects_partial_quantization(self):
        sharded = ShardedIndex.create(
            IndexSpec(kind="vector", dim=DIM, seed=0), 3)
        vectors = tie_dense_corpus(12)
        sharded.add_batch([f"k{i}" for i in range(12)], vectors)
        sharded.shards[1].quantize()
        with pytest.raises(ValueError):
            sharded.enable_quantized()
        sharded.quantize()
        sharded.enable_quantized()
        assert sharded.use_quantized

    def test_open_index_quantized_flag(self, tmp_path):
        index = VectorIndex(dim=DIM, seed=0)
        index.add_batch(["a", "b"], tie_dense_corpus(2))
        plain_path = index.save(tmp_path / "plain.npz")
        with pytest.raises(ValueError, match="quantize"):
            open_index(plain_path, quantized=True)
        index.quantize()
        quant_path = index.save(tmp_path / "quant.npz")
        opened = open_index(quant_path, quantized=True)
        assert opened.quantized and opened.use_quantized
        # Unquantized open of a quantized file ignores the sidecar
        # scoring-wise but still loads it (zero-cost under mmap).
        assert not open_index(quant_path).use_quantized


class TestLifecycleFreshness:
    def _build(self, n=30, n_shards=None, seed=0):
        vectors = tie_dense_corpus(n, seed=seed)
        keys = [f"k{i:04d}" for i in range(n)]
        if n_shards is None:
            index = VectorIndex(dim=DIM, seed=0)
        else:
            index = ShardedIndex.create(
                IndexSpec(kind="vector", dim=DIM, seed=0), n_shards)
        index.add_batch(keys, vectors)
        return index, keys, vectors

    def test_add_after_quantize_extends_sidecar(self):
        index, _keys, _vectors = self._build()
        index.quantize()
        index.add("fresh", np.random.default_rng(4).standard_normal(DIM))
        assert_sidecar_fresh(index)

    def test_remove_and_compact_keep_sidecar_fresh(self):
        index, keys, _vectors = self._build()
        index.quantize()
        index.enable_quantized()
        index.remove(keys[0])
        index.remove(keys[7])
        assert_sidecar_fresh(index)
        index.compact()
        assert_sidecar_fresh(index)
        assert index.quantized and index.use_quantized

    def test_merge_into_quantized_extends_sidecar(self):
        index, _keys, _vectors = self._build()
        index.quantize()
        other, _ok, _ov = self._build(n=10, seed=99)
        index.merge(other)
        assert_sidecar_fresh(index)

    def test_rebalance_carries_quantization(self):
        sharded, _keys, vectors = self._build(n=40, n_shards=2)
        sharded.quantize()
        sharded.enable_quantized(overfetch=2, margin=8)
        plain, _k2, _v2 = self._build(n=40, n_shards=2)
        queries = vectors[:4]
        want = rankings(plain, queries, 6)
        sharded.rebalance(5)
        assert sharded.quantized and sharded.use_quantized
        assert sharded.shards[0].q_overfetch == 2
        assert sharded.shards[0].q_margin == 8
        assert_sidecar_fresh(sharded)
        assert rankings(sharded, queries, 6) == want

    def test_unquantized_lifecycle_stays_unquantized(self):
        sharded, keys, _vectors = self._build(n=20, n_shards=2)
        sharded.remove(keys[0])
        sharded.compact()
        sharded.rebalance(3)
        assert not sharded.quantized

    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_random_lifecycle_never_saves_stale_sidecar(
            self, tmp_path_factory, data):
        """Property: quantize, then a random op sequence, then save —
        the on-disk sidecar always equals a requantization of the
        on-disk fp vectors, and the reopened index matches the ranking
        of an unquantized twin rebuilt from the same surviving rows."""
        tmp_path = tmp_path_factory.mktemp("life")
        seed = data.draw(st.integers(0, 2**16))
        n = data.draw(st.integers(6, 30))
        n_shards = data.draw(st.sampled_from([1, 3]))
        index, keys, _vectors = self._build(n=n, n_shards=n_shards,
                                            seed=seed)
        index.quantize()
        index.enable_quantized()
        live = list(keys)
        rng = np.random.default_rng(seed)
        for op in data.draw(st.lists(
                st.sampled_from(["remove", "add", "compact", "rebalance"]),
                max_size=5)):
            if op == "remove" and len(live) > 1:
                victim = live.pop(data.draw(
                    st.integers(0, len(live) - 1)))
                index.remove(victim)
            elif op == "add":
                key = f"new{len(live):04d}"
                index.add(key, rng.standard_normal(DIM))
                live.append(key)
            elif op == "compact":
                index.compact()
            elif op == "rebalance" and n_shards > 1:
                index.rebalance(data.draw(st.sampled_from([2, 4])))
        assert_sidecar_fresh(index)
        name = "layout" if n_shards > 1 else "one.npz"
        path = index.save(tmp_path / name)
        reopened = open_index(path, quantized=True)
        assert_sidecar_fresh(reopened)

        twin = VectorIndex(dim=DIM, seed=0)
        for key in live:
            twin.add(key, index.vector(key), {})
        queries = rng.standard_normal((3, DIM))
        k = min(len(live), 5)
        assert rankings(reopened, queries, k) == rankings(twin, queries, k)


class TestForeignWriters:
    def test_mismatched_sidecar_is_ignored_not_trusted(self, tmp_path):
        """A q8 member whose shape/dtype disagrees with the vectors
        (foreign writer / hand edit) loads as an unquantized index."""
        index = VectorIndex(dim=DIM, seed=0)
        index.add_batch([f"k{i}" for i in range(8)], tie_dense_corpus(8))
        index.quantize()
        path = index.save(tmp_path / "ok.npz")
        with np.load(path) as archive:
            members = {name: archive[name] for name in archive.files}
        members["q8"] = members["q8"][:4]            # wrong row count
        np.savez(tmp_path / "bad.npz", **members)
        loaded = open_index(tmp_path / "bad.npz")
        assert not loaded.quantized
        with pytest.raises(ValueError, match="quantize"):
            open_index(tmp_path / "bad.npz", quantized=True)

    def test_old_reader_shape_payload_untouched(self, tmp_path):
        """Quantization is signalled purely via additive array members;
        the JSON payload old readers parse is byte-compatible."""
        import json

        from repro.index.index import _PAYLOAD_KEY

        index = VectorIndex(dim=DIM, seed=0)
        index.add_batch(["a", "b", "c"], tie_dense_corpus(3))
        index.quantize()
        path = index.save(tmp_path / "q.npz")
        with np.load(path) as archive:
            assert {"q8", "q_scales", "q_norms"} <= set(archive.files)
            payload = json.loads(bytes(archive[_PAYLOAD_KEY]).decode())
        assert set(payload) == {"format_version", "params", "keys", "meta",
                                "tombstones"}
