"""Concurrent query engine: batched + threaded paths ≡ the serial path.

The engine's contract is that every new execution mode is purely an
executor change: ``query_many`` (one hashing matmul per band + one
similarity GEMM per shard), ``jobs=N`` thread fan-out, and
``build_sharded(build_workers=M)`` process fan-out must all reproduce
the serial single-query / serial-build results exactly — rankings, tie
breaks, and the globally-decided brute-force fallback included.

Property-based layer (hypothesis): random corpora × shard counts
{1, 2, 5} × jobs {1, 2, 4}, plus deliberate duplicate-vector ties and
queries pinned to the exact brute-force threshold boundary.

The read path is documented immutable (``repro/index/sharded.py``), so
a stress test hammers one ``ShardedIndex`` from many threads and
requires every result to stay correct.
"""

import random
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import IndexSpec, ShardedIndex, TableIndex, VectorIndex

DIM = 16
SHARD_COUNTS = (1, 2, 5)
JOBS_COUNTS = (1, 2, 4)


def gaussian(rng: random.Random, dim: int = DIM) -> np.ndarray:
    return np.array([rng.gauss(0, 1) for _ in range(dim)])


def ranked(hits) -> list[tuple[str, float]]:
    return [(h.key, round(h.score, 9)) for h in hits]


def ranked_many(hits_per_query) -> list[list[tuple[str, float]]]:
    return [ranked(hits) for hits in hits_per_query]


def build_pair(n_shards: int, live: dict[str, np.ndarray], seed: int = 0):
    single = VectorIndex(dim=DIM, seed=seed)
    sharded = ShardedIndex.create(IndexSpec(kind="vector", dim=DIM,
                                            seed=seed), n_shards)
    if live:
        keys, vectors = list(live), np.stack(list(live.values()))
        single.add_batch(keys, vectors)
        sharded.add_batch(keys, vectors)
    return single, sharded


def serial_baseline(single: VectorIndex, queries: np.ndarray, k: int,
                    excludes=None) -> list[list[tuple[str, float]]]:
    """The reference: one serial ``query_vector`` call per query row."""
    excludes = excludes or [None] * len(queries)
    return [ranked(single.query_vector(q, k, exclude=e))
            for q, e in zip(queries, excludes)]


class TestQueryManyProperty:
    """Hypothesis: query_many ≡ serial, across layouts, jobs and k."""

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_random_corpus_equivalence(self, data):
        seed = data.draw(st.integers(0, 2**16), label="seed")
        n_entries = data.draw(st.integers(1, 40), label="n_entries")
        n_shards = data.draw(st.sampled_from(SHARD_COUNTS), label="n_shards")
        jobs = data.draw(st.sampled_from(JOBS_COUNTS), label="jobs")
        n_queries = data.draw(st.integers(1, 6), label="n_queries")
        k = data.draw(st.integers(1, n_entries + 2), label="k")
        rng = random.Random(seed)
        live = {f"key{i:03d}": gaussian(rng) for i in range(n_entries)}
        single, sharded = build_pair(n_shards, live)
        queries = np.stack([gaussian(rng) for _ in range(n_queries)])
        want = serial_baseline(single, queries, k)
        assert ranked_many(single.query_many(queries, k)) == want
        assert ranked_many(sharded.query_many(queries, k, jobs=jobs)) == want
        threaded = [ranked(sharded.query_vector(q, k, jobs=jobs))
                    for q in queries]
        assert threaded == want

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_duplicate_vector_ties_break_by_key(self, data):
        """Exact score ties (duplicate embeddings) must resolve by key in
        every mode, even at the k boundary."""
        seed = data.draw(st.integers(0, 2**16), label="seed")
        n_shards = data.draw(st.sampled_from(SHARD_COUNTS), label="n_shards")
        jobs = data.draw(st.sampled_from(JOBS_COUNTS), label="jobs")
        n_ties = data.draw(st.integers(2, 8), label="n_ties")
        rng = random.Random(seed)
        shared = gaussian(rng)
        live = {f"tie{i}": shared.copy() for i in range(n_ties)}
        live.update({f"key{i}": gaussian(rng) for i in range(5)})
        single, sharded = build_pair(n_shards, live)
        queries = np.stack([shared, gaussian(rng)])
        for k in (1, n_ties - 1, n_ties, len(live)):
            want = serial_baseline(single, queries, k)
            assert ranked_many(single.query_many(queries, k)) == want
            assert ranked_many(sharded.query_many(queries, k,
                                                  jobs=jobs)) == want

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_fallback_threshold_boundary(self, data):
        """k pinned to the *global* candidate total: one below (no
        fallback), exactly at (no fallback), one above (fallback over
        every live entry) — all three must match serial, in both
        layouts, threaded or not."""
        seed = data.draw(st.integers(0, 2**16), label="seed")
        n_shards = data.draw(st.sampled_from(SHARD_COUNTS), label="n_shards")
        jobs = data.draw(st.sampled_from(JOBS_COUNTS), label="jobs")
        rng = random.Random(seed)
        live = {f"key{i:03d}": gaussian(rng) for i in range(24)}
        single, sharded = build_pair(n_shards, live)
        query = gaussian(rng)
        total = sum(count for count, _hits
                    in [shard.query_partial(query, 1)
                        for shard in sharded.shards])
        single_total, _ = single.query_partial(query, 1)
        assert total == single_total    # same blocking, layout-independent
        boundary_ks = {max(1, total - 1), max(1, total), total + 1}
        queries = query[None, :]
        for k in sorted(boundary_ks):
            want = serial_baseline(single, queries, k)
            assert ranked_many(single.query_many(queries, k)) == want
            assert ranked_many(sharded.query_many(queries, k,
                                                  jobs=jobs)) == want
            # Above the total the fallback must deliver every live entry
            # (capped at k), exactly like the serial path.
            assert len(want[0]) == min(k, len(live))

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_excludes_align_per_query(self, data):
        seed = data.draw(st.integers(0, 2**16), label="seed")
        n_shards = data.draw(st.sampled_from(SHARD_COUNTS), label="n_shards")
        rng = random.Random(seed)
        live = {f"key{i:03d}": gaussian(rng) for i in range(12)}
        single, sharded = build_pair(n_shards, live)
        keys = sorted(live)
        excludes = [keys[0], None, rng.choice(keys), "not-an-entry"]
        queries = np.stack([live[keys[0]], gaussian(rng),
                            gaussian(rng), gaussian(rng)])
        want = serial_baseline(single, queries, 5, excludes=excludes)
        assert ranked_many(single.query_many(queries, 5,
                                             excludes=excludes)) == want
        assert ranked_many(sharded.query_many(queries, 5, excludes=excludes,
                                              jobs=2)) == want
        assert keys[0] not in {key for key, _score in want[0]}


class TestQueryManySurface:
    def test_empty_query_matrix_returns_empty(self):
        rng = random.Random(0)
        single, sharded = build_pair(2, {"a": gaussian(rng)})
        empty = np.zeros((0, DIM))
        assert single.query_many(empty, 3) == []
        assert sharded.query_many(empty, 3) == []

    def test_bad_k_and_jobs_rejected(self):
        rng = random.Random(1)
        single, sharded = build_pair(2, {"a": gaussian(rng)})
        queries = np.stack([gaussian(rng)])
        with pytest.raises(ValueError, match="at least 1"):
            single.query_many(queries, 0)
        with pytest.raises(ValueError, match="at least 1"):
            sharded.query_many(queries, 0)
        with pytest.raises(ValueError, match="jobs"):
            sharded.query_many(queries, 3, jobs=0)
        with pytest.raises(ValueError, match="jobs"):
            sharded.query_vector(queries[0], 3, jobs=-1)
        with pytest.raises(ValueError, match="jobs"):
            single.query_many(queries, 3, jobs=0)

    def test_misaligned_excludes_rejected(self):
        rng = random.Random(2)
        single, sharded = build_pair(2, {"a": gaussian(rng)})
        queries = np.stack([gaussian(rng), gaussian(rng)])
        with pytest.raises(ValueError, match="align"):
            single.query_many(queries, 3, excludes=["a"])
        with pytest.raises(ValueError, match="align"):
            sharded.query_many(queries, 3, excludes=["a", None, "b"])

    def test_bad_query_shape_rejected(self):
        rng = random.Random(3)
        single, _sharded = build_pair(1, {"a": gaussian(rng)})
        with pytest.raises(ValueError, match="query matrix"):
            single.query_many(np.zeros((2, DIM + 1)), 3)
        with pytest.raises(ValueError, match="query matrix"):
            single.query_many(np.zeros(DIM), 3)     # 1-D, not a matrix

    def test_zero_vector_queries_score_zero(self):
        """cosine_similarity defines zero-norm similarity as 0; the GEMM
        path must agree instead of dividing by zero."""
        rng = random.Random(4)
        live = {f"key{i}": gaussian(rng) for i in range(6)}
        live["zero"] = np.zeros(DIM)
        single, sharded = build_pair(2, live)
        queries = np.stack([np.zeros(DIM), gaussian(rng)])
        want = serial_baseline(single, queries, len(live))
        got = ranked_many(sharded.query_many(queries, len(live), jobs=2))
        assert got == want
        assert all(score == 0.0 for _key, score in want[0])

    def test_shard_failure_propagates_not_hangs(self):
        """A failing shard must surface its error from the fan-out —
        serial and threaded — never return half-merged results."""
        rng = random.Random(5)
        live = {f"key{i}": gaussian(rng) for i in range(8)}
        _single, sharded = build_pair(3, live)

        def boom(*_args, **_kwargs):
            raise RuntimeError("shard exploded")

        sharded.shards[1].query_partial_many = boom
        sharded.shards[1].query_partial = boom
        queries = np.stack([gaussian(rng)])
        for jobs in (None, 2):
            with pytest.raises(RuntimeError, match="shard exploded"):
                sharded.query_many(queries, 3, jobs=jobs)
            with pytest.raises(RuntimeError, match="shard exploded"):
                sharded.query_vector(queries[0], 3, jobs=jobs)


class TestConcurrentReads:
    def test_many_threads_one_sharded_index(self):
        """The read path is documented immutable: N threads querying one
        ShardedIndex concurrently (each mixing query_many and
        query_vector, with and without jobs=) must all get exactly the
        single-thread results."""
        rng = random.Random(6)
        live = {f"key{i:03d}": gaussian(rng) for i in range(40)}
        single, sharded = build_pair(3, live)
        queries = np.stack([gaussian(rng) for _ in range(10)])
        want = serial_baseline(single, queries, 5)
        start = threading.Barrier(8)

        def hammer(worker: int) -> int:
            start.wait()                      # maximize interleaving
            checks = 0
            for round_ in range(5):
                jobs = (None, 1, 2)[(worker + round_) % 3]
                got = ranked_many(sharded.query_many(queries, 5, jobs=jobs))
                assert got == want
                q = (worker + round_) % len(queries)
                assert ranked(sharded.query_vector(queries[q], 5,
                                                   jobs=jobs)) == want[q]
                checks += 2
            return checks

        with ThreadPoolExecutor(max_workers=8) as pool:
            done = list(pool.map(hammer, range(8)))
        assert done == [10] * 8     # every thread ran every check


class TestParallelShardBuilds:
    def test_build_workers_matches_serial_bitwise(self, embedder, corpus):
        """build_workers only changes the executor: per-shard keys and
        dense vectors must be byte-identical to the serial build."""
        serial = TableIndex.build_sharded(embedder, corpus, shards=3)
        parallel = TableIndex.build_sharded(embedder, corpus, shards=3,
                                            build_workers=2)
        assert parallel.n_shards == serial.n_shards
        assert parallel.model_id == serial.model_id
        for ours, theirs in zip(parallel.shards, serial.shards):
            assert ours.keys == theirs.keys
            assert np.array_equal(ours.lsh.vectors(), theirs.lsh.vectors())
        for table in corpus:
            assert ranked(parallel.query_table(embedder, table, k=3)) == \
                ranked(serial.query_table(embedder, table, k=3))

    def test_build_workers_defaults_to_workers(self, embedder, corpus):
        """workers=N alone fans both the encode batches and the
        per-shard builds (the documented single-knob behaviour)."""
        serial = TableIndex.build_sharded(embedder, corpus, shards=2)
        combined = TableIndex.build_sharded(embedder, corpus, shards=2,
                                            workers=2)
        for ours, theirs in zip(combined.shards, serial.shards):
            assert ours.keys == theirs.keys
            assert np.array_equal(ours.lsh.vectors(), theirs.lsh.vectors())

    def test_bad_build_workers_rejected(self, embedder, corpus):
        with pytest.raises(ValueError, match="build_workers"):
            TableIndex.build_sharded(embedder, corpus, shards=2,
                                     build_workers=0)
