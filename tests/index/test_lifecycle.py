"""Property-based tests for the index lifecycle (remove/compact/merge).

Observatory-style probing: instead of a handful of hand-picked
examples, a seeded stdlib ``random`` walk drives random interleavings of
``add`` / ``remove`` / ``compact`` / ``merge`` against a plain-dict
model of the surviving entries, and after every step the index must be
*equivalent* to one built fresh from the survivors — same live keys,
same query results — and ``save``/``load`` must reproduce it exactly.
"""

import random

import numpy as np
import pytest

from repro.index import FORMAT_VERSION, TableIndex, VectorIndex, load_index
from repro.retrieval import CosineLSH

DIM = 16
RNG = np.random.default_rng(12)


def fresh_vector(rng: random.Random) -> np.ndarray:
    # Distinct gaussians: exact score ties (where ranking order could
    # legitimately differ between equivalent indexes) have measure zero.
    return np.array([rng.gauss(0, 1) for _ in range(DIM)])


def build_reference(live: dict[str, np.ndarray], seed: int = 0) -> VectorIndex:
    """The oracle: an index built fresh from the surviving entries."""
    ref = VectorIndex(dim=DIM, seed=seed)
    if live:
        ref.add_batch(list(live), np.stack(list(live.values())))
    return ref


def assert_equivalent(index: VectorIndex, live: dict[str, np.ndarray],
                      queries: list[np.ndarray]) -> None:
    assert set(index.keys[i] for i in index.lsh.live_ids()) == set(live)
    assert len(index) == len(live)
    reference = build_reference(live, seed=index.seed)
    k = min(5, len(live))
    if not k:        # k < 1 is now a ValueError, and there is nothing to rank
        return
    for query in queries:
        got = [(h.key, round(h.score, 9)) for h in index.query_vector(query, k)]
        want = [(h.key, round(h.score, 9))
                for h in reference.query_vector(query, k)]
        assert got == want
    for key, vector in live.items():
        assert np.allclose(index.vector(key), vector)


def assert_round_trip(index: VectorIndex, tmp_path,
                      queries: list[np.ndarray]) -> None:
    """``save``/``load`` must reproduce the full mid-lifecycle state."""
    loaded = load_index(index.save(tmp_path / "step.npz"))
    assert loaded.keys == index.keys
    assert loaded.meta == index.meta
    assert len(loaded) == len(index)
    assert loaded.n_tombstones == index.n_tombstones
    assert loaded.lsh.removed == index.lsh.removed
    assert loaded._id_of == index._id_of
    k = max(min(5, len(index)), 1)
    for query in queries:
        got = [(h.key, round(h.score, 12))
               for h in loaded.query_vector(query, k)]
        want = [(h.key, round(h.score, 12))
                for h in index.query_vector(query, k)]
        assert got == want


@pytest.mark.parametrize("walk_seed", [0, 1, 2])
def test_random_lifecycle_walk_matches_fresh_build(walk_seed, tmp_path):
    """add/remove/compact/merge in any order == fresh build of survivors."""
    rng = random.Random(walk_seed)
    queries = [fresh_vector(rng) for _ in range(3)]
    index = VectorIndex(dim=DIM, seed=0)
    live: dict[str, np.ndarray] = {}
    removed_once: list[str] = []
    serial = 0

    for step in range(40):
        op = rng.choice(["add", "add", "remove", "compact", "merge",
                         "readd", "dup"])
        if op == "add" or (op == "readd" and not removed_once) \
                or (op == "dup" and not live):
            key, vector = f"t{serial}", fresh_vector(rng)
            serial += 1
            index.add(key, vector)
            live[key] = vector
        elif op == "readd":
            # Re-adding a previously removed key must resurrect it.
            key = rng.choice(removed_once)
            if key not in live:
                vector = fresh_vector(rng)
                index.add(key, vector)
                live[key] = vector
        elif op == "dup":
            # Duplicate fingerprints are no-ops, never double entries.
            key = rng.choice(list(live))
            assert index.add(key, fresh_vector(rng)) == index._id_of[key]
        elif op == "remove":
            if live:
                key = rng.choice(list(live))
                index.remove(key)
                del live[key]
                removed_once.append(key)
            else:
                with pytest.raises(KeyError):
                    index.remove("never-added")
        elif op == "compact":
            expected = index.n_tombstones
            assert index.compact() == expected
            assert index.n_tombstones == 0
        elif op == "merge":
            other = VectorIndex(dim=DIM, seed=0)
            n_new = rng.randint(0, 3)
            incoming: dict[str, np.ndarray] = {}
            for _ in range(n_new):
                key, vector = f"t{serial}", fresh_vector(rng)
                serial += 1
                incoming[key] = vector
            if live and rng.random() < 0.5:
                # Overlap with a survivor: merge must fingerprint-dedupe.
                dup = rng.choice(list(live))
                incoming[dup] = live[dup]
            if incoming:
                other.add_batch(list(incoming), np.stack(list(incoming.values())))
            added = index.merge(other)
            assert added == len(set(incoming) - set(live))
            for key, vector in incoming.items():
                live.setdefault(key, vector)

        assert_equivalent(index, live, queries)
        if step % 5 == 0:
            assert_round_trip(index, tmp_path, queries)

    assert_round_trip(index, tmp_path, queries)


class TestTombstoneQueries:
    def test_query_never_returns_tombstoned_key(self):
        """Regression: with tombstones present, the brute-force fallback
        in ``CosineLSH.query`` iterated *all* stored slots, so a removed
        key could come back whenever LSH candidates < k."""
        index = VectorIndex(dim=8, n_planes=10, n_bands=1, seed=0)
        vectors = RNG.standard_normal((6, 8))
        index.add_batch([f"k{i}" for i in range(6)], vectors)
        index.remove("k2")
        index.remove("k5")
        # k > live forces the fallback path.
        hits = index.query_vector(vectors[2], k=6)
        keys = [h.key for h in hits]
        assert "k2" not in keys and "k5" not in keys
        assert len(hits) == 4

    def test_exclude_plus_tombstones(self):
        index = VectorIndex(dim=8, seed=1)
        vectors = RNG.standard_normal((8, 8))
        index.add_batch([f"k{i}" for i in range(8)], vectors)
        index.remove("k1")
        hits = index.query_vector(vectors[0], k=8, exclude="k0")
        assert {h.key for h in hits}.isdisjoint({"k0", "k1"})
        assert len(hits) == 6

    def test_remove_then_compact_then_query(self):
        """The acceptance-criteria path: remove -> compact -> query."""
        index = VectorIndex(dim=8, seed=2)
        vectors = RNG.standard_normal((10, 8))
        index.add_batch([f"k{i}" for i in range(10)], vectors)
        for key in ("k0", "k4", "k9"):
            index.remove(key)
        assert index.compact() == 3
        hits = index.query_vector(vectors[4], k=10)
        assert {h.key for h in hits}.isdisjoint({"k0", "k4", "k9"})
        assert len(hits) == 7

    def test_remove_missing_key_raises(self):
        index = VectorIndex(dim=4)
        index.add("a", RNG.standard_normal(4))
        with pytest.raises(KeyError):
            index.remove("b")
        index.remove("a")
        with pytest.raises(KeyError):
            index.remove("a")            # already tombstoned


class TestCompact:
    def test_compact_without_tombstones_is_noop(self):
        index = VectorIndex(dim=4, seed=3)
        index.add_batch(["a", "b"], RNG.standard_normal((2, 4)))
        lsh_before = index.lsh
        assert index.compact() == 0
        assert index.lsh is lsh_before   # no pointless rebuild

    def test_compact_everything(self):
        index = VectorIndex(dim=4, seed=3)
        index.add_batch(["a", "b"], RNG.standard_normal((2, 4)))
        index.remove("a")
        index.remove("b")
        assert index.compact() == 2
        assert len(index) == 0 and index.keys == []
        assert index.query_vector(RNG.standard_normal(4), k=3) == []

    def test_compact_shrinks_saved_file(self, tmp_path):
        index = VectorIndex(dim=32, seed=0)
        index.add_batch([f"k{i}" for i in range(64)],
                        RNG.standard_normal((64, 32)))
        for i in range(48):
            index.remove(f"k{i}")
        fat = index.save(tmp_path / "fat.npz")
        index.compact()
        slim = index.save(tmp_path / "slim.npz")
        assert slim.stat().st_size < fat.stat().st_size


class TestMerge:
    def test_merge_dedupes_by_fingerprint(self):
        a, b = VectorIndex(dim=4, seed=0), VectorIndex(dim=4, seed=0)
        vectors = RNG.standard_normal((3, 4))
        a.add_batch(["x", "y"], vectors[:2])
        b.add_batch(["y", "z"], vectors[1:])
        assert a.merge(b) == 1
        assert set(a._id_of) == {"x", "y", "z"}

    def test_merge_skips_others_tombstones(self):
        a, b = VectorIndex(dim=4, seed=0), VectorIndex(dim=4, seed=0)
        b.add_batch(["p", "q"], RNG.standard_normal((2, 4)))
        b.remove("p")
        assert a.merge(b) == 1
        assert "p" not in a and "q" in a

    def test_merge_allows_different_lsh_geometry(self):
        """Only the vector space must match: the merged index re-hashes
        incoming vectors through its own hyperplanes."""
        a = VectorIndex(dim=4, n_planes=8, n_bands=4, seed=0)
        b = VectorIndex(dim=4, n_planes=6, n_bands=2, seed=9)
        b.add("k", RNG.standard_normal(4))
        assert a.merge(b) == 1

    def test_merge_rejects_dim_mismatch(self):
        with pytest.raises(ValueError, match="incompatible"):
            VectorIndex(dim=4).merge(VectorIndex(dim=5))

    def test_merge_rejects_kind_mismatch(self):
        with pytest.raises(ValueError, match="incompatible"):
            VectorIndex(dim=4).merge(TableIndex(dim=4))

    def test_merge_rejects_variant_mismatch(self):
        with pytest.raises(ValueError, match="incompatible"):
            TableIndex(dim=4, variant="row").merge(
                TableIndex(dim=4, variant="tblcomp1"))

    def test_merge_rejects_different_known_checkpoints(self):
        """Same kind/dim/variant but different source models means
        different embedding spaces — cosine scores across them are
        meaningless, so merge must refuse."""
        a, b = VectorIndex(dim=4), VectorIndex(dim=4)
        a.model_id, b.model_id = "model-a", "model-b"
        b.add("k", RNG.standard_normal(4))
        with pytest.raises(ValueError, match="model_id"):
            a.merge(b)

    def test_merge_unknown_checkpoint_is_wildcard(self):
        """Hand-built or pre-v2 indexes carry no model_id; they merge
        with anything rather than breaking old workflows."""
        a, b = VectorIndex(dim=4), VectorIndex(dim=4)
        a.model_id = "model-a"              # b's stays None
        b.add("k", RNG.standard_normal(4))
        assert a.merge(b) == 1
        assert a.model_id == "model-a"

    def test_merge_adopts_known_checkpoint(self):
        """A wildcard merge must not *stay* a wildcard: after folding in
        a known checkpoint, a later merge with a different known
        checkpoint has to be refused, not chained through."""
        a, b, c = (VectorIndex(dim=4) for _ in range(3))
        b.model_id, c.model_id = "model-b", "model-c"
        b.add("kb", RNG.standard_normal(4))
        c.add("kc", RNG.standard_normal(4))
        a.merge(b)
        assert a.model_id == "model-b"
        with pytest.raises(ValueError, match="model_id"):
            a.merge(c)

    def test_merge_unions_corpus_provenance(self):
        """A merged multi-corpus index must not claim the first shard's
        corpus identity verbatim."""
        a, b = VectorIndex(dim=4), VectorIndex(dim=4)
        a.corpus = {"dataset": "cancerkg", "n_tables": 4, "seed": 0}
        b.corpus = {"dataset": "cancerkg", "n_tables": 4, "seed": 1}
        b.add("k", RNG.standard_normal(4))
        a.merge(b)
        assert a.corpus == {"merged_from": [
            {"dataset": "cancerkg", "n_tables": 4, "seed": 0},
            {"dataset": "cancerkg", "n_tables": 4, "seed": 1},
        ]}
        # A third shard flattens into the same list, deduped.
        c = VectorIndex(dim=4)
        c.corpus = {"dataset": "cancerkg", "n_tables": 4, "seed": 1}
        a.merge(c)
        assert len(a.corpus["merged_from"]) == 2

    def test_merge_same_corpus_keeps_stamp(self):
        a, b = VectorIndex(dim=4), VectorIndex(dim=4)
        stamp = {"dataset": "saus", "n_tables": 2, "seed": 0}
        a.corpus, b.corpus = dict(stamp), dict(stamp)
        b.add("k", RNG.standard_normal(4))
        a.merge(b)
        assert a.corpus == stamp

    def test_build_stamps_and_round_trips_model_id(self, embedder, corpus,
                                                   tmp_path):
        index = TableIndex.build(embedder, corpus)
        assert index.model_id == embedder.fingerprint()
        loaded = load_index(index.save(tmp_path / "stamped.npz"))
        assert loaded.model_id == index.model_id


class TestVersionedFormat:
    def test_saved_payload_is_versioned(self, tmp_path):
        import json

        import numpy as np

        path = VectorIndex(dim=4).save(tmp_path / "v.npz")
        with np.load(path) as archive:
            payload = json.loads(bytes(archive["__index__"]).decode("utf-8"))
        assert payload["format_version"] == FORMAT_VERSION
        assert payload["tombstones"] == []

    def test_unversioned_v1_payload_still_loads(self, tmp_path):
        """PR-1 files had no ``format_version``/``tombstones`` fields."""
        import json

        import numpy as np

        index = VectorIndex(dim=4, seed=1)
        vectors = RNG.standard_normal((2, 4))
        index.add_batch(["a", "b"], vectors)
        payload = json.dumps({"params": index._params(), "keys": index.keys,
                              "meta": index.meta})
        path = tmp_path / "v1.npz"
        np.savez(path, vectors=index.lsh.vectors(),
                 __index__=np.frombuffer(payload.encode("utf-8"),
                                         dtype=np.uint8))
        loaded = load_index(path)
        assert set(loaded._id_of) == {"a", "b"}
        assert loaded.n_tombstones == 0

    def test_future_version_rejected(self, tmp_path):
        import json

        import numpy as np

        index = VectorIndex(dim=4)
        payload = json.dumps({"format_version": FORMAT_VERSION + 1,
                              "params": index._params(), "keys": [],
                              "meta": [], "tombstones": []})
        path = tmp_path / "future.npz"
        np.savez(path, vectors=index.lsh.vectors(),
                 __index__=np.frombuffer(payload.encode("utf-8"),
                                         dtype=np.uint8))
        with pytest.raises(ValueError, match="format v3"):
            load_index(path)


class TestLSHRemoval:
    """The bucket-removal primitive itself (repro.retrieval.CosineLSH)."""

    def test_remove_drops_id_from_every_band_bucket(self):
        lsh = CosineLSH(dim=8, n_planes=4, n_bands=3, seed=0)
        ids = lsh.add_all(RNG.standard_normal((5, 8)))
        lsh.remove(ids[2])
        for table in lsh._tables:
            for bucket in table.values():
                assert ids[2] not in bucket

    def test_removed_id_never_a_candidate(self):
        lsh = CosineLSH(dim=8, seed=0)
        vectors = RNG.standard_normal((4, 8))
        lsh.add_all(vectors)
        lsh.remove(1)
        assert 1 not in lsh.candidates(vectors[1])

    def test_counters_and_live_ids(self):
        lsh = CosineLSH(dim=4, seed=0)
        lsh.add_all(RNG.standard_normal((4, 4)))
        lsh.remove(0)
        lsh.remove(3)
        assert len(lsh) == 4              # slots, positional
        assert lsh.n_live == 2
        assert lsh.live_ids() == [1, 2]
        assert lsh.removed == {0, 3}

    def test_double_remove_and_bad_id_raise(self):
        lsh = CosineLSH(dim=4, seed=0)
        lsh.add(RNG.standard_normal(4))
        with pytest.raises(KeyError):
            lsh.remove(5)
        lsh.remove(0)
        with pytest.raises(KeyError):
            lsh.remove(0)

    def test_add_after_remove_gets_fresh_id(self):
        lsh = CosineLSH(dim=4, seed=0)
        lsh.add(RNG.standard_normal(4))
        lsh.remove(0)
        assert lsh.add(RNG.standard_normal(4)) == 1
        assert lsh.n_live == 1

    def test_candidates_exclude_removed_even_if_bucket_purge_missed(self):
        """remove() recomputes band keys from the stored vector; bulk
        inserts hashed through a different matmul shape, so a last-bit
        rounding flip at a sign boundary could leave the id behind in a
        bucket.  candidates() must filter tombstones unconditionally."""
        lsh = CosineLSH(dim=8, seed=0)
        vectors = RNG.standard_normal((3, 8))
        lsh.add_all(vectors)
        lsh.remove(1)
        # Simulate the desync: sneak the removed id back into a bucket.
        key = next(iter(lsh._tables[0]), 0)
        lsh._tables[0].setdefault(key, []).append(1)
        assert 1 not in lsh.candidates(vectors[1])
        assert 1 not in [i for i, _s in lsh.query(vectors[1], k=3)]
