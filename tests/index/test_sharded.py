"""ShardedIndex: fan-out queries must be indistinguishable from one big
index.

The central property (pinned over shard counts {1, 2, 5} and seeded
random lifecycles): a :class:`ShardedIndex` and a single
:class:`VectorIndex` over the same corpus return the *same hits with
the same scores* for every query — including when LSH blocking
under-delivers and the brute-force fallback kicks in, which the sharded
path must decide on the global candidate total, never per shard.
"""

import random

import numpy as np
import pytest

from repro.index import (
    ColumnIndex,
    IndexSpec,
    ShardedIndex,
    TableIndex,
    VectorIndex,
    shard_of,
    table_fingerprint,
)

DIM = 16
SHARD_COUNTS = (1, 2, 5)


def gaussian(rng: random.Random, dim: int = DIM) -> np.ndarray:
    # Distinct gaussians: exact score ties (where single- and sharded-
    # index tie-breaks could legitimately differ) have measure zero.
    return np.array([rng.gauss(0, 1) for _ in range(dim)])


def ranked(hits) -> list[tuple[str, float]]:
    return [(h.key, round(h.score, 9)) for h in hits]


def build_pair(n_shards: int, live: dict[str, np.ndarray], seed: int = 0):
    single = VectorIndex(dim=DIM, seed=seed)
    sharded = ShardedIndex.create(IndexSpec(kind="vector", dim=DIM,
                                            seed=seed), n_shards)
    if live:
        keys, vectors = list(live), np.stack(list(live.values()))
        single.add_batch(keys, vectors)
        sharded.add_batch(keys, vectors)
    return single, sharded


class TestEquivalenceProperty:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("walk_seed", [0, 1, 2])
    def test_random_lifecycle_walk_matches_single_index(self, n_shards,
                                                        walk_seed):
        """Seeded random interleavings of add / remove / compact keep the
        sharded index query-equivalent to a single index holding exactly
        the surviving entries — same hits, same scores, every k."""
        rng = random.Random(1000 * n_shards + walk_seed)
        live: dict[str, np.ndarray] = {}
        single = VectorIndex(dim=DIM, seed=3)
        sharded = ShardedIndex.create(IndexSpec(kind="vector", dim=DIM,
                                                seed=3), n_shards)
        counter = 0
        for _step in range(60):
            op = rng.random()
            if op < 0.6 or not live:
                key, vector = f"key{counter:04d}", gaussian(rng)
                counter += 1
                live[key] = vector
                single.add(key, vector)
                sharded.add(key, vector)
            elif op < 0.85:
                key = rng.choice(sorted(live))
                del live[key]
                single.remove(key)
                sharded.remove(key)
            else:
                single.compact()
                sharded.compact()
            assert len(sharded) == len(single) == len(live)
            if live:
                query = gaussian(rng)
                for k in (1, 3, len(live) + 2):
                    assert ranked(sharded.query_vector(query, k)) == \
                        ranked(single.query_vector(query, k))

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_bulk_corpus_same_hits_same_scores(self, n_shards):
        rng = random.Random(n_shards)
        live = {f"key{i:03d}": gaussian(rng) for i in range(48)}
        single, sharded = build_pair(n_shards, live)
        for _ in range(20):
            query = gaussian(rng)
            assert ranked(sharded.query_vector(query, 10)) == \
                ranked(single.query_vector(query, 10))

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_exclude_key_matches(self, n_shards):
        rng = random.Random(77)
        live = {f"key{i:03d}": gaussian(rng) for i in range(20)}
        single, sharded = build_pair(n_shards, live)
        target = "key007"
        hits_single = single.query_vector(live[target], 5, exclude=target)
        hits_sharded = sharded.query_vector(live[target], 5, exclude=target)
        assert ranked(hits_sharded) == ranked(hits_single)
        assert target not in {h.key for h in hits_sharded}

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_score_ties_break_by_key_in_both_layouts(self, n_shards):
        """Distinct keys can share one embedding (e.g. permuted rows
        under mean-pooling).  Ties — even at the k boundary — must
        resolve identically in both layouts: by key, not by
        layout-dependent insertion ids."""
        rng = random.Random(42)
        shared = gaussian(rng)
        live = {f"tie{i}": shared.copy() for i in range(6)}
        live.update({f"key{i}": gaussian(rng) for i in range(6)})
        single, sharded = build_pair(n_shards, live)
        for k in (1, 3, 6, 9, len(live)):
            got = ranked(sharded.query_vector(shared, k))
            want = ranked(single.query_vector(shared, k))
            assert got == want
            assert [key for key, _ in want[:min(k, 6)]] == \
                sorted(f"tie{i}" for i in range(min(k, 6)))

    def test_duplicate_key_in_non_owner_shard_stays_single(self):
        """A manually assembled layout may hold a key outside its hash
        owner; add must not create a second copy and queries must not
        return the key twice."""
        rng = random.Random(8)
        sharded = ShardedIndex.create(IndexSpec(kind="vector", dim=DIM), 3)
        key, vector = "stray", gaussian(rng)
        wrong = (shard_of(key, 3) + 1) % 3
        sharded.shards[wrong].add(key, vector)        # bypass routing
        assert key in sharded
        sharded.add(key, gaussian(rng))               # must dedupe globally
        sharded.add_batch([key, "other"],
                          np.stack([gaussian(rng), gaussian(rng)]))
        assert len(sharded) == 2
        assert key not in sharded.shards[shard_of(key, 3)]
        hits = sharded.query_vector(vector, k=2)
        assert [h.key for h in hits].count(key) == 1
        sharded.remove(key)
        assert key not in sharded

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_brute_force_fallback_is_global(self, n_shards):
        """k larger than any candidate pool: the single index brute-
        forces over everything, so the sharded one must too — even in
        shards whose local candidate count looks sufficient."""
        rng = random.Random(5)
        live = {f"key{i:03d}": gaussian(rng) for i in range(12)}
        single, sharded = build_pair(n_shards, live)
        query = gaussian(rng)
        k = len(live)                       # forces the fallback globally
        assert ranked(sharded.query_vector(query, k)) == \
            ranked(single.query_vector(query, k))
        assert len(sharded.query_vector(query, k)) == len(live)


class TestThreadedFanOut:
    """jobs=N only changes the executor: per-shard arithmetic and the
    shard-ordered merge are untouched, so results are bit-identical."""

    @pytest.mark.parametrize("jobs", (1, 2, 4))
    def test_jobs_bit_identical_to_serial_fanout(self, jobs):
        rng = random.Random(31)
        live = {f"key{i:03d}": gaussian(rng) for i in range(30)}
        _single, sharded = build_pair(3, live)
        for _ in range(5):
            query = gaussian(rng)
            want = sharded.query_vector(query, 8)
            got = sharded.query_vector(query, 8, jobs=jobs)
            assert [(h.key, h.score) for h in got] == \
                [(h.key, h.score) for h in want]    # full precision

    def test_jobs_covers_the_global_fallback(self):
        rng = random.Random(32)
        live = {f"key{i:03d}": gaussian(rng) for i in range(10)}
        single, sharded = build_pair(4, live)
        query = gaussian(rng)
        k = len(live)                       # forces the fallback globally
        assert ranked(sharded.query_vector(query, k, jobs=2)) == \
            ranked(single.query_vector(query, k))

    def test_bad_jobs_rejected(self):
        rng = random.Random(33)
        _single, sharded = build_pair(2, {"a": gaussian(rng)})
        for jobs in (0, -2):
            with pytest.raises(ValueError, match="jobs"):
                sharded.query_vector(gaussian(rng), 1, jobs=jobs)


class TestRouting:
    def test_add_routes_to_hash_owner(self):
        rng = random.Random(9)
        sharded = ShardedIndex.create(IndexSpec(kind="vector", dim=DIM), 4)
        for i in range(30):
            key = f"key{i}"
            sharded.add(key, gaussian(rng))
            owner = shard_of(key, 4)
            assert key in sharded.shards[owner]

    def test_column_keys_colocate_with_their_table(self):
        """``fp`` and ``fp:j`` must land in the same shard, for every
        shard count — column shards follow their table."""
        for n_shards in (2, 3, 5, 8):
            for fp in ("abc123", "deadbeef", "0f0f"):
                table_shard = shard_of(fp, n_shards)
                assert all(shard_of(f"{fp}:{j}", n_shards) == table_shard
                           for j in range(6))

    def test_duplicate_add_is_noop_across_api(self):
        rng = random.Random(2)
        sharded = ShardedIndex.create(IndexSpec(kind="vector", dim=DIM), 3)
        vector = gaussian(rng)
        first = sharded.add("dup", vector)
        assert sharded.add("dup", gaussian(rng)) == first
        assert len(sharded) == 1
        sharded.add_batch(["dup", "new"], np.stack([vector, gaussian(rng)]))
        assert len(sharded) == 2

    def test_contains_vector_remove_parity(self):
        rng = random.Random(4)
        live = {f"key{i}": gaussian(rng) for i in range(10)}
        _single, sharded = build_pair(3, live)
        assert "key3" in sharded and "ghost" not in sharded
        assert np.allclose(sharded.vector("key3"), live["key3"])
        sharded.remove("key3")
        assert "key3" not in sharded
        with pytest.raises(KeyError):
            sharded.remove("key3")
        with pytest.raises(KeyError):
            sharded.vector("key3")

    def test_k_below_one_rejected(self):
        rng = random.Random(1)
        _single, sharded = build_pair(2, {"a": gaussian(rng)})
        with pytest.raises(ValueError, match="at least 1"):
            sharded.query_vector(gaussian(rng), k=0)


class TestMergeAndRebalance:
    def test_merge_routes_and_dedupes(self):
        rng = random.Random(11)
        live = {f"key{i}": gaussian(rng) for i in range(10)}
        _single, sharded = build_pair(3, live)
        other = VectorIndex(dim=DIM, seed=0)
        other.add_batch(list(live)[:4], np.stack(list(live.values())[:4]))
        other.add("fresh", gaussian(rng))
        assert sharded.merge(other) == 1            # 4 duplicates deduped
        assert len(sharded) == 11
        assert "fresh" in sharded.shards[shard_of("fresh", 3)]

    def test_merge_sharded_into_sharded_different_counts(self):
        rng = random.Random(12)
        left_live = {f"left{i}": gaussian(rng) for i in range(8)}
        right_live = {f"right{i}": gaussian(rng) for i in range(7)}
        _s, left = build_pair(2, left_live)
        _s, right = build_pair(5, right_live)
        assert left.merge(right) == 7
        reference = VectorIndex(dim=DIM, seed=0)
        both = {**left_live, **right_live}
        reference.add_batch(list(both), np.stack(list(both.values())))
        query = gaussian(rng)
        assert ranked(left.query_vector(query, 6)) == \
            ranked(reference.query_vector(query, 6))

    def test_merge_single_with_sharded_source(self):
        """VectorIndex.merge accepts a ShardedIndex source (the CLI
        merges across layouts)."""
        rng = random.Random(13)
        live = {f"key{i}": gaussian(rng) for i in range(9)}
        _s, sharded = build_pair(4, live)
        single = VectorIndex(dim=DIM, seed=0)
        assert single.merge(sharded) == 9
        assert sorted(single.keys) == sorted(live)

    def test_merge_incompatible_dim_rejected(self):
        sharded = ShardedIndex.create(IndexSpec(kind="vector", dim=DIM), 2)
        with pytest.raises(ValueError, match="incompatible"):
            sharded.merge(VectorIndex(dim=DIM + 1))

    def test_merge_different_known_checkpoints_rejected(self):
        sharded = ShardedIndex.create(
            IndexSpec(kind="vector", dim=DIM, model_id="model-a"), 2)
        other = VectorIndex(dim=DIM)
        other.model_id = "model-b"
        with pytest.raises(ValueError, match="model_id"):
            sharded.merge(other)

    def test_merge_adopts_known_model_id(self):
        rng = random.Random(3)
        sharded = ShardedIndex.create(IndexSpec(kind="vector", dim=DIM), 2)
        other = VectorIndex(dim=DIM)
        other.model_id = "model-x"
        other.add("a", gaussian(rng))
        sharded.merge(other)
        assert sharded.model_id == "model-x"

    def test_rebalance_restores_ownership_and_results(self):
        rng = random.Random(21)
        live = {f"key{i}": gaussian(rng) for i in range(24)}
        _s, sharded = build_pair(3, live)
        query = gaussian(rng)
        before = ranked(sharded.query_vector(query, 8))
        moved = sharded.rebalance(5)
        assert sharded.n_shards == 5 and len(sharded) == 24
        assert moved > 0
        for position, shard in enumerate(sharded.shards):
            assert all(shard_of(key, 5) == position for key in shard.keys)
        assert ranked(sharded.query_vector(query, 8)) == before
        # Already balanced: nothing moves.
        assert sharded.rebalance() == 0

    def test_rebalance_reclaims_tombstones(self):
        rng = random.Random(22)
        live = {f"key{i}": gaussian(rng) for i in range(10)}
        _s, sharded = build_pair(2, live)
        sharded.remove("key0")
        assert sharded.n_tombstones == 1
        sharded.rebalance()
        assert sharded.n_tombstones == 0 and len(sharded) == 9


class TestBuildSharded:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_table_build_sharded_matches_single(self, embedder, corpus,
                                                shards):
        single = TableIndex.build(embedder, corpus)
        sharded = TableIndex.build_sharded(embedder, corpus, shards=shards)
        assert isinstance(sharded, ShardedIndex)
        assert sharded.kind == "table" and sharded.n_shards == shards
        assert len(sharded) == len(single)
        assert sharded.model_id == embedder.fingerprint()
        for table in corpus:
            got = ranked(sharded.query_table(embedder, table, k=3))
            want = ranked(single.query_table(embedder, table, k=3))
            assert got == want

    def test_column_build_sharded_matches_single(self, embedder, corpus):
        single = ColumnIndex.build(embedder, corpus)
        sharded = ColumnIndex.build_sharded(embedder, corpus, shards=3)
        assert sharded.kind == "column"
        assert len(sharded) == len(single)
        got = ranked(sharded.query_column(embedder, corpus[0], 0, k=4))
        want = ranked(single.query_column(embedder, corpus[0], 0, k=4))
        assert got == want

    def test_partitioning_matches_incremental_routing(self, embedder, corpus):
        """Map-reduce placement equals what incremental ``add`` would
        have chosen, so later adds and rebalance agree with builds."""
        sharded = TableIndex.build_sharded(embedder, corpus, shards=4)
        for position, shard in enumerate(sharded.shards):
            assert all(shard_of(key, 4) == position for key in shard.keys)
        assert sharded.rebalance() == 0

    def test_more_shards_than_tables_leaves_empty_shards(self, embedder,
                                                         corpus):
        sharded = TableIndex.build_sharded(embedder, corpus,
                                           shards=len(corpus) * 3)
        assert sharded.n_shards == len(corpus) * 3
        assert len(sharded) == len(corpus)
        assert 0 in sharded.shard_sizes()
        hits = sharded.query_table(embedder, corpus[0], k=2)
        assert len(hits) == 2

    def test_empty_corpus_rejected(self, embedder):
        with pytest.raises(ValueError, match="empty corpus"):
            TableIndex.build_sharded(embedder, [], shards=2)

    def test_bad_shard_count_rejected(self, embedder, corpus):
        with pytest.raises(ValueError, match="shards"):
            TableIndex.build_sharded(embedder, corpus, shards=0)

    def test_kind_guard_on_sharded_queries(self, embedder, corpus):
        tables = TableIndex.build_sharded(embedder, corpus, shards=2)
        with pytest.raises(ValueError, match="column index"):
            tables.query_column(embedder, corpus[0], 0)
        columns = ColumnIndex.build_sharded(embedder, corpus, shards=2)
        with pytest.raises(ValueError, match="table index"):
            columns.query_table(embedder, corpus[0])

    def test_round_trip_preserves_query_results(self, embedder, corpus,
                                                tmp_path):
        from repro.index import open_index

        sharded = TableIndex.build_sharded(embedder, corpus, shards=3)
        loaded = open_index(sharded.save(tmp_path / "tables"))
        assert isinstance(loaded, ShardedIndex)
        assert loaded.spec.extra.get("variant") == "tblcomp1"
        for table in corpus[:3]:
            assert ranked(loaded.query_table(embedder, table, k=3)) == \
                ranked(sharded.query_table(embedder, table, k=3))

    def test_query_excludes_self_but_keeps_k(self, embedder, corpus):
        sharded = TableIndex.build_sharded(embedder, corpus, shards=2)
        k = len(corpus) - 1
        hits = sharded.query_table(embedder, corpus[0], k=k)
        assert len(hits) == k
        assert table_fingerprint(corpus[0]) not in {h.key for h in hits}
