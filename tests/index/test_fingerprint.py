"""Content-fingerprint tests: equality, sensitivity, memoization."""

from repro.index import table_fingerprint
from repro.tables import Table, figure1_table, table1_nested


def simple(caption="t", cell="x"):
    return Table(caption, [["a", "b"]], [[cell, "2"]])


class TestEquality:
    def test_equal_content_equal_fingerprint(self):
        assert table_fingerprint(simple()) == table_fingerprint(simple())

    def test_distinct_objects_share_fingerprint(self):
        t1, t2 = simple(), simple()
        assert t1 is not t2
        assert table_fingerprint(t1) == table_fingerprint(t2)

    def test_deterministic_across_calls(self):
        t = simple()
        assert table_fingerprint(t) == table_fingerprint(t)


class TestSensitivity:
    def test_cell_change_changes_fingerprint(self):
        assert table_fingerprint(simple(cell="x")) != table_fingerprint(simple(cell="y"))

    def test_caption_change_changes_fingerprint(self):
        assert table_fingerprint(simple(caption="a")) != table_fingerprint(simple(caption="b"))

    def test_metadata_change_changes_fingerprint(self):
        t1 = Table("t", [["a", "b"]], [["1", "2"]])
        t2 = Table("t", [["a", "c"]], [["1", "2"]])
        assert table_fingerprint(t1) != table_fingerprint(t2)

    def test_vmd_distinguishes(self):
        t1 = Table("t", [["a", "b"]], [["1", "2"]])
        t2 = Table("t", [["a", "b"]], [["1", "2"]], header_cols=[["r"]])
        assert table_fingerprint(t1) != table_fingerprint(t2)

    def test_nested_content_covered(self):
        inner1 = Table("inner", [["k"]], [["v1"]])
        inner2 = Table("inner", [["k"]], [["v2"]])
        t1 = Table("t", [["a"]], [[inner1]])
        t2 = Table("t", [["a"]], [[inner2]])
        assert table_fingerprint(t1) != table_fingerprint(t2)

    def test_example_tables_all_distinct(self):
        fps = {table_fingerprint(figure1_table()),
               table_fingerprint(table1_nested())}
        assert len(fps) == 2


class TestMemoization:
    def test_hash_cached_on_instance(self):
        t = simple()
        fp = table_fingerprint(t)
        assert t._content_fingerprint == fp
