"""TableIndex / ColumnIndex: build, query, save/load round-trip."""

import numpy as np
import pytest

from repro.index import (
    ColumnIndex,
    TableIndex,
    VectorIndex,
    load_index,
    table_fingerprint,
)

RNG = np.random.default_rng(3)


class TestVectorIndex:
    def test_add_and_query(self):
        index = VectorIndex(dim=8)
        vectors = RNG.standard_normal((6, 8))
        index.add_batch([f"k{i}" for i in range(6)], vectors)
        hits = index.query_vector(vectors[2], k=3)
        assert hits[0].key == "k2"
        assert hits[0].score == pytest.approx(1.0)

    def test_duplicate_keys_are_noops(self):
        index = VectorIndex(dim=4)
        v = RNG.standard_normal(4)
        assert index.add("a", v) == index.add("a", RNG.standard_normal(4))
        assert len(index) == 1

    def test_add_batch_dedupes_within_batch(self):
        """Equal-content tables in one build() share a fingerprint; the
        duplicate must not be inserted twice (a second copy would dodge
        self-exclusion and echo the query table back)."""
        index = VectorIndex(dim=4)
        vectors = RNG.standard_normal((3, 4))
        ids = index.add_batch(["a", "b", "a"], vectors)
        assert len(index) == 2
        assert ids[0] == ids[2]
        hits = index.query_vector(vectors[0], k=2, exclude="a")
        assert "a" not in {h.key for h in hits}

    def test_exclude_key(self):
        index = VectorIndex(dim=4)
        vectors = RNG.standard_normal((5, 4))
        index.add_batch([f"k{i}" for i in range(5)], vectors)
        hits = index.query_vector(vectors[0], k=4, exclude="k0")
        assert "k0" not in {h.key for h in hits}
        assert len(hits) == 4

    def test_query_k_below_one_rejected(self):
        index = VectorIndex(dim=4)
        index.add("a", RNG.standard_normal(4))
        for bad_k in (0, -1):
            with pytest.raises(ValueError, match="at least 1"):
                index.query_vector(RNG.standard_normal(4), k=bad_k)

    def test_save_load_appends_npz_to_foreign_suffix(self, tmp_path):
        """Regression: save("foo.idx") writes foo.idx.npz, and
        load("foo.idx") must find it (with_suffix would look for the
        never-written foo.npz instead)."""
        index = VectorIndex(dim=4)
        index.add("a", RNG.standard_normal(4))
        written = index.save(tmp_path / "foo.idx")
        assert written == tmp_path / "foo.idx.npz"
        assert load_index(tmp_path / "foo.idx").keys == index.keys

    def test_contains_and_vector(self):
        index = VectorIndex(dim=4)
        v = RNG.standard_normal(4)
        index.add("a", v)
        assert "a" in index and "b" not in index
        assert np.allclose(index.vector("a"), v)

    def test_save_load_round_trip(self, tmp_path):
        index = VectorIndex(dim=8, n_planes=6, n_bands=3, seed=7)
        vectors = RNG.standard_normal((10, 8))
        index.add_batch([f"k{i}" for i in range(10)], vectors,
                        [{"n": i} for i in range(10)])
        path = index.save(tmp_path / "idx.npz")
        loaded = load_index(path)
        assert type(loaded) is VectorIndex
        assert loaded.keys == index.keys and loaded.meta == index.meta
        query = RNG.standard_normal(8)
        assert ([(h.key, round(h.score, 12)) for h in index.query_vector(query, 5)]
                == [(h.key, round(h.score, 12)) for h in loaded.query_vector(query, 5)])

    def test_empty_index_round_trips(self, tmp_path):
        path = VectorIndex(dim=5).save(tmp_path / "empty.npz")
        assert len(load_index(path)) == 0

    def test_corpus_provenance_round_trips(self, tmp_path):
        index = VectorIndex(dim=4)
        index.add("a", RNG.standard_normal(4))
        index.corpus = {"dataset": "cancerkg", "n_tables": 6, "seed": 0}
        loaded = load_index(index.save(tmp_path / "idx.npz"))
        assert loaded.corpus == index.corpus


class TestEmptyCorpus:
    def test_table_index_rejects_empty_corpus(self, embedder):
        with pytest.raises(ValueError):
            TableIndex.build(embedder, [])

    def test_column_index_rejects_empty_corpus(self, embedder):
        with pytest.raises(ValueError):
            ColumnIndex.build(embedder, [])


class TestTableIndex:
    def test_build_indexes_whole_corpus(self, embedder, corpus):
        index = TableIndex.build(embedder, corpus)
        assert len(index) == len(corpus)
        assert index.dim == 3 * embedder.hidden     # tblcomp1
        assert all("caption" in m for m in index.meta)

    def test_query_table_excludes_self_but_keeps_k(self, embedder, corpus):
        index = TableIndex.build(embedder, corpus)
        k = len(corpus) - 1
        hits = index.query_table(embedder, corpus[0], k=k)
        assert len(hits) == k                       # self-exclusion can't shrink
        assert table_fingerprint(corpus[0]) not in {h.key for h in hits}

    def test_self_match_without_exclusion(self, embedder, corpus):
        index = TableIndex.build(embedder, corpus)
        hits = index.query_table(embedder, corpus[0], k=1, exclude_self=False)
        assert hits[0].key == table_fingerprint(corpus[0])

    def test_round_trip_preserves_results(self, embedder, corpus, tmp_path):
        index = TableIndex.build(embedder, corpus, variant="row")
        path = index.save(tmp_path / "tables.npz")
        loaded = TableIndex.load(path)
        assert isinstance(loaded, TableIndex)
        assert loaded.variant == "row"
        before = index.query_table(embedder, corpus[1], k=3)
        after = loaded.query_table(embedder, corpus[1], k=3)
        assert [(h.key, round(h.score, 12)) for h in before] == \
               [(h.key, round(h.score, 12)) for h in after]

    def test_kind_mismatch_rejected(self, embedder, corpus, tmp_path):
        path = TableIndex.build(embedder, corpus).save(tmp_path / "t.npz")
        with pytest.raises(ValueError):
            ColumnIndex.load(path)


class TestColumnIndex:
    def test_build_indexes_every_column(self, embedder, corpus):
        index = ColumnIndex.build(embedder, corpus)
        assert len(index) == sum(t.n_cols for t in corpus)
        assert index.dim == 2 * embedder.hidden     # colcomp

    def test_query_column_round_trip(self, embedder, corpus, tmp_path):
        index = ColumnIndex.build(embedder, corpus)
        path = index.save(tmp_path / "cols.npz")
        loaded = load_index(path)
        assert isinstance(loaded, ColumnIndex) and loaded.composite
        before = index.query_column(embedder, corpus[0], 0, k=4)
        after = loaded.query_column(embedder, corpus[0], 0, k=4)
        assert [h.key for h in before] == [h.key for h in after]
        assert ColumnIndex.column_key(corpus[0], 0) not in {h.key for h in before}

    def test_meta_carries_labels(self, embedder, corpus):
        index = ColumnIndex.build(embedder, corpus)
        assert all({"caption", "col", "label", "concept"} <= set(m)
                   for m in index.meta)
