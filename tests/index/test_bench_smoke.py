"""Smoke tests for the index benchmark harnesses.

Loads the ``benchmarks/bench_index_*.py`` scripts by path (the
benchmarks directory is not a package) and runs miniature
configurations, checking the reports have the ``BENCH_*.json`` tracking
shape and serialize.
"""

import importlib.util
import json
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
BENCH_PATH = BENCH_DIR / "bench_index_throughput.py"


def load_module(name: str):
    spec = importlib.util.spec_from_file_location(name, BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def load_bench_module():
    return load_module("bench_index_throughput")


def test_bench_smoke(tmp_path):
    bench = load_bench_module()
    report = bench.run(n_tables=4, steps=0, vocab_size=200,
                       batch_sizes=(1, 4), repeats=1)
    assert report["benchmark"] == "index_throughput"
    assert report["config"]["n_tables"] == 4
    modes = [r["mode"] for r in report["results"]]
    assert modes == ["per-table", "batch=1", "batch=4"]
    for record in report["results"]:
        assert record["seconds"] > 0
        assert record["tables_per_sec"] > 0
    # JSON-serializable, as the BENCH_*.json tracking requires.
    (tmp_path / "BENCH_index_throughput.json").write_text(json.dumps(report))
    # The rendered table mentions every mode.
    text = bench.render(report).to_text()
    assert "per-table" in text and "batch=4" in text


def test_bench_sharded_query_smoke(tmp_path):
    bench = load_module("bench_sharded_query")
    report = bench.run(n_vectors=200, dim=16, n_queries=10, k=5,
                       shard_counts=(2,))
    assert report["benchmark"] == "sharded_query"
    assert report["config"]["shard_counts"] == [2]
    modes = [(r["op"], r["mode"]) for r in report["results"]]
    assert modes == [("build", "single"), ("query", "single"),
                     ("build", "shards=2"), ("query", "shards=2"),
                     ("rebalance", "shards=2->3")]
    for record in report["results"]:
        assert record["seconds"] >= 0
    # The harness itself asserts sharded == single rankings; reaching
    # here means the equivalence held at smoke scale.
    (tmp_path / "BENCH_sharded_query.json").write_text(json.dumps(report))
    text = bench.render(report).to_text()
    assert "query single" in text and "query shards=2" in text


def test_bench_concurrent_query_smoke(tmp_path):
    bench = load_module("bench_concurrent_query")
    report = bench.run(n_vectors=200, dim=16, n_queries=10, k=5,
                       shard_counts=(2,), jobs_counts=(2,))
    assert report["benchmark"] == "concurrent_query"
    assert report["config"]["jobs_counts"] == [2]
    modes = [(r["layout"], r["mode"]) for r in report["results"]]
    assert modes == [("single", "serial"), ("single", "query_many"),
                     ("shards=2", "serial"), ("shards=2", "query_many"),
                     ("shards=2", "query_many jobs=2")]
    for record in report["results"]:
        assert record["seconds"] >= 0
        assert record["n"] == 10
    # The harness asserts every mode's rankings == the serial baseline;
    # reaching here means the equivalence held at smoke scale.
    (tmp_path / "BENCH_concurrent_query.json").write_text(json.dumps(report))
    text = bench.render(report).to_text()
    assert "single query_many" in text and "jobs=2" in text


def test_bench_lifecycle_smoke(tmp_path):
    bench = load_module("bench_index_lifecycle")
    report = bench.run(n_vectors=200, dim=16, n_tables=4, vocab_size=200,
                       worker_counts=(2,), repeats=1)
    assert report["benchmark"] == "index_lifecycle"
    assert report["config"]["n_vectors"] == 200
    ops = [r["op"] for r in report["results"]]
    assert ops == ["add_batch", "remove", "query+tombstones", "compact",
                   "query compacted", "merge",
                   "encode serial", "encode workers=2"]
    for record in report["results"]:
        assert record["seconds"] >= 0
        assert record["n"] > 0
    # compact reclaimed exactly what remove tombstoned
    by_op = {r["op"]: r for r in report["results"]}
    assert by_op["compact"]["n"] == by_op["remove"]["n"]
    # JSON-serializable, as the BENCH_*.json tracking requires.
    (tmp_path / "BENCH_index_lifecycle.json").write_text(json.dumps(report))
    text = bench.render(report).to_text()
    assert "compact" in text and "encode workers=2" in text


def test_bench_quantized_smoke(tmp_path):
    bench = load_module("bench_quantized")
    report = bench.run(n_vectors=300, dim=16, n_queries=8, k=5,
                       overfetches=(2, 4), repeats=1)
    assert report["benchmark"] == "quantized"
    assert report["config"]["overfetches"] == [2, 4]
    by_op = {}
    for record in report["results"]:
        by_op.setdefault(record["op"], []).append(record)
    # The equivalence gate ran before any timing (reaching here means
    # quantized == unquantized rankings at smoke scale), and the
    # resident-bytes bar held (the harness raises above 0.35x).
    ratios = {r["mode"]: r["ratio"] for r in by_op["resident_bytes"]}
    assert ratios["fp64"] == 1.0
    assert ratios["int8 sidecar"] <= 0.35
    assert {r["mode"] for r in by_op["score_kernel"]} == \
        {"int8", "fp64 einsum"}
    assert {r["mode"] for r in by_op["query_many"]} == \
        {"unquantized", "quantized"}
    for record in by_op["recall"]:
        assert 0.0 <= record["recall_at_shortlist"] <= 1.0
        assert record["shortlist"] >= 5
    (tmp_path / "BENCH_quant.json").write_text(json.dumps(report))
    text = bench.render(report).to_text()
    assert "resident_bytes int8 sidecar" in text
    assert "recall overfetch=4" in text
