"""Smoke test for the index-throughput benchmark harness.

Loads ``benchmarks/bench_index_throughput.py`` by path (the benchmarks
directory is not a package) and runs a miniature configuration, checking
the report has the ``BENCH_*.json`` tracking shape and serializes.
"""

import importlib.util
import json
from pathlib import Path

BENCH_PATH = (Path(__file__).resolve().parents[2]
              / "benchmarks" / "bench_index_throughput.py")


def load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_index_throughput",
                                                  BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_smoke(tmp_path):
    bench = load_bench_module()
    report = bench.run(n_tables=4, steps=0, vocab_size=200,
                       batch_sizes=(1, 4), repeats=1)
    assert report["benchmark"] == "index_throughput"
    assert report["config"]["n_tables"] == 4
    modes = [r["mode"] for r in report["results"]]
    assert modes == ["per-table", "batch=1", "batch=4"]
    for record in report["results"]:
        assert record["seconds"] > 0
        assert record["tables_per_sec"] > 0
    # JSON-serializable, as the BENCH_*.json tracking requires.
    (tmp_path / "BENCH_index_throughput.json").write_text(json.dumps(report))
    # The rendered table mentions every mode.
    text = bench.render(report).to_text()
    assert "per-table" in text and "batch=4" in text
