"""Smoke tests for the index benchmark harnesses.

Loads the ``benchmarks/bench_index_*.py`` scripts by path (the
benchmarks directory is not a package) and runs miniature
configurations, checking the reports have the ``BENCH_*.json`` tracking
shape and serialize.
"""

import importlib.util
import json
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
BENCH_PATH = BENCH_DIR / "bench_index_throughput.py"


def load_module(name: str):
    spec = importlib.util.spec_from_file_location(name, BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def load_bench_module():
    return load_module("bench_index_throughput")


def test_bench_smoke(tmp_path):
    bench = load_bench_module()
    report = bench.run(n_tables=4, steps=0, vocab_size=200,
                       batch_sizes=(1, 4), repeats=1)
    assert report["benchmark"] == "index_throughput"
    assert report["config"]["n_tables"] == 4
    modes = [r["mode"] for r in report["results"]]
    assert modes == ["per-table", "batch=1", "batch=4"]
    for record in report["results"]:
        assert record["seconds"] > 0
        assert record["tables_per_sec"] > 0
    # JSON-serializable, as the BENCH_*.json tracking requires.
    (tmp_path / "BENCH_index_throughput.json").write_text(json.dumps(report))
    # The rendered table mentions every mode.
    text = bench.render(report).to_text()
    assert "per-table" in text and "batch=4" in text


def test_bench_sharded_query_smoke(tmp_path):
    bench = load_module("bench_sharded_query")
    report = bench.run(n_vectors=200, dim=16, n_queries=10, k=5,
                       shard_counts=(2,))
    assert report["benchmark"] == "sharded_query"
    assert report["config"]["shard_counts"] == [2]
    modes = [(r["op"], r["mode"]) for r in report["results"]]
    assert modes == [("build", "single"), ("query", "single"),
                     ("build", "shards=2"), ("query", "shards=2"),
                     ("rebalance", "shards=2->3")]
    for record in report["results"]:
        assert record["seconds"] >= 0
    # The harness itself asserts sharded == single rankings; reaching
    # here means the equivalence held at smoke scale.
    (tmp_path / "BENCH_sharded_query.json").write_text(json.dumps(report))
    text = bench.render(report).to_text()
    assert "query single" in text and "query shards=2" in text


def test_bench_concurrent_query_smoke(tmp_path):
    bench = load_module("bench_concurrent_query")
    report = bench.run(n_vectors=200, dim=16, n_queries=10, k=5,
                       shard_counts=(2,), jobs_counts=(2,))
    assert report["benchmark"] == "concurrent_query"
    assert report["config"]["jobs_counts"] == [2]
    modes = [(r["layout"], r["mode"]) for r in report["results"]]
    assert modes == [("single", "serial"), ("single", "query_many"),
                     ("shards=2", "serial"), ("shards=2", "query_many"),
                     ("shards=2", "query_many jobs=2")]
    for record in report["results"]:
        assert record["seconds"] >= 0
        assert record["n"] == 10
    # The harness asserts every mode's rankings == the serial baseline;
    # reaching here means the equivalence held at smoke scale.
    (tmp_path / "BENCH_concurrent_query.json").write_text(json.dumps(report))
    text = bench.render(report).to_text()
    assert "single query_many" in text and "jobs=2" in text


def test_bench_lifecycle_smoke(tmp_path):
    bench = load_module("bench_index_lifecycle")
    report = bench.run(n_vectors=200, dim=16, n_tables=4, vocab_size=200,
                       worker_counts=(2,), repeats=1)
    assert report["benchmark"] == "index_lifecycle"
    assert report["config"]["n_vectors"] == 200
    ops = [r["op"] for r in report["results"]]
    assert ops == ["add_batch", "remove", "query+tombstones", "compact",
                   "query compacted", "merge",
                   "encode serial", "encode workers=2"]
    for record in report["results"]:
        assert record["seconds"] >= 0
        assert record["n"] > 0
    # compact reclaimed exactly what remove tombstoned
    by_op = {r["op"]: r for r in report["results"]}
    assert by_op["compact"]["n"] == by_op["remove"]["n"]
    # JSON-serializable, as the BENCH_*.json tracking requires.
    (tmp_path / "BENCH_index_lifecycle.json").write_text(json.dumps(report))
    text = bench.render(report).to_text()
    assert "compact" in text and "encode workers=2" in text
