"""Regenerate the checked-in legacy index fixtures.

``v1-table.npz`` is written byte-by-byte in the *original* (pre-
lifecycle) payload shape — no ``format_version``, no ``tombstones``, no
``model_id`` — exactly what a PR-1-era ``save()`` produced.
``v2-table.npz`` goes through the current ``save()`` with a tombstone,
pinning the v2 shape independent of future format bumps (regenerate it
only while FORMAT_VERSION == 2).

Run from the repo root::

    PYTHONPATH=src python tests/index/fixtures/generate_fixtures.py

Deterministic (seeded vectors), but the ``.npz`` container bytes may
differ across numpy versions — only regenerate when the fixture content
must change.
"""

import json
from pathlib import Path

import numpy as np

HERE = Path(__file__).resolve().parent
DIM = 8
KEYS = ["fp-alpha", "fp-bravo", "fp-charlie", "fp-delta"]


def fixture_vectors() -> np.ndarray:
    return np.random.default_rng(42).standard_normal((len(KEYS), DIM))


def write_v1() -> Path:
    """The unversioned PR-1 payload: params/keys/meta only."""
    payload = json.dumps({
        "params": {"kind": "table", "dim": DIM, "n_planes": 4, "n_bands": 2,
                   "seed": 0, "corpus": {"dataset": "fixture", "n_tables": 4,
                                         "seed": 0},
                   "variant": "tblcomp1"},
        "keys": KEYS,
        "meta": [{"caption": f"fixture table {i}", "topic": "fixtures",
                  "shape": [2, 2]} for i in range(len(KEYS))],
    })
    path = HERE / "v1-table.npz"
    np.savez(path, vectors=fixture_vectors(),
             **{"__index__": np.frombuffer(payload.encode("utf-8"),
                                           dtype=np.uint8)})
    return path


def write_v2() -> Path:
    """Current format, mid-lifecycle: one tombstone, known model_id."""
    import sys

    sys.path.insert(0, str(HERE.parents[2] / "src"))
    from repro.index import FORMAT_VERSION, TableIndex

    assert FORMAT_VERSION == 2, "regenerating would not produce a v2 file"
    index = TableIndex(DIM, variant="tblcomp1", n_planes=4, n_bands=2, seed=0)
    index.model_id = "fixture-model"
    index.corpus = {"dataset": "fixture", "n_tables": 4, "seed": 0}
    index.add_batch(KEYS, fixture_vectors(),
                    [{"caption": f"fixture table {i}", "topic": "fixtures",
                      "shape": [2, 2]} for i in range(len(KEYS))])
    index.remove("fp-delta")
    return index.save(HERE / "v2-table.npz")


if __name__ == "__main__":
    print(f"wrote {write_v1()}")
    print(f"wrote {write_v2()}")
